#!/usr/bin/env python3
"""Check that relative markdown links — and their anchors — resolve.

Walks every ``*.md`` file in the repository (skipping dot-directories),
extracts inline links and images (``[text](target)``), and verifies
that each relative target exists on disk and, when the target carries a
``#fragment``, that the fragment names a real heading in the target
file (GitHub anchor slugging: lowercase, punctuation stripped, spaces
to hyphens, ``-1``/``-2`` suffixes for duplicates).  Same-file
``#fragment`` links are checked against the linking file's own
headings.  External URLs are skipped.  Stdlib only, so it runs
anywhere the repo checks out.

Usage: python scripts/check_links.py  (exit 1 on any broken link)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images; [text](target "title") titles are trimmed below.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") for part in path.relative_to(root).parts[:-1]):
            continue
        yield path


def strip_code(text: str) -> str:
    """Drop fenced and inline code so example links are not checked."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, drop punctuation, hyphens."""
    text = re.sub(r"[`*_\[\]]", "", heading)  # inline markup first
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(text: str) -> set[str]:
    """Every anchor the file exposes, duplicate-suffixed like GitHub."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    for line in strip_code(text).splitlines():
        match = HEADING_RE.match(line)
        if match is None:
            continue
        slug = slugify(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check(root: Path) -> list[str]:
    texts = {path: path.read_text(encoding="utf-8") for path in iter_markdown(root)}
    anchors = {path: heading_anchors(text) for path, text in texts.items()}
    errors = []
    for path, text in texts.items():
        rel = path.relative_to(root)
        for target in LINK_RE.findall(strip_code(text)):
            if target.startswith(SKIP_SCHEMES):
                continue
            plain, _, fragment = target.partition("#")
            dest = path if not plain else (path.parent / plain).resolve()
            if not dest.exists():
                errors.append(f"{rel}: broken link -> {target}")
                continue
            if not fragment:
                continue
            dest_anchors = anchors.get(dest)
            if dest_anchors is None:
                continue  # fragment into a non-markdown file; nothing to check
            if fragment.lower() not in dest_anchors:
                errors.append(f"{rel}: broken anchor -> {target}")
    return errors


def main() -> int:
    root = Path(__file__).resolve().parents[1]
    errors = check(root)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print(f"all relative markdown links and anchors resolve under {root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Walks every ``*.md`` file in the repository (skipping dot-directories),
extracts inline links and images (``[text](target)``), and verifies that
each relative target exists on disk — anchors and external URLs are
skipped, ``#fragment`` suffixes are stripped before the existence check.
Stdlib only, so it runs anywhere the repo checks out.

Usage: python scripts/check_links.py  (exit 1 on any broken link)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images; [text](target "title") titles are trimmed below.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") for part in path.relative_to(root).parts[:-1]):
            continue
        yield path


def strip_code(text: str) -> str:
    """Drop fenced and inline code so example links are not checked."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def check(root: Path) -> list[str]:
    errors = []
    for path in iter_markdown(root):
        for target in LINK_RE.findall(strip_code(path.read_text(encoding="utf-8"))):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            plain = target.split("#", 1)[0]
            if not plain:
                continue
            resolved = (path.parent / plain).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(root)}: broken link -> {target}")
    return errors


def main() -> int:
    root = Path(__file__).resolve().parents[1]
    errors = check(root)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print(f"all relative markdown links resolve under {root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

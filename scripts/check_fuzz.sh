#!/bin/sh
# CI fuzz gate, in two halves (both time-boxed):
#
#  1. Smoke: a short fuzz campaign on main must complete with no
#     violation found (exit 0).  Deterministic: same seed, same plans.
#  2. Canaries: the same campaign with each --demo-bug planted must
#     FIND a violation (exit 1), shrink it, and write a repro file that
#     --replay then reproduces (exit 0).  A fuzzer that has never found
#     a bug is indistinguishable from one that cannot — this proves the
#     harness has teeth on every CI run.  quorum-off-by-one exercises
#     the safety invariants; forgotten-promise exercises
#     acceptor-durability on storage-enabled plans; repair-race
#     exercises replication-floor on node_loss plans (repair that
#     skips the 2PC heals the roster but not the replication);
#     stale-follower-read skips the follower's conflict-window check
#     on follower_reads plans, and the linearizability checker flags
#     the resulting stale Gets.
#
# A node_loss_storm nemesis run rides along as a third gate: permanent
# losses under live load must end recovered with zero violations.
#
# Usage: scripts/check_fuzz.sh [smoke-iterations] [canary-iterations]
# Set OUT_DIR to keep the repro files (CI uploads them as artifacts on
# failure); by default a temp dir is used and cleaned up.
set -e
cd "$(dirname "$0")/.."
if [ ! -f src/repro/__init__.py ]; then
    echo "check_fuzz.sh: src/repro/__init__.py not found under $(pwd) — aborting." >&2
    exit 1
fi
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

SMOKE_ITERS="${1:-12}"
CANARY_ITERS="${2:-10}"
if [ -z "$OUT_DIR" ]; then
    OUT_DIR="$(mktemp -d)"
    trap 'rm -rf "$OUT_DIR"' EXIT
else
    mkdir -p "$OUT_DIR"
fi

echo "== fuzz smoke: $SMOKE_ITERS iterations, expecting clean =="
timeout 90 python -m repro fuzz --iterations "$SMOKE_ITERS" --seed 1 \
    --out-dir "$OUT_DIR"

run_canary() {
    bug="$1"
    seed="$2"
    iters="$3"
    echo "== fuzz canary: --demo-bug $bug, expecting a find =="
    marker="$OUT_DIR/.canary-start"
    : > "$marker"
    set +e
    timeout 120 python -m repro fuzz --iterations "$iters" --seed "$seed" \
        --demo-bug "$bug" --out-dir "$OUT_DIR"
    status=$?
    set -e
    if [ "$status" -ne 1 ]; then
        echo "check_fuzz.sh: $bug canary expected exit 1 (bug found), got $status" >&2
        exit 1
    fi
    # The repro file this canary wrote is the one newer than the marker;
    # repro names are seed-derived, so lexical order says nothing useful.
    REPRO_FILE="$(find "$OUT_DIR" -name 'repro-*.json' -newer "$marker" | head -n 1)"
    if [ -z "$REPRO_FILE" ]; then
        echo "check_fuzz.sh: $bug canary found a bug but wrote no repro file" >&2
        exit 1
    fi
    echo "== replay: $REPRO_FILE must reproduce =="
    timeout 120 python -m repro fuzz --replay "$REPRO_FILE"
}

run_canary quorum-off-by-one 1 "$CANARY_ITERS"
run_canary forgotten-promise 42 "$CANARY_ITERS"
run_canary repair-race 29 "$CANARY_ITERS"
run_canary stale-follower-read 11 "$CANARY_ITERS"

echo "== nemesis: node_loss_storm, expecting recovery with no violations =="
timeout 120 python -m repro nemesis node_loss_storm --duration 30

echo "check_fuzz.sh: OK (smoke clean, canaries found+shrunk+replayed, storm recovered)"

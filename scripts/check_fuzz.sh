#!/bin/sh
# CI fuzz gate, in two halves (both time-boxed):
#
#  1. Smoke: a short fuzz campaign on main must complete with no
#     violation found (exit 0).  Deterministic: same seed, same plans.
#  2. Canary: the same campaign with --demo-bug quorum-off-by-one must
#     FIND a violation (exit 1), shrink it, and write a repro file that
#     --replay then reproduces (exit 0).  A fuzzer that has never found
#     a bug is indistinguishable from one that cannot — this proves the
#     harness has teeth on every CI run.
#
# Usage: scripts/check_fuzz.sh [smoke-iterations] [canary-iterations]
set -e
cd "$(dirname "$0")/.."
if [ ! -f src/repro/__init__.py ]; then
    echo "check_fuzz.sh: src/repro/__init__.py not found under $(pwd) — aborting." >&2
    exit 1
fi
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

SMOKE_ITERS="${1:-12}"
CANARY_ITERS="${2:-10}"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

echo "== fuzz smoke: $SMOKE_ITERS iterations, expecting clean =="
timeout 90 python -m repro fuzz --iterations "$SMOKE_ITERS" --seed 1 \
    --out-dir "$OUT_DIR"

echo "== fuzz canary: --demo-bug quorum-off-by-one, expecting a find =="
set +e
timeout 90 python -m repro fuzz --iterations "$CANARY_ITERS" --seed 1 \
    --demo-bug quorum-off-by-one --out-dir "$OUT_DIR"
status=$?
set -e
if [ "$status" -ne 1 ]; then
    echo "check_fuzz.sh: canary expected exit 1 (bug found), got $status" >&2
    exit 1
fi

REPRO_FILE="$(ls "$OUT_DIR"/repro-*.json 2>/dev/null | head -n 1)"
if [ -z "$REPRO_FILE" ]; then
    echo "check_fuzz.sh: canary found a bug but wrote no repro file" >&2
    exit 1
fi

echo "== replay: $REPRO_FILE must reproduce =="
timeout 90 python -m repro fuzz --replay "$REPRO_FILE"
echo "check_fuzz.sh: OK (smoke clean, canary found+shrunk+replayed)"

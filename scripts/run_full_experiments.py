#!/usr/bin/env python3
"""Run every experiment at full (paper) scale and save the tables.

Output goes to benchmarks/results/full_eNN.txt; EXPERIMENTS.md records
these numbers.  Takes tens of minutes of wall-clock time.

Run:  python scripts/run_full_experiments.py [E1 E5 ...]
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.experiments import ALL_EXPERIMENTS

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "results")


def main() -> None:
    wanted = sys.argv[1:] or sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:]))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for name in wanted:
        fn = ALL_EXPERIMENTS[name]
        started = time.time()
        print(f"[{time.strftime('%H:%M:%S')}] running {name} (full scale)...", flush=True)
        result = fn(quick=False)
        elapsed = time.time() - started
        path = os.path.join(RESULTS_DIR, f"full_{name.lower()}.txt")
        with open(path, "w") as f:
            f.write(result.render() + "\n")
            f.write(f"\n(wall clock: {elapsed:.1f}s)\n")
        print(result.render())
        print(f"[{name} done in {elapsed:.1f}s]\n", flush=True)


if __name__ == "__main__":
    main()

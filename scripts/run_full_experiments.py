#!/usr/bin/env python3
"""Run every experiment at full (paper) scale and save the tables.

Output goes to benchmarks/results/full_eNN.txt; EXPERIMENTS.md records
these numbers.  Takes tens of minutes of wall-clock time serially;
``--workers N`` shards whole experiments across processes via
``repro.harness.sweep`` — each table is byte-identical to its serial
run, only the wall-clock footer differs.

Run:  python scripts/run_full_experiments.py [--workers N] [E1 E5 ...]
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.experiments import ALL_EXPERIMENTS

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "results")


def _save(name: str, rendered: str, elapsed: float) -> None:
    path = os.path.join(RESULTS_DIR, f"full_{name.lower()}.txt")
    with open(path, "w") as f:
        f.write(rendered + "\n")
        f.write(f"\n(wall clock: {elapsed:.1f}s)\n")
    print(rendered)
    print(f"[{name} done in {elapsed:.1f}s]\n", flush=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="e.g. E1 E5 (default: all)")
    parser.add_argument("--workers", type=int, default=1,
                        help="shard experiments across N processes")
    args = parser.parse_args()
    wanted = args.experiments or sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:]))
    unknown = [name for name in wanted if name not in ALL_EXPERIMENTS]
    if unknown:
        sys.exit(f"unknown experiments: {', '.join(unknown)}")
    os.makedirs(RESULTS_DIR, exist_ok=True)

    if args.workers > 1:
        from repro.harness.sweep import run_experiments_parallel

        started = time.time()
        print(f"[{time.strftime('%H:%M:%S')}] running {len(wanted)} experiments "
              f"(full scale) across {args.workers} workers...", flush=True)
        for cell in run_experiments_parallel(wanted, quick=False, workers=args.workers):
            _save(cell.cell.experiment, cell.rendered, cell.perf.get("wall_s", 0.0))
        print(f"[all done in {time.time() - started:.1f}s wall]", flush=True)
        return

    for name in wanted:
        fn = ALL_EXPERIMENTS[name]
        started = time.time()
        print(f"[{time.strftime('%H:%M:%S')}] running {name} (full scale)...", flush=True)
        result = fn(quick=False)
        _save(name, result.render(), time.time() - started)


if __name__ == "__main__":
    main()

#!/bin/sh
# Fast tier-1 check: the full test suite minus tests marked `slow`
# (multi-seed nemesis schedules, the E1-E17 smoke sweep, and fuzz long
# runs).  Use the plain `PYTHONPATH=src python -m pytest -x -q`
# invocation for the full tier.
set -e
cd "$(dirname "$0")/.."
# Fail loudly if the layout changed and the PYTHONPATH below would
# silently point at nothing (pytest would then collect against an
# installed or stale copy of repro, or fail with confusing imports).
if [ ! -f src/repro/__init__.py ]; then
    echo "check_fast.sh: src/repro/__init__.py not found under $(pwd);" >&2
    echo "check_fast.sh: cannot set PYTHONPATH=src — aborting." >&2
    exit 1
fi
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m pytest -x -q -m "not slow" "$@"

#!/bin/sh
# Fast tier-1 check: the full test suite minus tests marked `slow`
# (multi-seed nemesis schedules and other long runs).  Use the plain
# `PYTHONPATH=src python -m pytest -x -q` invocation for the full tier.
set -e
cd "$(dirname "$0")/.."
PYTHONPATH=src exec python -m pytest -x -q -m "not slow" "$@"

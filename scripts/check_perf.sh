#!/bin/sh
# One-command perf regression check: run the repro.perf microbenchmarks
# and compare against the committed BENCH_SIM.json, failing on any
# benchmark that drops below 0.6x its recorded throughput (the slack
# absorbs wall-clock noise on shared machines; genuine hot-path
# regressions are far larger).  The report is rewritten in place so an
# intentional perf change shows up as a BENCH_SIM.json diff for review.
#
# Usage: scripts/check_perf.sh [extra `repro perf` flags]
set -e
cd "$(dirname "$0")/.."
PYTHONPATH=src python -m repro perf --json BENCH_SIM.json --fail-below 0.6 "$@"

# The scale-out microbenchmarks must stay in the report, and their
# in-process A/B ratios (both paths timed in the same run, so immune to
# machine-to-machine throughput noise) must hold their floors: pooled
# direct dispatch beats the unpooled delivery path, and the bisect
# routing table beats the linear successor scan.
PYTHONPATH=src python - <<'EOF'
import json
import sys

with open("BENCH_SIM.json") as f:
    report = json.load(f)
by_name = {b["name"]: b for b in report["benchmarks"]}
failures = []
for name in ("ring_lookup_10k", "pooled_send_deliver"):
    if name not in by_name:
        failures.append(f"{name} missing from BENCH_SIM.json")
if "pooled_send_deliver" in by_name:
    ratio = by_name["pooled_send_deliver"].get("speedup_vs_unpooled", 0.0)
    if ratio < 1.2:
        failures.append(f"pooled_send_deliver speedup_vs_unpooled {ratio} < 1.2")
if "ring_lookup_10k" in by_name:
    ratio = by_name["ring_lookup_10k"].get("speedup_vs_linear", 0.0)
    if ratio < 1.5:
        failures.append(f"ring_lookup_10k speedup_vs_linear {ratio} < 1.5")
for line in failures:
    print(f"check_perf: {line}", file=sys.stderr)
sys.exit(1 if failures else 0)
EOF

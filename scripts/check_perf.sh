#!/bin/sh
# One-command perf regression check: run the repro.perf microbenchmarks
# and compare against the committed BENCH_SIM.json, failing on any
# benchmark that drops below 0.6x its recorded throughput (the slack
# absorbs wall-clock noise on shared machines; genuine hot-path
# regressions are far larger).  The report is rewritten in place so an
# intentional perf change shows up as a BENCH_SIM.json diff for review.
#
# Usage: scripts/check_perf.sh [extra `repro perf` flags]
set -e
cd "$(dirname "$0")/.."
PYTHONPATH=src exec python -m repro perf --json BENCH_SIM.json --fail-below 0.6 "$@"

"""E17: crash recovery cost vs snapshot threshold (durable storage).

With the storage model on, every restart in the storm runs real
recovery — snapshot load plus WAL replay.  The snapshot threshold is
the knob: compaction off (threshold 0) means replay grows with uptime,
while aggressive compaction keeps replay short.  Availability must stay
practical at every setting; what the threshold buys is recovery cost,
not safety.
"""

from conftest import run_once, save_result
from repro.harness.experiments import run_e17


def test_e17_recovery(benchmark):
    result = run_once(benchmark, lambda: run_e17(quick=True))
    save_result(result)
    rows = {r["compact_threshold"]: r for r in result.rows}
    assert set(rows) == {0, 64, 256, 1024}
    # The storm actually forced recoveries, and they replayed WAL records.
    assert all(r["recoveries"] > 0 for r in rows.values())
    # Compaction bounds replay: the tightest threshold replays less per
    # recovery than compaction-off, which accumulates the whole log.
    assert rows[64]["mean_replay"] < rows[0]["mean_replay"]
    # With compaction on, recoveries start from snapshots.
    assert rows[64]["snapshot_pct"] > 0.0
    # Availability stays practical under the storm at every threshold,
    # and the system serves ops again promptly after the final heal.
    assert all(r["availability"] > 0.8 for r in rows.values())
    assert all(r["recovery_s"] < 20.0 for r in rows.values())
    assert all(r["ops"] > 100 for r in rows.values()), "workload actually ran"

"""E5: group operations (split/merge/migrate/repartition/join) are cheap
enough to run continuously as churn-repair mechanisms."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e05


def test_e05_group_operation_latency(benchmark):
    result = run_once(benchmark, lambda: run_e05(quick=True))
    save_result(result)
    by_op = {r["operation"]: r for r in result.rows}
    for op in ("split", "merge", "migrate", "repartition", "join"):
        assert by_op[op]["samples"] > 0, f"no successful {op} samples"
    # Each structural operation completes within a second at LAN latency.
    for op in ("split", "merge", "migrate", "repartition"):
        assert by_op[op]["p50_ms"] < 1000

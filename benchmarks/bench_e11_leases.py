"""E11 (ablation): leader leases serve reads locally; without them every
read costs a Paxos round."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e11


def test_e11_lease_ablation(benchmark):
    result = run_once(benchmark, lambda: run_e11(quick=True))
    save_result(result)
    by_mode = {r["lease_reads"]: r for r in result.rows}
    assert by_mode[True]["get_p50_ms"] < by_mode[False]["get_p50_ms"] * 0.8
    assert by_mode[True]["ops_per_s"] > by_mode[False]["ops_per_s"]

"""E19: the write-path throughput stack (slot batching, pipelined slots,
accept coalescing, WAL group commit) against a cost model where
per-message CPU and fsyncs dominate.  The full stack must deliver >= 2x
the defaults' saturated throughput with zero consistency violations —
the Spinnaker-style claim that group write throughput comes from
batched, pipelined, group-committed log appends."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e19


def test_e19_write_path_saturation(benchmark):
    result = run_once(benchmark, lambda: run_e19(quick=True))
    save_result(result)
    rows = result.rows
    baseline = next(
        r for r in rows if r["batch"] == 0 and r["pipe"] == 0 and r["coalesce_ms"] == 0
    )
    full = next(
        r for r in rows if r["batch"] > 0 and r["pipe"] > 0 and r["coalesce_ms"] > 0
    )
    assert full["ops_per_s"] >= 2 * baseline["ops_per_s"]
    # Amortization is visible in per-op constants, not just throughput.
    assert full["msgs_per_op"] < baseline["msgs_per_op"]
    assert full["fsyncs_per_op"] < 0.5 * baseline["fsyncs_per_op"]
    # The consistency bar does not move: every cell linearizes.
    assert all(r["violations"] == 0 for r in rows)

"""E8: the load-balance policy splits hot groups at the load median."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e08


def test_e08_load_balanced_splits(benchmark):
    result = run_once(benchmark, lambda: run_e08(quick=True))
    save_result(result)
    by_mode = {r["split_key_mode"]: r for r in result.rows}
    # Load-median splits divide observed load nearly evenly; midpoint
    # splits leave a visibly hotter half.
    assert by_mode["load_median"]["hot_half_share_pct"] < by_mode["midpoint"]["hot_half_share_pct"]
    assert by_mode["load_median"]["hot_half_share_pct"] < 58
    assert by_mode["load_median"]["load_cv_pct"] <= by_mode["midpoint"]["load_cv_pct"] * 1.05

"""E12 (ablation): 2PC over Paxos groups is non-blocking; classic 2PC
with an unreplicated coordinator blocks forever on coordinator death."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e12


def test_e12_nonblocking_transactions(benchmark):
    result = run_once(benchmark, lambda: run_e12(quick=True))
    save_result(result)
    by_design = {r["design"].split(" ")[0]: r for r in result.rows}
    scatter = by_design["scatter"]
    classic = by_design["classic"]
    assert scatter["resolved"] == scatter["trials"], "Scatter must always resolve"
    assert scatter["max_block_s"] < 30
    assert classic["resolved"] == 0, "classic 2PC must stay blocked"
    assert classic["mean_block_s"] > 50

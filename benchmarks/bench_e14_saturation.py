"""E14 (bonus): latency-throughput curve with a per-op CPU service model.
Throughput plateaus as offered load approaches the leaders' aggregate
capacity; latency climbs past the knee."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e14


def test_e14_saturation_curve(benchmark):
    result = run_once(benchmark, lambda: run_e14(quick=True))
    save_result(result)
    throughput = result.column("ops_per_s")
    clients = result.column("clients")
    p50 = result.column("p50_ms")
    # Low load: throughput grows ~linearly with clients.
    assert throughput[1] > 3 * throughput[0]
    # High load: the marginal client buys much less than linear.
    low_gain = throughput[1] / clients[1]
    high_gain = (throughput[-1] - throughput[-2]) / (clients[-1] - clients[-2])
    assert high_gain < 0.6 * low_gain, "no saturation knee visible"
    # Latency climbs under load.
    assert p50[-1] > 1.3 * p50[0]

"""E7: larger groups survive churn better (the resilience knob)."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e07


def test_e07_group_size_resilience(benchmark):
    result = run_once(benchmark, lambda: run_e07(quick=True))
    save_result(result)
    harsh = {r["group_size"]: r for r in result.rows if r["median_lifetime_s"] == 100.0}
    # Failure probability falls monotonically with group size.
    assert harsh[1]["p_simulated"] >= harsh[3]["p_simulated"] >= harsh[5]["p_simulated"]
    assert harsh[7]["p_simulated"] < harsh[1]["p_simulated"]
    # Analytic model tracks the simulation within an order of magnitude.
    for size in (3, 5):
        sim_p = harsh[size]["p_simulated"]
        ana_p = harsh[size]["p_analytic"]
        if sim_p > 0 and ana_p > 0:
            assert 0.1 < sim_p / ana_p < 10

"""E3: Scatter stays available under churn (at a small cost vs no churn)."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e03


def test_e03_availability(benchmark):
    result = run_once(benchmark, lambda: run_e03(quick=True))
    save_result(result)
    scatter = [r for r in result.rows if r["backend"] == "scatter"]
    no_churn = next(r for r in scatter if r["median_lifetime_s"] == "none")
    assert no_churn["availability"] > 0.999
    churned = [r for r in scatter if r["median_lifetime_s"] != "none"]
    assert all(r["availability"] > 0.95 for r in churned), "practical availability under churn"

"""E9: the latency policy moves each group's leader to its quorum
latency optimum, cutting replication latency."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e09


def test_e09_leader_placement(benchmark):
    result = run_once(benchmark, lambda: run_e09(quick=True))
    save_result(result)
    by_mode = {r["leader_mode"]: r for r in result.rows}
    assert by_mode["latency"]["commit_p50_ms"] <= by_mode["static"]["commit_p50_ms"]

"""E10: Chirp (Twitter clone) performs competitively on Scatter vs the
OpenDHT-style baseline."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e10


def test_e10_chirp(benchmark):
    result = run_once(benchmark, lambda: run_e10(quick=True))
    save_result(result)
    by_backend = {r["backend"]: r for r in result.rows}
    assert by_backend["scatter"]["fetches"] > 100
    assert by_backend["chord"]["fetches"] > 100
    # Scatter's cached group routing beats per-key Chord lookups.
    assert by_backend["scatter"]["fetch_p50_ms"] <= by_backend["chord"]["fetch_p50_ms"]

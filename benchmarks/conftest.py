"""Shared helpers for the benchmark suite.

Each benchmark regenerates one experiment (a table/figure of the paper)
in its quick configuration, prints the resulting table, saves it under
``benchmarks/results/``, and asserts the qualitative *shape* the paper
reports (who wins, which direction a knob moves a metric).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(result) -> None:
    """Print the table and persist it for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{result.experiment.lower()}.txt")
    with open(path, "w") as f:
        f.write(result.render() + "\n")
    print()
    print(result.render())


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)

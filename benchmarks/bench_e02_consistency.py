"""E2: Scatter is linearizable under churn; the Chord baseline is not.

Paper claim (headline): linearizable consistency even with very short
node lifetimes.
"""

from conftest import run_once, save_result
from repro.harness.experiments import run_e02


def test_e02_consistency(benchmark):
    result = run_once(benchmark, lambda: run_e02(quick=True))
    save_result(result)
    scatter = [r for r in result.rows if r["backend"] == "scatter"]
    chord = [r for r in result.rows if r["backend"] == "chord"]
    assert all(r["violations"] == 0 for r in scatter), "Scatter must have zero violations"
    assert any(r["violations"] > 0 for r in chord), "the baseline should show violations"
    assert all(r["reads_checked"] > 50 for r in scatter), "need real read volume to claim zero"

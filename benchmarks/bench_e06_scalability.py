"""E6: aggregate throughput scales near-linearly with system size."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e06


def test_e06_throughput_scaling(benchmark):
    result = run_once(benchmark, lambda: run_e06(quick=True))
    save_result(result)
    throughput = result.column("ops_per_s")
    nodes = result.column("nodes")
    # Quadrupling the nodes should at least triple throughput.
    scale = (throughput[-1] / throughput[0]) / (nodes[-1] / nodes[0])
    assert scale > 0.75, f"scaling efficiency {scale:.2f} too low"

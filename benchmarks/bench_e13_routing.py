"""E13 (bonus ablation): gossip-maintained routing caches keep cold
lookups at O(1)-ish hops; without them hops grow with the ring."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e13


def test_e13_routing_hops(benchmark):
    result = run_once(benchmark, lambda: run_e13(quick=True))
    save_result(result)
    rows = {(r["groups"], r["gossip"]): r for r in result.rows}
    biggest = max(g for g, _ in rows)
    with_gossip = rows[(biggest, True)]["mean_hops"]
    without = rows[(biggest, False)]["mean_hops"]
    assert with_gossip < without, "gossip must shorten cold lookups"
    assert with_gossip < 4
    # Without gossip, greedy successor walking scales with ring size.
    assert without > 1.5 * with_gossip

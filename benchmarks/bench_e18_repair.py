"""E18: data survival under permanent node loss (self-healing vs baselines).

Unlike the transient-churn experiments, every departure here is a
crashed machine with a wiped disk; replacement capacity joins at the
loss rate.  Survival therefore measures the *re-replication race*:
Scatter's repair loop (pull-in migrates through the Paxos log) and the
Zave-hardened Chord baseline must keep pre-storm keys readable, while
naive Chord — which never re-replicates — bleeds them.
"""

from conftest import run_once, save_result
from repro.harness.experiments import run_e18


def test_e18_repair(benchmark):
    result = run_once(benchmark, lambda: run_e18(quick=True))
    save_result(result)
    rows = {r["backend"]: r for r in result.rows}
    assert set(rows) == {"scatter+repair", "chord+zave", "chord"}
    # The storm actually happened, and replacements arrived.
    assert all(r["losses"] > 10 for r in rows.values())
    assert all(r["joins"] > 0 for r in rows.values())
    # Self-healing keeps every group above quorum: no group permanently
    # lost a majority, so no arc of the keyspace went dark.
    assert rows["scatter+repair"]["dead_groups"] == 0
    # The survival claim: active re-replication (Scatter repair, Zave
    # replica maintenance) loses no more keys than the naive baseline,
    # and the naive baseline demonstrably loses some — losing data is
    # what makes the race real.
    assert rows["scatter+repair"]["keys_lost"] <= rows["chord"]["keys_lost"]
    assert rows["chord+zave"]["keys_lost"] <= rows["chord"]["keys_lost"]
    assert rows["chord"]["keys_lost"] > 0
    assert rows["scatter+repair"]["keys_lost"] == 0
    # The system stayed available to the foreground workload throughout.
    assert all(r["availability"] > 0.9 for r in rows.values())
    assert all(r["ops"] > 100 for r in rows.values()), "workload actually ran"

"""E20: the scale-out read path.  With follower reads on and clients
routing Gets round-robin across the group, read throughput must scale
with replica count instead of saturating one leader CPU — >= 2x at five
replicas in quick mode — and every cell must stay linearizable (the
grant/quorum-expansion protocol is doing real work, not relaxing the
consistency bar)."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e20


def test_e20_follower_read_scaling(benchmark):
    result = run_once(benchmark, lambda: run_e20(quick=True))
    save_result(result)
    rows = result.rows

    def cell(replicas, follower_reads):
        return next(
            r for r in rows
            if r["replicas"] == replicas and r["follower_reads"] == follower_reads
        )

    # One replica: nothing to scale out to; parity with leader-only.
    assert cell(1, True)["reads_per_s"] <= 1.1 * cell(1, False)["reads_per_s"]
    # Five replicas: reads spread across the group.
    assert cell(5, True)["read_x"] >= 2.0
    # Leader-only is flat in replica count (the whole motivation).
    assert cell(5, False)["reads_per_s"] <= 1.2 * cell(1, False)["reads_per_s"]
    # The consistency bar does not move: every cell linearizes.
    assert all(r["violations"] == 0 for r in rows)

"""E1: a vanilla Chord-style DHT returns inconsistent results under churn.

Paper claim (motivation): best-effort DHTs violate consistency at rates
that grow as node lifetimes shrink.
"""

from conftest import run_once, save_result
from repro.harness.experiments import run_e01


def test_e01_dht_inconsistency(benchmark):
    result = run_once(benchmark, lambda: run_e01(quick=True))
    save_result(result)
    pct = result.column("violation_pct")
    assert pct[0] > 0, "harsh churn must produce violations in the baseline"
    # Violations shrink (or at worst stay flat) as lifetimes grow.
    assert pct[-1] <= pct[0] * 1.5

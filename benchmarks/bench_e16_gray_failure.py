"""E16: gray failures and asymmetric partitions vs clean crashes.

Scatter must stay linearizable and recover promptly under every nemesis
scenario; the Chord baseline is allowed to go inconsistent (that is the
paper's motivation).  Gray failures degrade latency without tripping
failure detectors — slower than clean crashes but never unsafe.
"""

from conftest import run_once, save_result
from repro.harness.experiments import run_e16


def test_e16_gray_failure(benchmark):
    result = run_once(benchmark, lambda: run_e16(quick=True))
    save_result(result)
    scatter = [r for r in result.rows if r["backend"] == "scatter"]
    assert len(scatter) >= 3, "at least three nemesis scenarios"
    # Safety: Scatter never violates linearizability, whatever the nemesis.
    assert all(r["violations"] == 0 for r in scatter), "scatter must stay linearizable"
    # Liveness: Scatter resumes serving within the recovery cap after the
    # final heal, in every scenario.
    assert all(r["recovery_s"] < 20.0 for r in scatter), "scatter must recover"
    # Availability stays practical under faults (ops keep completing).
    assert all(r["availability"] > 0.8 for r in scatter)
    assert all(r["ops"] > 100 for r in scatter), "workload actually ran"

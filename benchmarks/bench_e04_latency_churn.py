"""E4: Scatter operation latency degrades gracefully with churn."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e04


def test_e04_latency_under_churn(benchmark):
    result = run_once(benchmark, lambda: run_e04(quick=True))
    save_result(result)
    rows = {r["median_lifetime_s"]: r for r in result.rows}
    baseline = rows["none"]
    harshest = rows[min(k for k in rows if k != "none")]
    # Median latency under heavy churn stays within 3x of the quiet system.
    assert harshest["get_p50_ms"] < 3 * baseline["get_p50_ms"]
    assert harshest["put_p50_ms"] < 3 * baseline["put_p50_ms"]

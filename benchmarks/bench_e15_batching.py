"""E15 (bonus): write batching coalesces concurrent puts into shared log
slots, cutting protocol messages per operation.  The cost is the batch
window added to write latency — the classic batching tradeoff."""

from conftest import run_once, save_result
from repro.harness.experiments import run_e15


def test_e15_batching(benchmark):
    result = run_once(benchmark, lambda: run_e15(quick=True))
    save_result(result)
    by_mode = {r["batch"]: r for r in result.rows}
    assert by_mode[True]["msgs_per_op"] < 0.85 * by_mode[False]["msgs_per_op"]
    # Latency pays for the batch window but stays in the same regime.
    assert by_mode[True]["put_p50_ms"] < 2 * by_mode[False]["put_p50_ms"]

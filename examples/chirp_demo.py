#!/usr/bin/env python3
"""Chirp: the paper's Twitter clone running on Scatter.

Creates a handful of users, builds a follow graph, posts some chirps,
and fetches timelines — all stored as key-value pairs in the Scatter
overlay, so every timeline read is linearizable.

Run:  python examples/chirp_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.dht.client import ScatterClient
from repro.dht.system import ScatterSystem
from repro.harness.builders import experiment_scatter_config
from repro.policies import ScatterPolicy
from repro.sim import LogNormalLatency, SimNetwork, Simulator
from repro.workloads.chirp import ChirpService


def main() -> None:
    sim = Simulator(seed=1)
    net = SimNetwork(sim, latency=LogNormalLatency(0.003, 0.3))
    system = ScatterSystem.build(
        sim,
        net,
        n_nodes=12,
        n_groups=4,
        config=experiment_scatter_config(),
        policy=ScatterPolicy(target_size=3, split_size=8, merge_size=1),
    )
    sim.run_for(3.0)

    client = ScatterClient("chirp-app", sim, net, seed_provider=system.alive_node_ids)
    chirp = ChirpService(sim, client)

    def wait(future, t=2.0):
        sim.run_for(t)
        return future.result()

    print("building the social graph...")
    for user, target in [
        ("alice", "bob"), ("alice", "carol"), ("bob", "carol"),
        ("carol", "alice"), ("dave", "alice"), ("dave", "bob"), ("dave", "carol"),
    ]:
        wait(chirp.follow(user, target))
        print(f"  {user} follows {target}")

    print("\nposting...")
    for user, text in [
        ("bob", "paxos groups are just vibes with quorums"),
        ("carol", "split my group today, feeling lighter"),
        ("alice", "linearizability or it didn't happen"),
        ("carol", "merge season is upon us"),
    ]:
        wait(chirp.post(user, text))
        print(f"  @{user}: {text}")

    print("\ndave's timeline (follows alice, bob, carol):")
    timeline = wait(chirp.fetch_timeline("dave", per_user=2), t=3.0)
    for author, (stamp, text) in timeline:
        print(f"  [{stamp:7.3f}s] @{author}: {text}")

    stats = chirp.stats
    print(
        f"\n{stats.posts} posts, {stats.fetches} timeline fetches, "
        f"median fetch {1000 * sorted(stats.fetch_latencies)[len(stats.fetch_latencies) // 2]:.1f} ms"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Churn survival: Scatter vs a Chord-style DHT under heavy churn.

Runs the same closed-loop key-value workload over both backends while
nodes die with a median lifetime of 120 simulated seconds (harsher than
measured Gnutella churn) and are replaced by fresh joiners.  At the end
it prints availability, latency, and — the paper's point — the number
of linearizability violations each system produced.

Run:  python examples/churn_survival.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.builders import (
    DeploymentParams,
    build_chord_deployment,
    build_scatter_deployment,
)
from repro.harness.metrics import workload_metrics
from repro.policies import ScatterPolicy
from repro.workloads import ChurnProcess, UniformKeys, exponential_lifetime
from repro.workloads.driver import ClosedLoopWorkload

MEDIAN_LIFETIME = 120.0
DURATION = 90.0


def run(backend: str) -> dict:
    params = DeploymentParams(n_nodes=20, n_groups=4, n_clients=3, seed=7)
    if backend == "scatter":
        deployment = build_scatter_deployment(
            params, policy=ScatterPolicy(target_size=5, split_size=11, merge_size=3)
        )
    else:
        deployment = build_chord_deployment(params)
    sim, system, clients = deployment.sim, deployment.system, deployment.clients

    workload = ClosedLoopWorkload(
        sim, clients, UniformKeys(40), read_fraction=0.5, think_time=0.05
    )
    workload.start()
    sim.run_for(5.0)  # populate

    churn = ChurnProcess(sim, system, exponential_lifetime(MEDIAN_LIFETIME))
    churn.start()
    start = sim.now
    sim.run_for(DURATION)
    churn.stop()
    workload.stop()
    sim.run_for(2.0)

    metrics = workload_metrics(workload.all_records(), window=(start, start + DURATION))
    metrics["departures"] = churn.departures
    return metrics


def main() -> None:
    print(f"churn: median node lifetime {MEDIAN_LIFETIME:.0f}s, {DURATION:.0f}s measured window\n")
    print(f"{'backend':<10} {'ops':>6} {'avail':>7} {'p50 ms':>8} {'reads':>6} {'violations':>11}")
    print("-" * 54)
    for backend in ("scatter", "chord"):
        m = run(backend)
        print(
            f"{backend:<10} {m['ops']:>6} {m['availability']:>7.3f} "
            f"{1000 * m['latency_p50']:>8.1f} {m['reads_checked']:>6} "
            f"{m['violations']:>11}"
        )
    print(
        "\nScatter pays a little latency and availability for consensus, and"
        "\nin exchange never violates linearizability; the vanilla DHT stays"
        "\nfast but silently serves stale or lost data."
    )


if __name__ == "__main__":
    main()

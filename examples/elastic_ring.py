#!/usr/bin/env python3
"""Elastic ring: watch Scatter reorganize itself as nodes come and go.

Starts from a single group owning the whole ring, then streams joins in.
The resilience policy splits groups as they grow past the size threshold
— the ring of groups emerges on its own.  Then nodes leave, groups
shrink, and merges knit the ring back together.  The invariant printed
at each step: the active groups always partition the key space exactly.

Run:  python examples/elastic_ring.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.dht.system import ScatterSystem
from repro.harness.builders import experiment_scatter_config
from repro.policies import ScatterPolicy
from repro.sim import LogNormalLatency, SimNetwork, Simulator


def snapshot(system: ScatterSystem, label: str) -> None:
    groups = system.active_groups()
    consistent = "consistent" if system.ring_is_consistent() else "INCONSISTENT"
    print(f"\n{label}: {len(groups)} group(s), ring {consistent}")
    for gid, g in sorted(groups.items(), key=lambda kv: kv[1].range.lo):
        share = 100 * g.range.size() / (1 << 32)
        print(f"  {gid:<12} {str(g.range):<28} {len(g.members)} members  {share:4.1f}% of ring")


def main() -> None:
    sim = Simulator(seed=11)
    net = SimNetwork(sim, latency=LogNormalLatency(0.003, 0.3))
    policy = ScatterPolicy(target_size=3, split_size=6, merge_size=2)
    system = ScatterSystem.build(
        sim, net, n_nodes=4, n_groups=1,
        config=experiment_scatter_config(), policy=policy,
    )
    sim.run_for(3.0)
    snapshot(system, "t=3s   bootstrap (one group owns everything)")

    print("\nstreaming 14 joins, two per 6 seconds...")
    for i in range(14):
        system.add_node()
        sim.run_for(3.0)
    sim.run_for(15.0)
    snapshot(system, f"t={sim.now:.0f}s  after joins (policy split oversized groups)")

    print("\nnow 8 nodes leave permanently (spaced so repair keeps up)...")
    victims = system.alive_node_ids()[::2][:8]
    for v in victims:
        system.kill_node(v)
        # Slow enough that failure detection + membership repair finish
        # between departures; two deaths inside one repair window can
        # kill a small group outright (that risk is exactly experiment E7).
        sim.run_for(10.0)
    sim.run_for(30.0)
    snapshot(system, f"t={sim.now:.0f}s  after departures (failure detection + merges)")

    assert system.ring_is_consistent(), "the ring must remain a partition of the key space"
    print("\nthe overlay reorganized itself both ways without losing the ring ✓")


if __name__ == "__main__":
    main()

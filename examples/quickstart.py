#!/usr/bin/env python3
"""Quickstart: a small Scatter deployment serving linearizable key-value ops.

Builds a 9-node / 3-group ring in the simulator, writes and reads a few
keys through a client, kills a group leader mid-run to show failover,
and finishes by running the linearizability checker over everything the
client observed.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import check_history
from repro.dht.client import ScatterClient
from repro.dht.ring import hash_key
from repro.dht.system import ScatterSystem
from repro.harness.builders import experiment_scatter_config
from repro.policies import ScatterPolicy
from repro.sim import LogNormalLatency, SimNetwork, Simulator


def main() -> None:
    sim = Simulator(seed=42)
    net = SimNetwork(sim, latency=LogNormalLatency(0.003, 0.3))
    system = ScatterSystem.build(
        sim,
        net,
        n_nodes=9,
        n_groups=3,
        config=experiment_scatter_config(),
        policy=ScatterPolicy(target_size=3, split_size=7, merge_size=1),
    )
    sim.run_for(3.0)  # leaders elect, leases establish

    print(f"ring of {system.group_count()} groups over 9 nodes:")
    for gid, group in sorted(system.active_groups().items()):
        print(f"  {gid}: range {group.range}, members {group.members}")

    client = ScatterClient("demo", sim, net, seed_provider=system.alive_node_ids)

    print("\nwriting three keys...")
    for name, value in [("alice", 30), ("bob", 25), ("carol", 41)]:
        future = client.put(name, value)
        sim.run_for(1.0)
        result = future.result()
        owner = next(
            g.gid for g in system.active_groups().values() if g.range.contains(hash_key(name))
        )
        print(f"  put {name}={value}: ok={result.ok} version={result.version} (owner {owner})")

    print("\nkilling the leader of bob's group to show failover...")
    bob_gid = next(
        g.gid for g in system.active_groups().values() if g.range.contains(hash_key("bob"))
    )
    leader = system.leader_of(bob_gid)
    print(f"  killed {leader.paxos.replica_id}")
    system.kill_node(leader.paxos.replica_id)
    sim.run_for(5.0)

    print("\nreading the keys back (bob's group has a new leader)...")
    for name in ("alice", "bob", "carol"):
        future = client.get(name)
        sim.run_for(2.0)
        result = future.result()
        print(f"  get {name} -> {result.value} (latency {client.records[-1].latency*1000:.1f} ms)")

    check = check_history(client.records)
    print(
        f"\nlinearizability check: {check.total_reads} reads, "
        f"{check.total_writes} writes, {len(check.violations)} violations"
    )
    assert check.ok, "history must be linearizable"
    print("history is linearizable ✓")


if __name__ == "__main__":
    main()

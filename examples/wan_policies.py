#!/usr/bin/env python3
"""WAN deployment: watch the latency policy move leaders to their quorums.

Builds a Scatter ring over a clustered wide-area latency matrix (five
synthetic sites), turns on the latency policy, and shows each group's
leader migrating to the member with the fastest nearby majority —
then compares Paxos commit latency before and after.

Run:  python examples/wan_policies.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.dht.client import ClientConfig, ScatterClient
from repro.dht.system import ScatterSystem
from repro.harness.builders import experiment_scatter_config
from repro.policies import ScatterPolicy
from repro.sim import SimNetwork, Simulator, WanLatencyMatrix
from repro.workloads import UniformKeys
from repro.workloads.driver import ClosedLoopWorkload


def quorum_latency_ms(system, latency, gid, leader):
    """Expected one-way latency to the leader's fastest majority peer."""
    group = system.active_groups()[gid]
    members = group.members
    majority = len(members) // 2 + 1
    others = sorted(latency.expected(leader, m) for m in members if m != leader)
    return 1000 * others[majority - 2]


def leaders(system):
    return {gid: system.leader_of(gid).paxos.replica_id for gid in sorted(system.active_groups())}


def main() -> None:
    sim = Simulator(seed=9)
    latency = WanLatencyMatrix(seed=9, span=0.1, floor=0.003, sites=5)
    net = SimNetwork(sim, latency=latency)
    policy = ScatterPolicy(target_size=5, split_size=99, merge_size=0, leader_mode="latency")
    system = ScatterSystem.build(
        sim, net, n_nodes=20, n_groups=4,
        config=experiment_scatter_config(), policy=policy,
    )
    sim.run_for(0.2)  # before the first maintenance tick fires
    before = leaders(system)

    # Drive writes (recursive routing, like an app running on the overlay).
    client = ScatterClient(
        "wan-app", sim, net, seed_provider=system.alive_node_ids,
        config=ClientConfig(routing="recursive", rpc_timeout=1.5, op_timeout=12.0),
    )
    workload = ClosedLoopWorkload(sim, [client], UniformKeys(50), read_fraction=0.2)
    workload.start()
    sim.run_for(30.0)  # the policy evaluates each maintenance tick
    after = leaders(system)
    workload.stop()
    sim.run_for(1.0)

    print("synthetic WAN: 20 nodes across 5 sites, 4 groups of 5\n")
    print(f"{'group':<8} {'leader: before -> after':<26} {'quorum latency (ms)'}")
    print("-" * 62)
    moved = 0
    for gid in before:
        b, a = before[gid], after.get(gid, "?")
        lb = quorum_latency_ms(system, latency, gid, b)
        la = quorum_latency_ms(system, latency, gid, a)
        mark = ""
        if a != b:
            moved += 1
            mark = "  <- moved"
        print(f"{gid:<8} {b:>6} -> {a:<14} {lb:6.1f} -> {la:<6.1f}{mark}")
    print(f"\n{moved} leader(s) migrated toward their quorum's latency optimum")
    ops = [r for r in client.records if r.completed]
    print(f"({len(ops)} recursive client ops completed meanwhile, all linearizable)")


if __name__ == "__main__":
    main()

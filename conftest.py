"""Ensure ``src/`` is importable when the package is not pip-installed.

The offline environment here lacks the ``wheel`` package, so PEP 660
editable installs fail; this shim makes ``pytest`` work from a clean
checkout either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    # Also registered in pyproject.toml; repeated here so the marker is
    # known even when pytest is invoked without that ini in scope.
    config.addinivalue_line(
        "markers",
        "slow: multi-seed fault schedules and other long runs "
        "(deselect with -m 'not slow')",
    )

"""Per-replica Paxos log: accepted entries, chosen entries, commit index."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.consensus.single import Ballot


@dataclass
class LogEntry:
    """State of one log slot on one replica."""

    accepted_ballot: Ballot | None = None
    accepted_value: Any = None
    chosen: bool = False

    @property
    def value(self) -> Any:
        return self.accepted_value


class PaxosLog:
    """Sparse log keyed by slot (slots start at 0).

    ``commit_index`` is the highest slot N such that slots 0..N are all
    chosen — the prefix that may be applied to the state machine.  It is
    -1 when nothing is chosen.
    """

    def __init__(self) -> None:
        self._entries: dict[int, LogEntry] = {}
        self.commit_index = -1
        # Slots below first_slot were compacted into a snapshot; their
        # entries are gone but remain (by construction) chosen/applied.
        self.first_slot = 0
        # Optional hook called as observer(slot, value) the first time a
        # slot is marked chosen.  The durable-storage model uses it to
        # journal choices into the WAL; None (the default) costs one
        # attribute test and nothing else.
        self.observer = None

    def entry(self, slot: int) -> LogEntry:
        if slot < self.first_slot:
            raise KeyError(f"slot {slot} compacted away (first_slot={self.first_slot})")
        if slot not in self._entries:
            self._entries[slot] = LogEntry()
        return self._entries[slot]

    def truncate_before(self, slot: int) -> None:
        """Discard entries below ``slot`` (they live on in a snapshot).

        Only committed prefixes may be compacted.
        """
        if slot > self.commit_index + 1:
            raise ValueError(f"cannot compact past commit index ({slot} > {self.commit_index + 1})")
        self._drop_below(slot)

    def reset_to(self, slot: int) -> None:
        """Jump forward after installing a snapshot covering [0, slot).

        Unlike :meth:`truncate_before`, the local commit index may be far
        behind: the snapshot vouches for the whole dropped prefix.
        """
        self._drop_below(slot)

    def _drop_below(self, slot: int) -> None:
        for s in [s for s in self._entries if s < slot]:
            del self._entries[s]
        self.first_slot = max(self.first_slot, slot)
        self.commit_index = max(self.commit_index, self.first_slot - 1)
        # Re-extend over any retained chosen entries beyond the jump.
        while self.is_chosen(self.commit_index + 1):
            self.commit_index += 1

    def get(self, slot: int) -> LogEntry | None:
        return self._entries.get(slot)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def max_slot(self) -> int:
        """Highest slot with any accepted/chosen entry, or -1."""
        return max(self._entries, default=-1)

    def is_chosen(self, slot: int) -> bool:
        if slot < self.first_slot:
            return True  # compacted prefix is chosen by construction
        e = self._entries.get(slot)
        return e is not None and e.chosen

    def chosen_value(self, slot: int) -> Any:
        e = self._entries.get(slot)
        if e is None or not e.chosen:
            raise KeyError(f"slot {slot} not chosen")
        return e.accepted_value

    def mark_chosen(self, slot: int, value: Any) -> None:
        """Record that ``value`` was chosen at ``slot`` and advance commit.

        A chosen value is immutable; marking a slot chosen with a
        different value indicates a protocol bug and raises.
        """
        if slot < self.first_slot:
            return  # already compacted: necessarily chosen and applied
        e = self.entry(slot)
        if e.chosen and e.accepted_value != value:
            raise AssertionError(
                f"slot {slot}: chosen value changed {e.accepted_value!r} -> {value!r}"
            )
        newly_chosen = not e.chosen
        e.chosen = True
        e.accepted_value = value
        if newly_chosen and self.observer is not None:
            self.observer(slot, value)
        while self.is_chosen(self.commit_index + 1):
            self.commit_index += 1

    def accepted_from(self, from_slot: int) -> list[tuple[int, Ballot, Any]]:
        """(slot, ballot, value) for accepted entries at or after from_slot."""
        out = []
        for slot in sorted(self._entries):
            if slot < from_slot:
                continue
            e = self._entries[slot]
            if e.accepted_ballot is not None:
                out.append((slot, e.accepted_ballot, e.accepted_value))
        return out

    def pending_values(self, from_slot: int) -> list[Any]:
        """Values of accepted *or* chosen entries at or after ``from_slot``.

        The follower-read local conflict window: everything this
        replica knows may commit (or has committed) above its applied
        prefix, whether learned through an Accept or through catch-up.
        """
        out = []
        for slot in sorted(self._entries):
            if slot < from_slot:
                continue
            e = self._entries[slot]
            if e.chosen or e.accepted_ballot is not None:
                out.append(e.accepted_value)
        return out

    def commit_window(self, tail: int) -> tuple[int, int]:
        """[lo, hi] slot bounds of the last ``tail`` committed slots.

        Read-only helper for invariant checkers (``repro.check``): two
        replicas' overlapping commit windows bound the slots on which
        prefix agreement can be compared without touching compacted or
        uncommitted state.
        """
        hi = self.commit_index
        lo = max(self.first_slot, hi - tail + 1)
        return lo, hi

    def chosen_range(self, from_slot: int, to_slot: int) -> list[tuple[int, Any]]:
        """Chosen (slot, value) pairs in [from_slot, to_slot]."""
        out = []
        for slot in range(from_slot, to_slot + 1):
            e = self._entries.get(slot)
            if e is not None and e.chosen:
                out.append((slot, e.accepted_value))
        return out

    def iter_chosen(self) -> Iterator[tuple[int, Any]]:
        for slot in sorted(self._entries):
            e = self._entries[slot]
            if e.chosen:
                yield slot, e.accepted_value

"""Single-replica-per-node harness for running Paxos outside Scatter.

Scatter hosts several replicas per physical node during reconfigurations;
this harness is the simple case — one replica per node — used by the
consensus test-suite, the lease ablation benchmark (E11), and as a
reference for how to adapt :class:`PaxosReplica` to a host.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.consensus.commands import Command
from repro.consensus.messages import (
    Accept,
    AcceptBatch,
    Accepted,
    AcceptedBatch,
    AcceptNack,
    CatchupReply,
    CatchupRequest,
    Heartbeat,
    HeartbeatAck,
    InstallSnapshot,
    NotMember,
    Prepare,
    PrepareNack,
    Promise,
    TransferLease,
)
from repro.consensus.replica import PaxosConfig, PaxosReplica
from repro.net.futures import Future
from repro.net.node import Node
from repro.sim.events import EventHandle
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.storage.disk import NodeDisk, StorageConfig

PAXOS_MESSAGE_TYPES = (
    Prepare,
    Promise,
    PrepareNack,
    Accept,
    AcceptBatch,
    Accepted,
    AcceptedBatch,
    AcceptNack,
    Heartbeat,
    HeartbeatAck,
    NotMember,
    TransferLease,
    CatchupRequest,
    CatchupReply,
    InstallSnapshot,
)


class NodeTransport:
    """Adapt a :class:`Node` to the replica's Transport protocol."""

    def __init__(self, node: Node, wrap: Callable[[Any], Any] | None = None) -> None:
        self._node = node
        self._wrap = wrap or (lambda msg: msg)

    @property
    def now(self) -> float:
        return self._node.sim.now

    @property
    def tracer(self) -> Any:
        return self._node.sim.tracer

    def send(self, dst: str, msg: Any) -> None:
        self._node.send(dst, self._wrap(msg))

    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        return self._node.set_timer(delay, fn, *args)

    def rng(self) -> random.Random:
        return self._node.sim.rng(f"paxos:{self._node.node_id}")


class PaxosHost(Node):
    """A node whose entire job is to run one Paxos replica.

    Applied commands are recorded in ``self.applied`` (a list of
    (slot, command) pairs) and optionally forwarded to ``apply_fn``.
    With ``storage`` set the host gets a simulated disk and the replica
    persists through it (WAL + snapshots, real recovery on restart).
    """

    def __init__(
        self,
        node_id: str,
        sim: Simulator,
        net: SimNetwork,
        members: list[str],
        config: PaxosConfig | None = None,
        initial_leader: str | None = None,
        apply_fn: Callable[[int, Command], Any] | None = None,
        storage: StorageConfig | None = None,
    ) -> None:
        super().__init__(node_id, sim, net)
        self.applied: list[tuple[int, Command]] = []
        self._apply_fn = apply_fn
        if storage is not None:
            self.disk = NodeDisk(node_id, storage, tracer=sim.tracer)
        self.replica = PaxosReplica(
            replica_id=node_id,
            members=members,
            transport=NodeTransport(self),
            apply_fn=self._apply,
            config=config,
            initial_leader=initial_leader,
            snapshot_fn=self._snapshot,
            restore_fn=self._restore,
            storage=self.disk.storage_for("paxos") if self.disk is not None else None,
            reset_fn=self._reset,
        )
        for msg_type in PAXOS_MESSAGE_TYPES:
            self.on(msg_type, self._route)

    def _snapshot(self) -> list[tuple[int, Command]]:
        return list(self.applied)

    def _restore(self, state: list[tuple[int, Command]]) -> None:
        self.applied = list(state)

    def _reset(self) -> None:
        self.applied = []

    def _route(self, src: str, msg: Any) -> None:
        self.replica.on_message(src, msg)

    def _apply(self, slot: int, command: Command) -> Any:
        self.applied.append((slot, command))
        if self._apply_fn is not None:
            return self._apply_fn(slot, command)
        return command.payload

    def on_restart(self) -> None:
        self.replica.on_host_restart()

    def propose(self, command: Command) -> Future:
        return self.replica.propose(command)


def build_cluster(
    sim: Simulator,
    net: SimNetwork,
    n: int = 3,
    config: PaxosConfig | None = None,
    apply_fn: Callable[[int, Command], Any] | None = None,
    storage: StorageConfig | None = None,
) -> list[PaxosHost]:
    """Build an n-node cluster with node 0 as the initial leader."""
    names = [f"n{i}" for i in range(n)]
    return [
        PaxosHost(
            name,
            sim,
            net,
            members=list(names),
            config=config,
            initial_leader=names[0],
            apply_fn=apply_fn,
            storage=storage,
        )
        for name in names
    ]


def current_leader(hosts: list[PaxosHost]) -> PaxosHost | None:
    """The unique live host whose replica believes it leads, if any."""
    leaders = [h for h in hosts if h.alive and h.replica.is_leader and not h.replica.retired]
    if len(leaders) == 1:
        return leaders[0]
    return None

"""Wire messages for Multi-Paxos."""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.commands import Command
from repro.consensus.single import Ballot


@dataclass(frozen=True, slots=True)
class Prepare:
    """Phase 1a for every slot >= from_slot."""

    ballot: Ballot
    from_slot: int


@dataclass(frozen=True, slots=True)
class Promise:
    """Phase 1b: accepted suffix plus the acceptor's commit index."""

    ballot: Ballot
    from_slot: int
    accepted: tuple[tuple[int, Ballot, Command], ...]
    commit_index: int


@dataclass(frozen=True, slots=True)
class PrepareNack:
    ballot: Ballot
    promised: Ballot
    lease_holder: str | None = None  # set when rejected because of a live lease


@dataclass(frozen=True, slots=True)
class Accept:
    """Phase 2a for one slot; piggybacks the leader's commit index."""

    ballot: Ballot
    slot: int
    command: Command
    commit_index: int


@dataclass(frozen=True, slots=True)
class Accepted:
    ballot: Ballot
    slot: int


@dataclass(frozen=True, slots=True)
class AcceptBatch:
    """Phase 2a for several *contiguous* slots packed into one message.

    Sent when ``PaxosConfig.accept_coalescing`` is on: slot ``start_slot
    + i`` carries ``commands[i]``.  The receiver journals every covered
    slot and answers with one :class:`AcceptedBatch` from a single fsync
    completion, so a pipelined burst costs one network delivery (and one
    durability barrier) per peer instead of one per slot.
    """

    ballot: Ballot
    start_slot: int
    commands: tuple[Command, ...]
    commit_index: int


@dataclass(frozen=True, slots=True)
class AcceptedBatch:
    """Phase 2b acks for every slot of an :class:`AcceptBatch` that was
    journaled durably (slots that failed their WAL append are omitted
    and covered by the leader's retry tick)."""

    ballot: Ballot
    slots: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class AcceptNack:
    ballot: Ballot
    slot: int
    promised: Ballot


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Leader liveness + commit propagation + lease renewal.

    With follower reads enabled (``PaxosConfig.follower_reads``) the
    leader additionally piggybacks a per-member *read grant* and its
    current conflict window: ``read_grant`` authorizes the receiver to
    serve local reads until ``send_time + lease_duration``,
    ``commit_index`` doubles as the commit frontier the receiver must
    have applied, and ``dirty_keys``/``dirty_all`` name the keys of
    writes still in flight at the leader (reads of those must bounce).
    All three fields default to the follower-reads-off values so wire
    traffic is unchanged when the knob is off.
    """

    ballot: Ballot
    commit_index: int
    send_time: float
    read_grant: bool = False
    dirty_keys: tuple = ()
    dirty_all: bool = False


@dataclass(frozen=True, slots=True)
class HeartbeatAck:
    ballot: Ballot
    send_time: float
    applied_index: int


@dataclass(frozen=True, slots=True)
class TransferLease:
    """Leadership handoff: the current leader blesses ``target``.

    Every member updates its leader hint so the target's Prepare passes
    the lease guard; the target campaigns immediately.
    """

    ballot: Ballot
    target: str


@dataclass(frozen=True, slots=True)
class NotMember:
    """Tells an ex-member it was removed by a committed config change.

    Configurations only move forward within a group generation and a
    removed node is never re-added to the same group (group operations
    create fresh groups instead), so this notification is authoritative.
    """

    commit_index: int


@dataclass(frozen=True, slots=True)
class CatchupRequest:
    """Ask a peer for chosen entries starting at from_slot."""

    from_slot: int


@dataclass(frozen=True, slots=True)
class CatchupReply:
    entries: tuple[tuple[int, Command], ...]
    commit_index: int


@dataclass(frozen=True, slots=True)
class InstallSnapshot:
    """State transfer for a peer too far behind a compacted log.

    ``snapshot`` is the opaque application state produced by the host's
    snapshot function at ``last_included`` (every slot <= last_included
    applied); ``members`` is the configuration in effect there.
    """

    snapshot: object
    last_included: int
    members: tuple[str, ...]
    commit_index: int

"""Transport abstraction decoupling Paxos from message framing.

A physical Scatter node may host several Paxos replicas at once (briefly,
during group reconfigurations), so replicas do not own a network address.
Instead the host hands each replica a :class:`Transport` that tags and
routes its messages; the standalone test harness uses a trivial one.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Protocol

from repro.sim.events import EventHandle


class Transport(Protocol):
    """What a Paxos replica needs from its host."""

    @property
    def now(self) -> float:
        """Current virtual time."""

    def send(self, dst: str, msg: Any) -> None:
        """Best-effort one-way message to peer replica ``dst``."""

    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule a callback, suppressed if the host crashes."""

    def rng(self) -> random.Random:
        """Deterministic randomness (election jitter)."""

    @property
    def tracer(self) -> Any:
        """The simulator's ``repro.obs`` tracer, or None when tracing is off.

        Optional: replicas read it with ``getattr(transport, "tracer",
        None)``, so transports that predate tracing keep working.
        """

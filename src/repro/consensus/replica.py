"""Leader-based Multi-Paxos replica with leases and reconfiguration.

One ``PaxosReplica`` is one member of one group's replicated state
machine.  The protocol follows the classic Multi-Paxos structure:

- **Leader election**: followers that miss heartbeats for a randomized
  election timeout run phase 1 (Prepare) over all slots above their
  commit index.  Ballot numbers are (round, replica_id) pairs.
- **Replication**: the leader assigns commands to slots and runs phase 2
  (Accept/Accepted); a slot is chosen once a majority of the current
  configuration accepts it.  Chosen slots are applied in order.
- **Leases**: the leader renews a read lease with each heartbeat round
  that a majority acknowledges; while the lease is live (and the leader
  has committed a no-op in its own ballot — the read barrier) reads are
  served locally without a log round trip.  The simulator has no clock
  skew, and acceptors refuse to promise to a new candidate while the
  lease they granted is live, so lease reads are linearizable.
- **Reconfiguration**: membership changes are commands in the log,
  restricted to one added or removed member per command, so consecutive
  configurations always have intersecting majorities.  The leader stalls
  proposals past an in-flight configuration change (the *barrier*) so
  every slot's quorum is evaluated under the configuration in effect for
  that slot.

Durability model: by default the replica object *is* the durable state
(promised ballot, log, applied index); a host crash suppresses timers
and message handling, and :meth:`on_host_restart` resets only volatile
leadership state, mirroring a process that recovers its disk perfectly
but forgets its role.  When a :class:`repro.storage` region is attached
(``storage=`` constructor argument), durability is modelled for real:
promises and accepts are journaled to a write-ahead log and acked only
from the fsync-completion callback, choices are journaled lazily,
snapshots compact the WAL, and :meth:`on_host_restart` rebuilds all
acceptor and application state from the snapshot plus the fsynced WAL
suffix — anything the crash lost (power-failure semantics) is recovered
through ordinary catch-up.  A replica whose disk was lost or detected
corrupt recovers *amnesiac*: a non-voting learner until it has caught
up to everything the leader had committed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.consensus.commands import CMD_BATCH, CMD_CONFIG, Command, ConfigChange
from repro.consensus.log import PaxosLog
from repro.consensus.messages import (
    Accept,
    AcceptBatch,
    Accepted,
    AcceptedBatch,
    AcceptNack,
    CatchupReply,
    CatchupRequest,
    Heartbeat,
    HeartbeatAck,
    InstallSnapshot,
    NotMember,
    Prepare,
    PrepareNack,
    Promise,
    TransferLease,
)
from repro.consensus.single import BALLOT_ZERO, Ballot
from repro.consensus.transport import Transport
from repro.net.futures import Future
from repro.net.retry import decorrelated_jitter
from repro.obs.spans import PAXOS_ELECTION, PAXOS_SLOT
from repro.storage.disk import (
    REC_ACCEPT,
    REC_CHOSEN,
    REC_PROMISE,
    ReplicaStorage,
    command_label,
)


class NotLeader(Exception):
    """The contacted replica is not the group leader."""

    def __init__(self, leader_hint: str | None) -> None:
        super().__init__(f"not leader (hint: {leader_hint})")
        self.leader_hint = leader_hint


class ProposalLost(Exception):
    """Leadership was lost with the proposal in flight; outcome unknown."""


@dataclass(frozen=True)
class PaxosConfig:
    """Protocol timing knobs (seconds of virtual time)."""

    heartbeat_interval: float = 0.25
    election_timeout: float = 1.0
    lease_duration: float = 0.8
    lease_reads: bool = True
    retry_interval: float = 0.5
    # Ceiling for the decorrelated-jitter backoff on Accept
    # retransmissions: consecutive unfruitful retry rounds grow from
    # retry_interval toward retry_cap, and any commit progress resets the
    # delay.  Keeps stalled leaders from retrying in lockstep under fault
    # storms without slowing the first retransmission.
    retry_cap: float = 2.0
    catchup_batch: int = 200
    # Compact the log once this many applied entries accumulate beyond
    # the last snapshot; 0 disables compaction.  Compaction also needs a
    # snapshot_fn, so replicas built without one are unaffected.  The
    # default keeps standard deployments from growing unbounded logs
    # while staying out of the way of short unit-test runs.
    compact_threshold: int = 512
    # Batch concurrently proposed app commands into one log slot: fewer
    # Paxos rounds per operation under bursty load.  batch_window is how
    # long the leader waits to coalesce (0 batches only same-instant
    # proposals); batch_max caps commands per slot.
    batch: bool = False
    batch_window: float = 0.002
    batch_max: int = 16
    # Durable-write latency: an acceptor must persist its promise or
    # accepted value before answering, so replies to Prepare and Accept
    # are delayed by this much (models fsync; 0 = in-memory).
    disk_write_latency: float = 0.0
    # Pipeline flow control: bound on in-flight unchosen slots at the
    # leader.  Proposals beyond the window wait in the admission queue
    # and are issued as commits drain, so bursty load fills the pipe
    # instead of growing unbounded retry state (retry ticks scan only
    # the bounded in-flight window).  0 = unbounded (historical
    # behavior).
    pipeline_depth: int = 0
    # Pack Accepts for contiguous slots to the same peer into one
    # AcceptBatch (and the acks into one AcceptedBatch), cutting
    # per-slot network deliveries on the pipelined hot path.  Off by
    # default (historical per-slot messages).
    accept_coalescing: bool = False
    # Linearizable follower reads (scale-out read path).  The leader
    # piggybacks per-member read grants plus its commit frontier and
    # in-flight write set on heartbeats; a granted follower serves a
    # read locally when its applied prefix covers the frontier and no
    # in-flight write overlaps the key, else it bounces to the leader.
    # Safety rests on quorum expansion: while a member's grant is live
    # the leader will not choose any write that member has not
    # accepted (see docs/PROTOCOLS.md, "Life of a read").  Off by
    # default; defaults are byte-identical to the leader-only path.
    follower_reads: bool = False

    def __post_init__(self) -> None:
        if self.lease_duration >= self.election_timeout:
            raise ValueError("lease_duration must be < election_timeout")
        if self.heartbeat_interval >= self.lease_duration:
            raise ValueError("heartbeat_interval must be < lease_duration")
        if self.pipeline_depth < 0:
            raise ValueError("pipeline_depth must be >= 0")


@dataclass
class _PendingSlot:
    command: Command
    acks: set[str] = field(default_factory=set)
    # Open repro.obs span covering this slot's accept round(s); None when
    # tracing is off.
    span: Any = None
    # Does the command write any key?  Only computed (and consulted)
    # with follower reads on: write-bearing slots are chosen under the
    # expanded quorum (majority plus every live read grantee).
    write: bool = False


# Shared empty key set for write classifiers and conflict windows.
_NO_KEYS: frozenset = frozenset()


class PaxosReplica:
    """One member of a Multi-Paxos group."""

    def __init__(
        self,
        replica_id: str,
        members: list[str],
        transport: Transport,
        apply_fn: Callable[[int, Command], Any],
        config: PaxosConfig | None = None,
        initial_leader: str | None = None,
        snapshot_fn: Callable[[], Any] | None = None,
        restore_fn: Callable[[Any], None] | None = None,
        storage: ReplicaStorage | None = None,
        reset_fn: Callable[[], None] | None = None,
        write_keys_fn: Callable[[Command], tuple[frozenset, bool]] | None = None,
    ) -> None:
        # A replica whose id is not (yet) in ``members`` is a *learner*:
        # it accepts and applies but never campaigns.  This is how a
        # freshly joined node bootstraps — it replays the log from the
        # group's genesis membership and becomes a voter once the config
        # change that added it applies.
        self.replica_id = replica_id
        self.members = list(members)
        self.transport = transport
        self.apply_fn = apply_fn
        self.snapshot_fn = snapshot_fn
        self.restore_fn = restore_fn
        self.config = config or PaxosConfig()
        self._snapshot: Any = None  # latest compacted state
        # Durable-storage model (None = the perfect-durability fiction).
        # ``reset_fn`` resets the application state machine to its
        # genesis image so recovery can re-derive it by replay.
        self.storage = storage
        self.reset_fn = reset_fn
        self._initial_members = list(members)
        # Amnesia: the disk was lost or found corrupt at recovery.  An
        # amnesiac replica never votes (no Promise, no Accepted, no
        # HeartbeatAck, no campaigns) until it has applied everything
        # the leader had committed — see _on_message_amnesiac.
        self.amnesiac = False
        self._amnesia_target: int | None = None
        # repro.obs tracer, if the transport's simulator has one bound
        # (None otherwise — the disabled fast path).
        self.tracer = getattr(transport, "tracer", None)
        self._election_span: Any = None

        # Acceptor state (durable).
        self.promised: Ballot = BALLOT_ZERO
        self.log = PaxosLog()
        self.applied_index = -1
        if storage is not None:
            self.log.observer = self._wal_note_chosen

        # Learner / follower state.
        self.leader_hint: str | None = initial_leader
        self.last_leader_contact = transport.now
        self.retired = False
        # Per-peer catch-up throttle: asking one (possibly dead) peer
        # must not suppress asking a healthy one.
        self._last_catchup_request: dict[str, float] = {}

        # Leader state (volatile).
        self.is_leader = False
        self.ballot: Ballot = BALLOT_ZERO
        self._max_round_seen = 0
        self._pending: dict[int, _PendingSlot] = {}
        self._proposal_futures: dict[int, Future] = {}
        self._queue: list[tuple[Command, Future]] = []
        self._next_slot = 0
        self._barrier_slot: int | None = None
        self._read_barrier_slot: int | None = None
        self._lease_until = -1.0
        self._hb_acks: dict[float, set[str]] = {}
        self.member_last_ack: dict[str, float] = {}
        self._retry_delay: float | None = None

        # Batching state (leader only).
        self._batch_buffer: list[tuple[Command, Future]] = []
        self._batch_flush_pending = False
        self._batch_flush_timer: Any = None

        # Accept-coalescing outbox (leader only): slots issued since the
        # last flush, packed into contiguous-run AcceptBatches.
        self._accept_outbox: list[int] = []
        self._accept_flush_pending = False

        # Follower reads.  ``write_keys_fn`` classifies a command's
        # write set as ``(keys, wildcard)``; without one every command
        # is conservatively a wildcard write.  Leader side: ``_grants``
        # maps member -> read-grant expiry (the quorum-expansion
        # obligation).  Follower side (``_fr_*``): the grant and
        # conflict window from the last granting heartbeat.  All
        # volatile; empty/inert while ``config.follower_reads`` is off.
        self.write_keys_fn = write_keys_fn
        self._grants: dict[str, float] = {}
        self._fr_grant_until = -1.0
        self._fr_frontier = -1
        self._fr_dirty: frozenset = _NO_KEYS
        self._fr_dirty_all = False

        # Campaign state.
        self._campaigning = False
        self._campaign_promises: dict[str, Promise] = {}
        self._campaign_from_slot = 0
        self._backlog: list[tuple[int, Command]] = []

        self._start_timers(initial_leader == replica_id)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _start_timers(self, lead_now: bool) -> None:
        if lead_now:
            self.transport.set_timer(0.0, self._start_campaign)
        self._schedule_election_check()

    def on_host_restart(self) -> None:
        """Host recovered from a crash.

        Without a storage region the replica object is the durable
        state, so only volatile leadership is forgotten.  With one,
        recovery is real: acceptor and application state are rebuilt
        from the last snapshot plus the fsynced WAL suffix.
        """
        self._reset_leader_state(fail_with=ProposalLost("host restarted"))
        self._end_election_span("aborted")
        self._campaigning = False
        self._reset_follower_read_state()
        if self.storage is not None:
            self._recover_from_storage()
        self.last_leader_contact = self.transport.now
        self._schedule_election_check()

    # ------------------------------------------------------------------
    # Durable storage: write path and recovery
    # ------------------------------------------------------------------
    def _wal_note_chosen(self, slot: int, value: Any) -> None:
        """PaxosLog observer: lazily journal choices (no fsync barrier)."""
        self.storage.append_chosen(slot, value)

    def _persist_promise(self, ballot: Ballot) -> bool:
        """Journal a promise before acking it.  A demo bug patches this
        to skip the append — the acked-but-not-durable bug the
        ``acceptor-durability`` invariant exists to catch."""
        return self.storage.append_promise(ballot)

    def _fsync_then_send(
        self, dst: str, msg: Any, kind: str, ballot: Ballot, slot: int, label: str
    ) -> None:
        """Ack only once the fsync covering the journaled record completes.

        The timer is crash-guarded, so a crash inside the window means
        no ack was sent — consistent with the un-fsynced record being
        lost to the power failure.
        """
        storage = self.storage

        def on_durable() -> None:
            if kind == REC_PROMISE:
                storage.note_acked_promise(ballot)
            else:
                storage.note_acked_accept(slot, ballot, label)
            self.transport.send(dst, msg)

        self._after_fsync(on_durable)

    def _after_fsync(self, on_durable: Callable[[], None]) -> None:
        """Run ``on_durable`` once an fsync covering the WAL tail completes.

        With ``fsync_coalesce`` off this is the historical path: a
        private timer per ack.  With it on, the ack joins the node
        disk's group-commit batch and fires from its single completion
        callback; either way the timer is crash-guarded, so a power
        failure withholds every ack whose record the crash threw away.
        """
        storage = self.storage
        upto = storage.current_seq()
        disk = storage.disk
        if disk.config.fsync_coalesce > 0:
            disk.enqueue_fsync(storage, upto, self.transport.set_timer, on_durable)
            return

        def complete() -> None:
            if not storage.fsync_ok():
                return  # IO error at fsync time: record stays volatile, no ack
            storage.mark_synced(upto)
            on_durable()

        self.transport.set_timer(storage.fsync_delay(), complete)

    def _recover_from_storage(self) -> None:
        """Rebuild all state from disk: snapshot, then WAL replay.

        Promise and accept records restore the acceptor's obligations;
        chosen records restore the committed prefix, and re-applying it
        (via ``apply_fn``) re-derives the application state machine from
        the genesis image ``reset_fn`` restored.  A wiped or corrupt
        region instead enters amnesia with empty state.
        """
        storage = self.storage
        acked_promise = storage.acked_promise
        acked_accepts = dict(storage.acked_accepts)
        snapshot, records = storage.recovery_image()

        self.promised = storage.durable_promise
        self.log = PaxosLog()
        self.applied_index = -1
        self.members = list(self._initial_members)
        self.ballot = BALLOT_ZERO
        self._max_round_seen = 0
        self._next_slot = 0
        if self.reset_fn is not None:
            self.reset_fn()
        if snapshot is not None:
            state, last_included, members = snapshot
            if self.restore_fn is not None:
                self.restore_fn(state)
            self._snapshot = state
            self.applied_index = last_included
            self.members = list(members)
            self.log.reset_to(last_included + 1)
        for record in records:
            if record.kind == REC_PROMISE:
                if record.ballot > self.promised:
                    self.promised = record.ballot
            elif record.kind == REC_ACCEPT:
                # Accepting at a ballot implies having promised it.
                if record.ballot > self.promised:
                    self.promised = record.ballot
                if record.slot >= self.log.first_slot and not self.log.is_chosen(record.slot):
                    entry = self.log.entry(record.slot)
                    if entry.accepted_ballot is None or record.ballot >= entry.accepted_ballot:
                        entry.accepted_ballot = record.ballot
                        entry.accepted_value = record.value
            elif record.kind == REC_CHOSEN:
                self.log.mark_chosen(record.slot, record.value)
        self.log.observer = self._wal_note_chosen
        self._note_ballot(self.promised)
        self.amnesiac = storage.amnesiac
        self._amnesia_target = None
        if not self.amnesiac:
            self._check_durability(acked_promise, acked_accepts)
        self._apply_committed()

    def _check_durability(
        self, acked_promise: Ballot, acked_accepts: dict[int, tuple[Ballot, str]]
    ) -> None:
        """Compare recovered state against the acked ledger (checker aid).

        A breach here is definitive evidence the replica reneged on
        something it acked before the crash; it is recorded on the
        storage region, where the ``acceptor-durability`` invariant
        reports it.  Never consulted by the protocol.
        """
        storage = self.storage
        if acked_promise > self.promised:
            storage.reneged.append(
                f"{self.replica_id}/{storage.gid}: recovered promised "
                f"{self.promised} below acked promise {acked_promise}"
            )
        for slot, (ballot, label) in sorted(acked_accepts.items()):
            if slot <= self.applied_index:
                continue  # covered by the snapshot image
            entry = self.log.get(slot)
            intact = entry is not None and (
                entry.chosen
                or (
                    entry.accepted_ballot is not None
                    and (
                        entry.accepted_ballot > ballot
                        or (
                            entry.accepted_ballot == ballot
                            and command_label(entry.accepted_value) == label
                        )
                    )
                )
            )
            if not intact:
                storage.reneged.append(
                    f"{self.replica_id}/{storage.gid}: slot {slot} acked accept "
                    f"at {ballot} ({label}) missing after recovery"
                )

    def _on_message_amnesiac(self, src: str, msg: Any) -> None:
        """Learner-only processing for a replica that lost its disk.

        It never votes — no Promise, no Accepted, and no HeartbeatAck
        (an amnesiac ack must not help extend a lease, because the
        forgotten promises may be exactly what made that lease stale).
        It tracks the leader, pulls the log through catch-up, and
        becomes a voter again once it has applied everything the leader
        had committed when contact was re-established.
        """
        kind = type(msg)
        if kind in (Heartbeat, Accept, AcceptBatch):
            self._note_ballot(msg.ballot)
            if src != self.replica_id:
                self.leader_hint = src
                self.last_leader_contact = self.transport.now
            target = self._amnesia_target
            if target is None or msg.commit_index > target:
                self._amnesia_target = msg.commit_index
            if msg.commit_index > self.log.commit_index:
                self._request_catchup(src)
        elif kind is CatchupReply:
            self._on_catchup_reply(src, msg)
        elif kind is InstallSnapshot:
            self._on_install_snapshot(src, msg)
        elif kind is NotMember:
            self.retire()
            return
        self._maybe_end_amnesia()

    def _maybe_end_amnesia(self) -> None:
        if self._amnesia_target is None or self.applied_index < self._amnesia_target:
            return
        self.amnesiac = False
        self._amnesia_target = None
        self.storage.clear_amnesia()
        # Snapshot the caught-up state so the next crash does not have
        # to repeat the full catch-up from genesis.
        if self.snapshot_fn is not None and self.applied_index >= 0:
            self._snapshot = self.snapshot_fn()
            self.storage.save_snapshot(
                self._snapshot, self.applied_index, tuple(self.members)
            )
        self.last_leader_contact = self.transport.now

    def _end_election_span(self, outcome: str) -> None:
        """Close the open election span, recording how the campaign ended."""
        span = self._election_span
        if span is not None:
            self._election_span = None
            self.tracer.finish(span, outcome=outcome)

    def _fail_pending_spans(self, outcome: str) -> None:
        """Close spans of in-flight slots that will never reach a quorum here."""
        tracer = self.tracer
        if tracer is None:
            return
        for pending in self._pending.values():
            if pending.span is not None and pending.span.open:
                tracer.finish(pending.span, outcome=outcome)

    def _reset_leader_state(self, fail_with: Exception) -> None:
        self._fail_pending_spans("lost")
        self.is_leader = False
        self._barrier_slot = None
        self._read_barrier_slot = None
        self._lease_until = -1.0
        self._hb_acks.clear()
        self._retry_delay = None
        self._backlog = []
        for future in self._proposal_futures.values():
            future.set_exception(fail_with)
        self._proposal_futures.clear()
        self._pending.clear()
        for _command, future in self._queue:
            future.set_exception(fail_with)
        self._queue.clear()
        for _command, future in self._batch_buffer:
            future.set_exception(fail_with)
        self._batch_buffer.clear()
        self._batch_flush_pending = False
        timer = self._batch_flush_timer
        if timer is not None:
            self._batch_flush_timer = None
            timer.cancel()
        self._accept_outbox.clear()
        self._accept_flush_pending = False
        self._grants.clear()

    def _reset_follower_read_state(self) -> None:
        """Drop the local read grant and conflict window (all volatile)."""
        self._fr_grant_until = -1.0
        self._fr_frontier = -1
        self._fr_dirty = _NO_KEYS
        self._fr_dirty_all = False

    def retire(self) -> None:
        """Leave the group permanently (removed by reconfiguration)."""
        if self.retired:
            return
        self.retired = True
        self._reset_leader_state(fail_with=NotLeader(self.leader_hint))
        self._end_election_span("retired")
        self._campaigning = False
        self._reset_follower_read_state()

    # ------------------------------------------------------------------
    # Public API (called by the group layer on this replica's host)
    # ------------------------------------------------------------------
    def propose(self, command: Command) -> Future:
        """Replicate ``command``; resolves with the local apply result.

        Fails with :class:`NotLeader` if this replica does not lead, or
        :class:`ProposalLost` if leadership is lost while in flight (the
        command may or may not have been chosen — callers retry with a
        dedup key).
        """
        future = Future()
        if self.retired or not self.is_leader:
            future.set_exception(NotLeader(self.leader_hint))
            return future
        if self.config.batch and command.kind == "app":
            self._batch_buffer.append((command, future))
            if len(self._batch_buffer) >= self.config.batch_max:
                self._flush_batch()
            elif not self._batch_flush_pending:
                self._batch_flush_pending = True
                self._batch_flush_timer = self.transport.set_timer(
                    self.config.batch_window, self._flush_batch
                )
            return future
        # Non-batchable commands must not overtake buffered ones.
        self._flush_batch()
        if self._barrier_slot is not None or self._backlog or self._pipe_full():
            self._queue.append((command, future))
            return future
        self._issue(command, future)
        return future

    def _flush_batch(self) -> None:
        self._batch_flush_pending = False
        timer = self._batch_flush_timer
        if timer is not None:
            # batch_max (or a non-batchable command) forced an early
            # flush: cancel the pending window timer instead of letting
            # it fire as a wasted hot-path event that could also flush a
            # *later* batch before its window.  Cancel-after-fire (the
            # timer itself called us) is a no-op.
            self._batch_flush_timer = None
            timer.cancel()
        if not self._batch_buffer:
            return
        buffered, self._batch_buffer = self._batch_buffer, []
        if not self.is_leader or self.retired:
            for _c, fut in buffered:
                fut.set_exception(NotLeader(self.leader_hint))
            return
        if len(buffered) == 1:
            command, future = buffered[0]
        else:
            command = Command(
                kind=CMD_BATCH, payload=tuple(c for c, _f in buffered)
            )
            future = Future()
            subs = [f for _c, f in buffered]

            def distribute(f: Future) -> None:
                if f.exception is not None:
                    for sub in subs:
                        sub.set_exception(f.exception)
                    return
                for sub, result in zip(subs, f.result()):
                    sub.set_result(result)

            future.add_callback(distribute)
        if self._barrier_slot is not None or self._backlog or self._pipe_full():
            self._queue.append((command, future))
        else:
            self._issue(command, future)

    def read(self, query: Callable[[], Any]) -> Future:
        """Linearizable read.

        Under a live lease (and past the read barrier) the query runs
        locally; otherwise it is replicated as a log entry, which gives
        the lease-off ablation its cost.
        """
        future = Future()
        if self.retired or not self.is_leader:
            future.set_exception(NotLeader(self.leader_hint))
            return future
        if self.config.lease_reads and self._lease_valid():
            future.set_result(query())
            return future
        read_future = self.propose(Command(kind="read", payload=query))
        read_future.add_callback(
            lambda f: future.set_exception(f.exception)
            if f.exception
            else future.set_result(f.result())
        )
        return future

    def _lease_valid(self) -> bool:
        if self._read_barrier_slot is None or self.applied_index < self._read_barrier_slot:
            return False
        return self.transport.now < self._lease_until

    @property
    def lease_active(self) -> bool:
        return self.is_leader and self._lease_valid()

    def follower_read_allowed(self, key: Any) -> bool:
        """Can this (non-leader) replica serve a linearizable read of ``key``?

        All of the following must hold (docs/PROTOCOLS.md, "Life of a
        read"): follower reads are on; this replica is an ordinary
        follower (not leader, retired, or amnesiac); the leader's read
        grant is live; the applied prefix covers the granted commit
        frontier; and no in-flight write overlaps the key — neither in
        the leader-advertised dirty set nor accepted locally above the
        applied prefix.  Any failed condition means *bounce to the
        leader*, never a wrong answer.
        """
        if (
            not self.config.follower_reads
            or self.is_leader
            or self.retired
            or self.amnesiac
        ):
            return False
        if self.transport.now >= self._fr_grant_until:
            return False
        if self.applied_index < self._fr_frontier:
            return False
        return self._fr_conflict_free(key)

    def _fr_conflict_free(self, key: Any) -> bool:
        """The conflict-window check: does no in-flight write cover ``key``?

        Two windows are consulted.  The *advertised* window
        (``_fr_dirty``) is the leader's in-flight write set from the
        granting heartbeat — advance notice that a write is coming.
        The *local* window is every accepted-or-chosen log entry above
        the applied prefix: quorum expansion guarantees any write that
        commits while our grant is live was accepted here first, so a
        clean local window proves the applied prefix is read-current.
        The ``stale-follower-read`` demo bug patches this method out.
        """
        if self._fr_dirty_all or key in self._fr_dirty:
            return False
        for value in self.log.pending_values(self.applied_index + 1):
            keys, wildcard = self._command_writes(value)
            if wildcard or key in keys:
                return False
        return True

    def _command_writes(self, command: Command) -> tuple[frozenset, bool]:
        """``(keys, wildcard)`` the command may write, via ``write_keys_fn``.

        Without a classifier every command is conservatively a wildcard
        write, so consensus-only deployments stay safe (follower reads
        bounce whenever anything is in flight).
        """
        fn = self.write_keys_fn
        if fn is None:
            return (_NO_KEYS, True)
        return fn(command)

    def leadership_view(self) -> dict:
        """Read-only leadership snapshot for invariant checkers.

        Used by ``repro.check`` to assert at most one leader (and one
        live lease) per group per ballot; safe to call at any time and
        never mutates replica state.
        """
        return {
            "is_leader": self.is_leader,
            "ballot": self.ballot,
            "lease_active": self.lease_active,
            "commit_index": self.log.commit_index,
            "retired": self.retired,
        }

    def transfer_leadership(self, target: str) -> bool:
        """Hand leadership to ``target`` if this replica is idle.

        Returns False (and does nothing) unless this replica leads, the
        target is a member, and no proposals are in flight — a transfer
        mid-stream would fail them needlessly.
        """
        if (
            not self.is_leader
            or self.retired
            or target == self.replica_id
            or target not in self.members
            or self._pending
            or self._queue
            or self._backlog
            or self._barrier_slot is not None
        ):
            return False
        msg = TransferLease(ballot=self.ballot, target=target)
        for member in self.members:
            if member != self.replica_id:
                self.transport.send(member, msg)
        self.leader_hint = target
        self._reset_leader_state(fail_with=NotLeader(target))
        self.last_leader_contact = self.transport.now
        return True

    def _on_transfer_lease(self, src: str, msg: TransferLease) -> None:
        if msg.ballot < self.promised or src == self.replica_id:
            return
        self.leader_hint = msg.target
        self.last_leader_contact = self.transport.now
        if msg.target == self.replica_id and not self.is_leader:
            self.transport.set_timer(0.0, self._start_campaign)

    def suspected_members(self, dead_after: float) -> list[str]:
        """Members the leader has not heard from for ``dead_after`` seconds."""
        if not self.is_leader:
            return []
        now = self.transport.now
        out = []
        for member in self.members:
            if member == self.replica_id:
                continue
            last = self.member_last_ack.get(member, self.last_leader_contact)
            if now - last > dead_after:
                out.append(member)
        return out

    # ------------------------------------------------------------------
    # Message entry point
    # ------------------------------------------------------------------
    def on_message(self, src: str, msg: Any) -> None:
        if self.retired:
            return
        if self.amnesiac:
            self._on_message_amnesiac(src, msg)
            return
        handler = self._HANDLERS.get(type(msg))
        if handler is not None:
            handler(self, src, msg)

    def _note_ballot(self, ballot: Ballot) -> None:
        if ballot[0] > self._max_round_seen:
            self._max_round_seen = ballot[0]

    # ------------------------------------------------------------------
    # Election
    # ------------------------------------------------------------------
    def _schedule_election_check(self) -> None:
        jitter = self.transport.rng().uniform(1.0, 2.0)
        self.transport.set_timer(self.config.election_timeout * jitter, self._election_check)

    def _election_check(self) -> None:
        if self.retired:
            return
        idle = self.transport.now - self.last_leader_contact
        if not self.is_leader and not self._campaigning and idle >= self.config.election_timeout:
            self._start_campaign()
        self._schedule_election_check()

    def _start_campaign(self) -> None:
        if self.retired or self.amnesiac or self.replica_id not in self.members:
            return
        self._campaigning = True
        self._campaign_promises = {}
        round_num = max(self._max_round_seen, self.promised[0], self.ballot[0]) + 1
        self.ballot = (round_num, self.replica_id)
        if self.tracer is not None:
            self._end_election_span("superseded")
            self.tracer.metrics.inc("paxos.elections")
            self._election_span = self.tracer.begin(
                PAXOS_ELECTION, replica=self.replica_id, round=round_num
            )
        self._note_ballot(self.ballot)
        self._campaign_from_slot = self.log.commit_index + 1
        prepare = Prepare(ballot=self.ballot, from_slot=self._campaign_from_slot)
        for member in self.members:
            self.transport.send(member, prepare)
        # If the campaign stalls (lost messages, no quorum) the election
        # check will eventually fire again and start a fresh ballot.
        self.transport.set_timer(self.config.election_timeout, self._campaign_timeout, self.ballot)

    def _campaign_timeout(self, ballot: Ballot) -> None:
        if self._campaigning and self.ballot == ballot and not self.is_leader:
            self._campaigning = False
            self._end_election_span("timeout")

    def _on_prepare(self, src: str, msg: Prepare) -> None:
        self._note_ballot(msg.ballot)
        if src not in self.members:
            # Either src was removed, or we are lagging.  Config changes
            # are single-member and never re-add within a group, so an
            # applied config excluding src is authoritative.
            self.transport.send(src, NotMember(commit_index=self.log.commit_index))
            return
        # Lease guard: refuse to abandon a leader whose lease is live.
        lease_live = (
            self.leader_hint is not None
            and src != self.leader_hint
            and self.transport.now < self.last_leader_contact + self.config.lease_duration
        )
        if lease_live:
            self.transport.send(
                src, PrepareNack(msg.ballot, self.promised, lease_holder=self.leader_hint)
            )
            return
        if msg.ballot <= self.promised:
            self.transport.send(src, PrepareNack(msg.ballot, self.promised))
            return
        self.promised = msg.ballot
        accepted = tuple(self.log.accepted_from(msg.from_slot))
        reply = Promise(
            ballot=msg.ballot,
            from_slot=msg.from_slot,
            accepted=accepted,
            commit_index=self.log.commit_index,
        )
        if self.storage is not None:
            if not self._persist_promise(msg.ballot):
                return  # disk IO error: cannot promise durably, stay silent
            self._fsync_then_send(src, reply, REC_PROMISE, msg.ballot, -1, "")
            return
        self._send_durable(src, reply)

    def _on_promise(self, src: str, msg: Promise) -> None:
        if not self._campaigning or msg.ballot != self.ballot:
            return
        self._campaign_promises[src] = msg
        if len(self._campaign_promises) < self._majority():
            return
        self._campaigning = False
        self._become_leader()

    def _on_prepare_nack(self, src: str, msg: PrepareNack) -> None:
        self._note_ballot(msg.promised)
        if msg.ballot != self.ballot or not self._campaigning:
            return
        self._campaigning = False
        self._end_election_span("rejected")
        if msg.lease_holder is not None:
            # Defer to the live lease: treat it as leader contact so the
            # election check backs off for a full timeout.
            self.last_leader_contact = self.transport.now
            self.leader_hint = msg.lease_holder

    def _majority(self) -> int:
        return len(self.members) // 2 + 1

    def _become_leader(self) -> None:
        # If any promiser committed beyond us, we are missing chosen
        # entries (possibly compacted away elsewhere): leading now could
        # re-propose no-ops over chosen slots.  Learn first, lead later.
        best_commit = self.log.commit_index
        best_peer: str | None = None
        for peer, promise in self._campaign_promises.items():
            if promise.commit_index > best_commit:
                best_commit = promise.commit_index
                best_peer = peer
        if best_peer is not None:
            self._end_election_span("catchup")
            self._request_catchup(best_peer)
            return  # the election check will retry once caught up
        self.is_leader = True
        self.leader_hint = self.replica_id
        if self.tracer is not None:
            self.tracer.metrics.inc("paxos.leader_elected")
            self._end_election_span("won")
        self._fail_pending_spans("superseded")
        self._pending.clear()
        self._hb_acks.clear()
        self.member_last_ack = {m: self.transport.now for m in self.members}
        if self.config.follower_reads:
            # Conservative grant horizon: a previous leader may hold
            # grants we cannot see, and none can outlive the lease that
            # was live when it was issued (the lease-guard majority
            # intersects our promise majority, bounding issue time by
            # now).  Until the horizon passes, write commits wait for
            # every member's accept or the horizon itself.
            horizon = self.transport.now + self.config.lease_duration
            self._grants = {m: horizon for m in self.members if m != self.replica_id}
            self._reset_follower_read_state()
        # Merge accepted suffixes from promises: highest ballot wins per slot.
        best: dict[int, tuple[Ballot, Command]] = {}
        max_slot = self.log.commit_index
        for promise in self._campaign_promises.values():
            for slot, ballot, command in promise.accepted:
                max_slot = max(max_slot, slot)
                if slot not in best or ballot > best[slot][0]:
                    best[slot] = (ballot, command)
        backlog: list[tuple[int, Command]] = []
        for slot in range(self._campaign_from_slot, max_slot + 1):
            if self.log.is_chosen(slot):
                continue
            command = best[slot][1] if slot in best else Command.noop()
            backlog.append((slot, command))
        self._backlog = backlog
        self._next_slot = max_slot + 1
        self._drain_backlog()
        if self._barrier_slot is None and not self._backlog:
            self._propose_read_barrier()
        self._heartbeat_tick(self.ballot)
        self._retry_tick(self.ballot)

    def _propose_read_barrier(self) -> None:
        slot = self._next_slot
        self._next_slot += 1
        self._read_barrier_slot = slot
        self._send_accepts(slot, Command.noop())

    # ------------------------------------------------------------------
    # Proposal plumbing (leader)
    # ------------------------------------------------------------------
    def _issue(self, command: Command, future: Future) -> None:
        slot = self._next_slot
        self._next_slot += 1
        self._proposal_futures[slot] = future
        if command.kind == CMD_CONFIG:
            self._barrier_slot = slot
        self._send_accepts(slot, command)

    def _drain_backlog(self) -> None:
        """Re-propose recovered entries in order, stalling at config changes."""
        while self._backlog and self._barrier_slot is None:
            slot, command = self._backlog.pop(0)
            if command.kind == CMD_CONFIG:
                self._barrier_slot = slot
            self._send_accepts(slot, command)

    def _pipe_full(self) -> bool:
        """Flow control: is the in-flight unchosen-slot window exhausted?"""
        depth = self.config.pipeline_depth
        return depth > 0 and len(self._pending) >= depth

    def _flush_queue(self) -> None:
        while (
            self._queue
            and self._barrier_slot is None
            and not self._backlog
            and not self._pipe_full()
        ):
            command, future = self._queue.pop(0)
            self._issue(command, future)

    def _send_accepts(self, slot: int, command: Command) -> None:
        pending = _PendingSlot(command=command)
        if self.config.follower_reads:
            keys, wildcard = self._command_writes(command)
            pending.write = wildcard or bool(keys)
        if self.tracer is not None:
            self.tracer.metrics.inc("paxos.accept_rounds")
            pending.span = self.tracer.begin(
                PAXOS_SLOT, slot=slot, leader=self.replica_id, cmd=command.kind
            )
        self._pending[slot] = pending
        if self.config.accept_coalescing:
            # Defer the broadcast to the end of this event turn so every
            # slot issued in it (a drained queue, a flushed batch burst)
            # packs into contiguous-run AcceptBatches per peer.
            self._accept_outbox.append(slot)
            if not self._accept_flush_pending:
                self._accept_flush_pending = True
                self.transport.set_timer(0.0, self._flush_accept_outbox)
            return
        msg = Accept(
            ballot=self.ballot, slot=slot, command=command, commit_index=self.log.commit_index
        )
        for member in self.members:
            self.transport.send(member, msg)

    def _flush_accept_outbox(self) -> None:
        self._accept_flush_pending = False
        outbox, self._accept_outbox = self._accept_outbox, []
        if not self.is_leader or self.retired:
            return
        live = sorted(
            (slot, self._pending[slot].command)
            for slot in set(outbox)
            if slot in self._pending
        )
        for run in _contiguous_runs(live):
            msg = self._pack_run(run)
            for member in self.members:
                self.transport.send(member, msg)

    def _pack_run(self, run: list[tuple[int, Command]]) -> Any:
        """One wire message for a run of contiguous (slot, command) pairs."""
        if len(run) == 1:
            slot, command = run[0]
            return Accept(
                ballot=self.ballot,
                slot=slot,
                command=command,
                commit_index=self.log.commit_index,
            )
        return AcceptBatch(
            ballot=self.ballot,
            start_slot=run[0][0],
            commands=tuple(command for _slot, command in run),
            commit_index=self.log.commit_index,
        )

    def _on_accept(self, src: str, msg: Accept) -> None:
        self._note_ballot(msg.ballot)
        if msg.ballot < self.promised:
            self.transport.send(src, AcceptNack(msg.ballot, msg.slot, self.promised))
            return
        if msg.ballot > self.promised or src != self.replica_id:
            self._observe_other_leader(src, msg.ballot)
        self.promised = msg.ballot
        if msg.slot < self.log.first_slot:
            # Late retransmission for a slot we already compacted: it is
            # chosen and applied here, so just acknowledge.
            self.transport.send(src, Accepted(msg.ballot, msg.slot))
            self._learn_commit_index(src, msg.ballot, msg.commit_index)
            return
        entry = self.log.entry(msg.slot)
        if not entry.chosen:
            entry.accepted_ballot = msg.ballot
            entry.accepted_value = msg.command
        if self.storage is not None:
            if self.storage.append_accept(msg.slot, msg.ballot, msg.command):
                self._fsync_then_send(
                    src,
                    Accepted(msg.ballot, msg.slot),
                    REC_ACCEPT,
                    msg.ballot,
                    msg.slot,
                    command_label(msg.command),
                )
            # On append failure (IO error) no ack: the leader retries.
        else:
            self._send_durable(src, Accepted(msg.ballot, msg.slot))
        self._learn_commit_index(src, msg.ballot, msg.commit_index)

    def _on_accept_batch(self, src: str, msg: AcceptBatch) -> None:
        """Unpack a coalesced Accept run: journal every covered slot, then
        answer with one AcceptedBatch from a single durability barrier."""
        self._note_ballot(msg.ballot)
        if msg.ballot < self.promised:
            self.transport.send(
                src, AcceptNack(msg.ballot, msg.start_slot, self.promised)
            )
            return
        if msg.ballot > self.promised or src != self.replica_id:
            self._observe_other_leader(src, msg.ballot)
        self.promised = msg.ballot
        compacted: list[int] = []
        journaled: list[tuple[int, str]] = []
        for offset, command in enumerate(msg.commands):
            slot = msg.start_slot + offset
            if slot < self.log.first_slot:
                compacted.append(slot)  # already chosen and applied here
                continue
            entry = self.log.entry(slot)
            if not entry.chosen:
                entry.accepted_ballot = msg.ballot
                entry.accepted_value = command
            if self.storage is not None:
                if self.storage.append_accept(slot, msg.ballot, command):
                    journaled.append((slot, command_label(command)))
                # On append failure (IO error) the slot is omitted from the
                # ack; the leader's retry tick covers it.
            else:
                journaled.append((slot, command_label(command)))
        if journaled:
            acked = tuple(compacted) + tuple(slot for slot, _label in journaled)
            reply = AcceptedBatch(ballot=msg.ballot, slots=acked)
            if self.storage is not None:
                storage = self.storage
                ballot = msg.ballot

                def on_durable() -> None:
                    for slot, label in journaled:
                        storage.note_acked_accept(slot, ballot, label)
                    self.transport.send(src, reply)

                self._after_fsync(on_durable)
            else:
                self._send_durable(src, reply)
        elif compacted:
            self.transport.send(src, AcceptedBatch(msg.ballot, tuple(compacted)))
        self._learn_commit_index(src, msg.ballot, msg.commit_index)

    def _send_durable(self, dst: str, msg: Any) -> None:
        """Send after the modelled durable write completes."""
        disk = self.config.disk_write_latency
        if disk <= 0:
            self.transport.send(dst, msg)
        else:
            self.transport.set_timer(disk, self.transport.send, dst, msg)

    def _observe_other_leader(self, src: str, ballot: Ballot) -> None:
        """A higher-or-equal ballot from another node means we follow it."""
        if src == self.replica_id:
            return
        if self.is_leader and ballot > self.ballot:
            self._reset_leader_state(fail_with=ProposalLost(f"superseded by {src}"))
        if ballot >= self.promised:
            self.leader_hint = src
            self.last_leader_contact = self.transport.now

    def _on_accepted(self, src: str, msg: Accepted) -> None:
        if not self.is_leader or msg.ballot != self.ballot:
            return
        self.member_last_ack[src] = self.transport.now
        self._slot_accepted(src, msg.slot)

    def _on_accepted_batch(self, src: str, msg: AcceptedBatch) -> None:
        if not self.is_leader or msg.ballot != self.ballot:
            return
        self.member_last_ack[src] = self.transport.now
        for slot in msg.slots:
            self._slot_accepted(src, slot)
            if not self.is_leader:
                return  # a config change in the batch may have removed us

    def _slot_accepted(self, src: str, slot: int) -> None:
        pending = self._pending.get(slot)
        if pending is None or src not in self.members:
            return
        pending.acks.add(src)
        self._maybe_choose(slot, pending)

    def _grant_blocked(self, pending: _PendingSlot) -> bool:
        """Quorum expansion: is a live read grantee still missing?

        A write-bearing slot is not chosen while any member holds a
        live grant and has not accepted the slot — otherwise that
        member could serve a read that misses the write.  A grantee
        that cannot ack (crashed, partitioned, or removed from the
        configuration) blocks the slot only until its grant expires, at
        most one lease_duration; the heartbeat tick's sweep unblocks.
        """
        now = self.transport.now
        for member, until in self._grants.items():
            if now < until and member not in pending.acks:
                return True
        return False

    def _maybe_choose(self, slot: int, pending: _PendingSlot) -> None:
        if len(pending.acks) < self._majority():
            return
        if self._grants and pending.write and self._grant_blocked(pending):
            return
        del self._pending[slot]
        self._retry_delay = None
        if self.tracer is not None:
            self.tracer.metrics.inc("paxos.slots_chosen")
            if pending.span is not None and pending.span.open:
                self.tracer.finish(pending.span, outcome="chosen")
        self.log.mark_chosen(slot, pending.command)
        self._apply_committed()
        if self._barrier_slot == slot:
            pass  # cleared in _apply_committed once the config applies
        self._drain_backlog()
        self._after_commit_progress()

    def _after_commit_progress(self) -> None:
        if not self.is_leader:
            return
        if self._barrier_slot is None and not self._backlog:
            if self._read_barrier_slot is None:
                self._propose_read_barrier()
            self._flush_queue()

    def _on_accept_nack(self, src: str, msg: AcceptNack) -> None:
        self._note_ballot(msg.promised)
        if self.is_leader and msg.promised > self.ballot:
            self._reset_leader_state(fail_with=ProposalLost(f"preempted by {msg.promised}"))
            self.last_leader_contact = self.transport.now

    # ------------------------------------------------------------------
    # Heartbeats, leases, commit propagation
    # ------------------------------------------------------------------
    def _heartbeat_tick(self, ballot: Ballot) -> None:
        if not self.is_leader or self.ballot != ballot or self.retired:
            return
        now = self.transport.now
        # Step down if a majority has been silent for a full election
        # timeout.  A leader that can send but not receive (asymmetric
        # partition) would otherwise heartbeat forever: followers keep
        # hearing it, stay loyal, and never elect a reachable leader.
        # Going silent lets their election timers fire.
        if len(self.members) > 1:
            heard = sum(
                1
                for m in self.members
                if m == self.replica_id
                or now - self.member_last_ack.get(m, now) <= self.config.election_timeout
            )
            if heard < self._majority():
                self._reset_leader_state(
                    fail_with=ProposalLost("lost contact with quorum")
                )
                return
        # The leader is its own lease grantor: refreshing its contact time
        # makes its local acceptor reject foreign Prepares while it is
        # actively heartbeating, like every other member does.
        self.last_leader_contact = now
        self._hb_acks[now] = {self.replica_id}
        if len(self._hb_acks) > 64:
            for stale in sorted(self._hb_acks)[:-64]:
                del self._hb_acks[stale]
        if self.config.follower_reads:
            self._send_granting_heartbeats(now)
        else:
            hb = Heartbeat(ballot=self.ballot, commit_index=self.log.commit_index, send_time=now)
            for member in self.members:
                if member != self.replica_id:
                    self.transport.send(member, hb)
        if len(self.members) == 1:
            self._lease_until = now + self.config.lease_duration
        if self.tracer is not None:
            self.tracer.metrics.inc("paxos.heartbeats")
        self.transport.set_timer(self.config.heartbeat_interval, self._heartbeat_tick, ballot)

    # Cap on piggybacked dirty keys: a leader with a deeper write
    # pipeline than this advertises a wildcard conflict window instead,
    # keeping heartbeats O(1) under saturation (followers bounce reads,
    # the honest answer when the leader is write-saturated).
    _DIRTY_KEY_CAP = 32

    def _send_granting_heartbeats(self, now: float) -> None:
        """Follower-reads heartbeat fan-out: per-member read grants.

        A member is granted only while the leader's own lease is live
        (so a deposed leader cannot mint grants the new leader's
        conservative horizon would not cover) and the member's last ack
        is fresh, so a crashed or partitioned member stops being
        granted within one lease.  Granting records the obligation in
        ``_grants`` — the quorum-expansion half of the safety argument.
        """
        lease_live = now < self._lease_until
        dirty_keys, dirty_all = self._inflight_write_keys()
        expiry = now + self.config.lease_duration
        for member in self.members:
            if member == self.replica_id:
                continue
            last = self.member_last_ack.get(member, self.last_leader_contact)
            grant = lease_live and now - last <= self.config.lease_duration
            if grant and expiry > self._grants.get(member, -1.0):
                self._grants[member] = expiry
            self.transport.send(
                member,
                Heartbeat(
                    ballot=self.ballot,
                    commit_index=self.log.commit_index,
                    send_time=now,
                    read_grant=grant,
                    dirty_keys=dirty_keys,
                    dirty_all=dirty_all,
                ),
            )
        for member in [m for m, until in self._grants.items() if until <= now]:
            del self._grants[member]
        self._sweep_granted_slots()

    def _inflight_write_keys(self) -> tuple[tuple, bool]:
        """Keys of writes in flight at this leader (the conflict window).

        Covers every stage a write can be parked in: unchosen slots,
        the admission queue, the batch buffer, and the recovered
        backlog.  Returns ``(keys, wildcard)``; wildcard means "treat
        every key as dirty" (no classifier, or past the key cap).
        """
        keys: set = set()
        for command in self._iter_inflight_commands():
            ks, wildcard = self._command_writes(command)
            if wildcard:
                return ((), True)
            keys.update(ks)
            if len(keys) > self._DIRTY_KEY_CAP:
                return ((), True)
        return (tuple(sorted(keys, key=repr)), False)

    def _iter_inflight_commands(self):
        for pending in self._pending.values():
            yield pending.command
        for command, _future in self._queue:
            yield command
        for command, _future in self._batch_buffer:
            yield command
        for _slot, command in self._backlog:
            yield command

    def _sweep_granted_slots(self) -> None:
        """Re-evaluate pending slots blocked only on read grants.

        A grant expiring is commit progress the Accepted handlers never
        see, so each heartbeat tick re-checks: a slot with a majority
        of acks whose last live non-acking grantee just expired is
        chosen here.
        """
        if not self._pending:
            return
        for slot in sorted(self._pending):
            if not self.is_leader:
                return  # choosing can cascade into retirement/step-down
            pending = self._pending.get(slot)
            if pending is not None:
                self._maybe_choose(slot, pending)

    def _on_heartbeat(self, src: str, msg: Heartbeat) -> None:
        self._note_ballot(msg.ballot)
        if msg.ballot < self.promised:
            # Tell a stale leader about the higher ballot.  A node that
            # campaigned fruitlessly while cut off comes back with a high
            # ``promised`` it can never lower; silently ignoring the
            # leader would orphan it forever, since heartbeats are the
            # only traffic an idle group has.  The nack makes the leader
            # step down and re-elect above our ballot, after which we
            # rejoin.
            self.transport.send(src, AcceptNack(msg.ballot, -1, self.promised))
            return
        self._observe_other_leader(src, msg.ballot)
        self.promised = max(self.promised, msg.ballot)
        self.transport.send(
            src,
            HeartbeatAck(ballot=msg.ballot, send_time=msg.send_time, applied_index=self.applied_index),
        )
        if self.config.follower_reads:
            if msg.read_grant:
                self._fr_grant_until = msg.send_time + self.config.lease_duration
                self._fr_frontier = msg.commit_index
                self._fr_dirty = frozenset(msg.dirty_keys) if msg.dirty_keys else _NO_KEYS
                self._fr_dirty_all = msg.dirty_all
            else:
                # The leader stopped granting (its own lease lapsed, or
                # our acks went stale); drop ours early — conservative,
                # and converges faster than waiting out the expiry.
                self._fr_grant_until = -1.0
        self._learn_commit_index(src, msg.ballot, msg.commit_index)

    def _on_heartbeat_ack(self, src: str, msg: HeartbeatAck) -> None:
        if not self.is_leader or msg.ballot != self.ballot:
            return
        self.member_last_ack[src] = self.transport.now
        acks = self._hb_acks.get(msg.send_time)
        if acks is None:
            return
        acks.add(src)
        if len(acks) >= self._majority():
            lease_until = msg.send_time + self.config.lease_duration
            if lease_until > self._lease_until:
                self._lease_until = lease_until

    def _retry_tick(self, ballot: Ballot) -> None:
        """Retransmit Accepts for slots that have not reached a quorum.

        Fruitless retry rounds back off with decorrelated jitter toward
        ``retry_cap`` (commit progress resets to ``retry_interval``), so
        leaders stalled by the same fault do not retransmit in lockstep.
        """
        if not self.is_leader or self.ballot != ballot or self.retired:
            return
        if self.tracer is not None and self._pending:
            self.tracer.metrics.inc("paxos.retransmissions", len(self._pending))
            self.tracer.metrics.inc("paxos.accept_rounds", len(self._pending))
        if self.config.accept_coalescing:
            # Pack each peer's unacked slots into contiguous-run batches.
            per_member: dict[str, list[tuple[int, Command]]] = {}
            for slot, pending in sorted(self._pending.items()):
                for member in self.members:
                    if member not in pending.acks:
                        per_member.setdefault(member, []).append(
                            (slot, pending.command)
                        )
            for member, need in per_member.items():
                for run in _contiguous_runs(need):
                    self.transport.send(member, self._pack_run(run))
        else:
            for slot, pending in sorted(self._pending.items()):
                msg = Accept(
                    ballot=self.ballot,
                    slot=slot,
                    command=pending.command,
                    commit_index=self.log.commit_index,
                )
                for member in self.members:
                    if member not in pending.acks:
                        self.transport.send(member, msg)
        if self._pending:
            self._retry_delay = decorrelated_jitter(
                self.transport.rng(),
                self.config.retry_interval,
                self.config.retry_cap,
                self._retry_delay,
            )
            delay = self._retry_delay
        else:
            self._retry_delay = None
            delay = self.config.retry_interval
        self.transport.set_timer(delay, self._retry_tick, ballot)

    # ------------------------------------------------------------------
    # Learning and catch-up
    # ------------------------------------------------------------------
    def _learn_commit_index(self, src: str, src_ballot: Ballot, commit_index: int) -> None:
        """Absorb a peer's commit index; catch up on slots we lack."""
        if commit_index <= self.log.commit_index:
            return
        need_catchup = False
        for slot in range(self.log.commit_index + 1, commit_index + 1):
            entry = self.log.get(slot)
            if entry is not None and entry.chosen:
                continue
            if entry is not None and entry.accepted_ballot == src_ballot:
                # Our accepted value at the leader's ballot is the chosen one.
                self.log.mark_chosen(slot, entry.accepted_value)
            else:
                need_catchup = True
                break
        self._apply_committed()
        if need_catchup:
            self._request_catchup(src)

    def _request_catchup(self, src: str) -> None:
        now = self.transport.now
        if now - self._last_catchup_request.get(src, -1.0) < self.config.heartbeat_interval:
            return
        self._last_catchup_request[src] = now
        self.transport.send(src, CatchupRequest(from_slot=self.log.commit_index + 1))

    def _on_not_member(self, src: str, msg: NotMember) -> None:
        self.retire()

    def _on_catchup_request(self, src: str, msg: CatchupRequest) -> None:
        if msg.from_slot < self.log.first_slot:
            # The requested prefix was compacted: ship our snapshot.
            if self.snapshot_fn is not None:
                self.transport.send(
                    src,
                    InstallSnapshot(
                        snapshot=self.snapshot_fn(),
                        last_included=self.applied_index,
                        members=tuple(self.members),
                        commit_index=self.log.commit_index,
                    ),
                )
            return
        to_slot = min(msg.from_slot + self.config.catchup_batch - 1, self.log.commit_index)
        entries = tuple(
            (slot, value) for slot, value in self.log.chosen_range(msg.from_slot, to_slot)
        )
        self.transport.send(src, CatchupReply(entries=entries, commit_index=self.log.commit_index))

    def _on_install_snapshot(self, src: str, msg: InstallSnapshot) -> None:
        if msg.last_included <= self.applied_index or self.restore_fn is None:
            return
        self.restore_fn(msg.snapshot)
        self.applied_index = msg.last_included
        self.members = list(msg.members)
        if self.storage is not None:
            self.storage.save_snapshot(
                msg.snapshot, msg.last_included, tuple(msg.members)
            )
        self.log.reset_to(msg.last_included + 1)
        # The jump may have exposed already-chosen retained entries.
        self._apply_committed()
        if msg.commit_index > self.log.commit_index:
            self._request_catchup(src)

    def _maybe_compact(self) -> None:
        threshold = self.config.compact_threshold
        if threshold <= 0 or self.snapshot_fn is None:
            return
        if self.applied_index - self.log.first_slot + 1 < threshold:
            return
        self._snapshot = self.snapshot_fn()
        if self.storage is not None:
            self.storage.save_snapshot(
                self._snapshot, self.applied_index, tuple(self.members)
            )
        self.log.truncate_before(self.applied_index + 1)

    def _on_catchup_reply(self, src: str, msg: CatchupReply) -> None:
        for slot, command in msg.entries:
            self.log.mark_chosen(slot, command)
        self._apply_committed()
        if msg.commit_index > self.log.commit_index:
            self._request_catchup(src)

    # ------------------------------------------------------------------
    # Apply
    # ------------------------------------------------------------------
    def _apply_committed(self) -> None:
        while self.applied_index < self.log.commit_index:
            slot = self.applied_index + 1
            command = self.log.chosen_value(slot)
            # Pop the waiter first: applying a "remove self" config change
            # retires the replica, which fails any still-registered futures.
            future = self._proposal_futures.pop(slot, None)
            if command.kind == CMD_CONFIG:
                self._apply_config(command.payload)
            if command.kind == CMD_BATCH:
                result = [self.apply_fn(slot, sub) for sub in command.payload]
            else:
                result = self.apply_fn(slot, command)
            self.applied_index = slot
            if future is not None:
                future.set_result(result)
            if self._barrier_slot == slot:
                self._barrier_slot = None
        self._maybe_compact()
        self._after_commit_progress()

    def _apply_config(self, change: ConfigChange) -> None:
        if change.action == "add":
            if change.member not in self.members:
                self.members.append(change.member)
                if self.is_leader:
                    self.member_last_ack.setdefault(change.member, self.transport.now)
        else:
            if change.member in self.members:
                self.members.remove(change.member)
            self.member_last_ack.pop(change.member, None)
            if change.member == self.replica_id:
                self.retire()
            elif self.is_leader:
                self.transport.send(
                    change.member, NotMember(commit_index=self.log.commit_index)
                )

    _HANDLERS: dict[type, Callable[["PaxosReplica", str, Any], None]] = {}


def _contiguous_runs(pairs: list[tuple[int, Command]]) -> list[list[tuple[int, Command]]]:
    """Split sorted (slot, command) pairs into runs of consecutive slots."""
    runs: list[list[tuple[int, Command]]] = []
    for slot, command in pairs:
        if runs and slot == runs[-1][-1][0] + 1:
            runs[-1].append((slot, command))
        else:
            runs.append([(slot, command)])
    return runs


PaxosReplica._HANDLERS = {
    Prepare: PaxosReplica._on_prepare,
    Promise: PaxosReplica._on_promise,
    PrepareNack: PaxosReplica._on_prepare_nack,
    Accept: PaxosReplica._on_accept,
    Accepted: PaxosReplica._on_accepted,
    AcceptBatch: PaxosReplica._on_accept_batch,
    AcceptedBatch: PaxosReplica._on_accepted_batch,
    AcceptNack: PaxosReplica._on_accept_nack,
    Heartbeat: PaxosReplica._on_heartbeat,
    HeartbeatAck: PaxosReplica._on_heartbeat_ack,
    NotMember: PaxosReplica._on_not_member,
    TransferLease: PaxosReplica._on_transfer_lease,
    CatchupRequest: PaxosReplica._on_catchup_request,
    InstallSnapshot: PaxosReplica._on_install_snapshot,
    CatchupReply: PaxosReplica._on_catchup_reply,
}

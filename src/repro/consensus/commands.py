"""Commands that flow through a group's Paxos log."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

CMD_NOOP = "noop"
CMD_CONFIG = "config"
CMD_BATCH = "batch"
CMD_APP = "app"
CMD_READ = "read"


@dataclass(frozen=True)
class ConfigChange:
    """Single-member reconfiguration payload.

    Restricting changes to one member per command keeps consecutive
    configurations majority-intersecting, which is what makes leader
    change safe without joint consensus.
    """

    action: str  # "add" or "remove"
    member: str

    def __post_init__(self) -> None:
        if self.action not in ("add", "remove"):
            raise ValueError(f"bad config action: {self.action}")


@dataclass(frozen=True)
class Command:
    """A log entry value.

    ``dedup`` is an optional (client_id, seq) pair: the state machine
    layer uses it to make retried proposals idempotent.
    """

    kind: str
    payload: Any = None
    dedup: tuple[str, int] | None = None

    @staticmethod
    def noop() -> "Command":
        return Command(kind=CMD_NOOP)

    @staticmethod
    def config(action: str, member: str) -> "Command":
        return Command(kind=CMD_CONFIG, payload=ConfigChange(action, member))

    @staticmethod
    def app(payload: Any, dedup: tuple[str, int] | None = None) -> "Command":
        return Command(kind=CMD_APP, payload=payload, dedup=dedup)

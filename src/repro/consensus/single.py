"""Pure single-decree Paxos roles.

These classes hold the core safety logic with no I/O, timers, or
networking, so the safety argument can be exercised exhaustively by
property-based tests (see ``tests/test_paxos_properties.py``).  The
Multi-Paxos replica embeds the same acceptor rules per log slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

# A ballot totally orders proposal attempts; the node id breaks ties so two
# nodes can never issue the same ballot.
Ballot = tuple[int, str]

BALLOT_ZERO: Ballot = (0, "")


@dataclass
class PromiseReply:
    ok: bool
    promised: Ballot
    accepted_ballot: Ballot | None = None
    accepted_value: Any = None


@dataclass
class AcceptReply:
    ok: bool
    promised: Ballot


class Acceptor:
    """Single-decree Paxos acceptor: the keeper of safety."""

    def __init__(self) -> None:
        self.promised: Ballot = BALLOT_ZERO
        self.accepted_ballot: Ballot | None = None
        self.accepted_value: Any = None

    def on_prepare(self, ballot: Ballot) -> PromiseReply:
        """Phase 1b: promise iff ballot is the highest seen."""
        if ballot <= self.promised:
            return PromiseReply(ok=False, promised=self.promised)
        self.promised = ballot
        return PromiseReply(
            ok=True,
            promised=ballot,
            accepted_ballot=self.accepted_ballot,
            accepted_value=self.accepted_value,
        )

    def on_accept(self, ballot: Ballot, value: Any) -> AcceptReply:
        """Phase 2b: accept iff no higher promise has been made since."""
        if ballot < self.promised:
            return AcceptReply(ok=False, promised=self.promised)
        self.promised = ballot
        self.accepted_ballot = ballot
        self.accepted_value = value
        return AcceptReply(ok=True, promised=ballot)


class Proposer:
    """Single-decree Paxos proposer driving one ballot.

    The caller feeds in replies; the proposer says what to do next.  This
    keeps it synchronous and directly checkable.
    """

    def __init__(self, ballot: Ballot, quorum_size: int, value: Any) -> None:
        if quorum_size < 1:
            raise ValueError("quorum_size must be >= 1")
        self.ballot = ballot
        self.quorum_size = quorum_size
        self.value = value  # the value we want; may be overridden by phase 1
        self.chosen_value: Any = None
        self._promises: dict[str, PromiseReply] = {}
        self._accepts: set[str] = set()
        self._phase2_value: Any = None
        self.phase = 1

    def on_promise(self, acceptor_id: str, reply: PromiseReply) -> bool:
        """Record a phase-1b reply.  Returns True when phase 2 may start."""
        if self.phase != 1 or not reply.ok:
            return False
        self._promises[acceptor_id] = reply
        if len(self._promises) < self.quorum_size:
            return False
        # Adopt the highest-ballot accepted value among promises, if any.
        best: PromiseReply | None = None
        for promise in self._promises.values():
            if promise.accepted_ballot is None:
                continue
            if best is None or promise.accepted_ballot > best.accepted_ballot:
                best = promise
        self._phase2_value = self.value if best is None else best.accepted_value
        self.phase = 2
        return True

    @property
    def phase2_value(self) -> Any:
        if self.phase < 2:
            raise RuntimeError("phase 1 not complete")
        return self._phase2_value

    def on_accepted(self, acceptor_id: str, reply: AcceptReply) -> bool:
        """Record a phase-2b reply.  Returns True when the value is chosen."""
        if self.phase != 2 or not reply.ok or reply.promised != self.ballot:
            return False
        self._accepts.add(acceptor_id)
        if len(self._accepts) >= self.quorum_size:
            self.chosen_value = self._phase2_value
            self.phase = 3
            return True
        return False

"""Multi-Paxos replicated state machines — the replication substrate.

Every Scatter group is a replicated state machine driven by this package:

- :mod:`repro.consensus.single` — pure single-decree Paxos roles, used
  directly by property tests of the safety argument.
- :mod:`repro.consensus.log` — the per-replica log of accepted / chosen
  entries.
- :mod:`repro.consensus.replica` — leader-based Multi-Paxos with
  heartbeats, randomized leader election, leader leases for local reads,
  follower catch-up, and single-member reconfiguration through the log
  (one add/remove at a time, so consecutive configurations always have
  intersecting majorities).
"""

from repro.consensus.commands import (
    CMD_CONFIG,
    CMD_NOOP,
    Command,
    ConfigChange,
)
from repro.consensus.log import LogEntry, PaxosLog
from repro.consensus.replica import (
    NotLeader,
    PaxosConfig,
    PaxosReplica,
    ProposalLost,
)
from repro.consensus.single import Acceptor, Ballot, Proposer

__all__ = [
    "Acceptor",
    "Ballot",
    "CMD_CONFIG",
    "CMD_NOOP",
    "Command",
    "ConfigChange",
    "LogEntry",
    "NotLeader",
    "PaxosConfig",
    "PaxosLog",
    "PaxosReplica",
    "ProposalLost",
    "Proposer",
]

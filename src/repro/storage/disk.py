"""Per-node simulated disk: WAL records, fsync boundaries, fault flags.

One :class:`NodeDisk` models the single physical disk of a simulated
node; each Paxos replica hosted on the node owns one
:class:`ReplicaStorage` region on it (keyed by group id).  The model is
deliberately logical — records are Python objects, not bytes — but the
*semantics* are the ones that matter for crash recovery:

- **Appends are cheap, fsync is the barrier.**  A record appended to
  the WAL is volatile until an fsync covering it completes.  Replicas
  ack a Promise/Accepted only from their fsync-completion callback, so
  "acked" always implies "durable" (unless a demo bug breaks exactly
  that link).
- **Power failure loses the un-fsynced suffix.**  ``Node.crash()``
  calls :meth:`NodeDisk.power_failure`, which drops every record newer
  than the last completed fsync.
- **Checksums detect torn or corrupted records at recovery.**  A fault
  can mark a tail of the WAL corrupt; recovery notices and — because a
  disk that lies once cannot be trusted at all — the replica takes the
  amnesia path (rejoin as a non-voting learner).
- **The acked ledger is checker-side state.**  Every durable ack is
  also recorded in a ledger the ``acceptor-durability`` invariant reads;
  it is bookkeeping for the test harness, never consulted by the
  protocol itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

# Mirrors repro.consensus.single's Ballot / BALLOT_ZERO.  Defined here
# (not imported) because repro.consensus imports this module: ballots are
# plain (round, replica_id) tuples, so the values compare identically.
Ballot = tuple[int, str]
BALLOT_ZERO: Ballot = (0, "")

REC_PROMISE = "promise"
REC_ACCEPT = "accept"
REC_CHOSEN = "chosen"


def command_label(command: Any) -> str:
    """Stable, comparison-safe label for a command (no closure reprs)."""
    kind = getattr(command, "kind", "?")
    dedup = getattr(command, "dedup", None)
    return f"{kind}:{dedup}"


@dataclass(frozen=True)
class StorageConfig:
    """Knobs of the simulated durable-storage model."""

    # Time from a WAL append to its covering fsync completing (and the
    # ack being sent).  Plays the role PaxosConfig.disk_write_latency
    # played for the fictional durability model; kept small but nonzero
    # so a lost-suffix window actually exists between append and fsync.
    fsync_latency: float = 0.002
    # Group commit.  0 (the default) keeps the historical model: every
    # ack schedules its own fsync timer.  A positive window makes the
    # node's disk coalesce every append that lands within the window —
    # across all of the node's regions — into ONE fsync, fanning the
    # Promise/Accepted acks out from the single completion callback
    # (see NodeDisk.enqueue_fsync).
    fsync_coalesce: float = 0.0

    def __post_init__(self) -> None:
        if self.fsync_latency < 0:
            raise ValueError("fsync_latency must be >= 0")
        if self.fsync_coalesce < 0:
            raise ValueError("fsync_coalesce must be >= 0")


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One write-ahead-log record.

    ``seq`` is a per-region monotone sequence number: records with
    ``seq <= synced_seq`` survived the last fsync and therefore survive
    a power failure.  ``slot`` is -1 for promise records.
    """

    seq: int
    kind: str  # REC_PROMISE | REC_ACCEPT | REC_CHOSEN
    slot: int
    ballot: Ballot | None
    value: Any


class ReplicaStorage:
    """One replica's durable region on its node's disk."""

    def __init__(self, disk: "NodeDisk", gid: str) -> None:
        self.disk = disk
        self.gid = gid
        self.records: list[WalRecord] = []
        self._next_seq = 1
        self.synced_seq = 0
        # (state, last_included_slot, members) or None.  Snapshot writes
        # are modelled as atomic (write-new + rename); a crash never
        # leaves a half-written snapshot.
        self.snapshot: tuple[Any, int, tuple[str, ...]] | None = None
        # Highest promise ballot covered by a completed fsync.  Folded in
        # at fsync time so snapshot compaction can drop promise records.
        self.durable_promise: Ballot = BALLOT_ZERO
        # Records at or after this seq fail their checksum at recovery
        # (None = clean).  Set by the disk-corruption fault.
        self.corrupt_from: int | None = None
        # True after disk loss or detected corruption, until the replica
        # finishes catching up as a learner.  Durable marker: survives
        # further crashes, so a node that crashes mid-amnesia resumes
        # amnesiac.
        self.amnesiac = False

        # --- checker-side ledger (acceptor-durability invariant) ------
        # Never read by the protocol.  acked_promise / acked_accepts
        # record what this replica told its peers; ``reneged`` records
        # definitive breaches detected during recovery.
        self.acked_promise: Ballot = BALLOT_ZERO
        self.acked_accepts: dict[int, tuple[Ballot, str]] = {}
        self.reneged: list[str] = []

        # --- counters for experiments / tests -------------------------
        self.fsyncs = 0
        self.recoveries = 0
        self.replayed_total = 0
        self.max_replayed = 0
        self.snapshot_recoveries = 0
        self.last_recovery: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Write path (called by PaxosReplica)
    # ------------------------------------------------------------------
    def current_seq(self) -> int:
        """Sequence number of the most recently appended record (0 = none)."""
        return self._next_seq - 1

    def _append(self, kind: str, slot: int, ballot: Ballot | None, value: Any) -> bool:
        if self.disk.io_error:
            return False
        record = WalRecord(self._next_seq, kind, slot, ballot, value)
        self._next_seq += 1
        self.records.append(record)
        tracer = self.disk.tracer
        if tracer is not None:
            tracer.metrics.inc("wal.appends")
        return True

    def append_promise(self, ballot: Ballot) -> bool:
        return self._append(REC_PROMISE, -1, ballot, None)

    def append_accept(self, slot: int, ballot: Ballot, command: Any) -> bool:
        return self._append(REC_ACCEPT, slot, ballot, command)

    def append_chosen(self, slot: int, command: Any) -> None:
        """Lazily journal a learned choice (no fsync barrier, no ack).

        If the record is lost with the un-fsynced suffix, recovery
        re-learns the choice through ordinary catch-up; journaling it
        just makes recovery local and fast in the common case.
        """
        self._append(REC_CHOSEN, slot, None, command)

    def fsync_delay(self) -> float:
        return self.disk.config.fsync_latency * self.disk.fsync_factor

    def fsync_ok(self) -> bool:
        """Whether an fsync completing now succeeds (IO-error window)."""
        return not self.disk.io_error

    def mark_synced(self, seq: int) -> None:
        """An fsync covering records up to ``seq`` completed."""
        self.fsyncs += 1
        tracer = self.disk.tracer
        if seq <= self.synced_seq:
            if tracer is not None:
                tracer.metrics.inc("wal.fsyncs")
                tracer.metrics.observe("fsync.batch_size", 0)
            return
        covered = 0
        for record in self.records:
            if self.synced_seq < record.seq <= seq:
                covered += 1
                if record.kind == REC_PROMISE:
                    if record.ballot is not None and record.ballot > self.durable_promise:
                        self.durable_promise = record.ballot
        self.synced_seq = seq
        if tracer is not None:
            tracer.metrics.inc("wal.fsyncs")
            tracer.metrics.observe("fsync.batch_size", covered)

    # ------------------------------------------------------------------
    # Ledger (ack-time bookkeeping for the durability invariant)
    # ------------------------------------------------------------------
    def note_acked_promise(self, ballot: Ballot) -> None:
        if ballot > self.acked_promise:
            self.acked_promise = ballot

    def note_acked_accept(self, slot: int, ballot: Ballot, label: str) -> None:
        prior = self.acked_accepts.get(slot)
        if prior is None or ballot >= prior[0]:
            self.acked_accepts[slot] = (ballot, label)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def save_snapshot(self, state: Any, last_included: int, members: tuple[str, ...]) -> None:
        """Atomically persist a snapshot and compact the WAL behind it."""
        if self.disk.io_error:
            return  # write failed; old snapshot + WAL remain authoritative
        self.snapshot = (state, last_included, members)
        # Promise records are folded into durable_promise at fsync time;
        # keep only slot records the snapshot does not cover, plus the
        # still-volatile suffix (which a crash would lose anyway).
        self.records = [
            r
            for r in self.records
            if r.seq > self.synced_seq
            or (r.kind != REC_PROMISE and r.slot > last_included)
        ]
        for slot in [s for s in self.acked_accepts if s <= last_included]:
            del self.acked_accepts[slot]

    # ------------------------------------------------------------------
    # Faults (called by Node.crash, FaultTarget, nemeses)
    # ------------------------------------------------------------------
    def power_failure(self) -> None:
        """Drop the un-fsynced WAL suffix (the node lost power)."""
        if self.synced_seq < self.current_seq():
            self.records = [r for r in self.records if r.seq <= self.synced_seq]

    def corrupt_tail(self, count: int) -> None:
        """Mark the last ``count`` durable records checksum-corrupt."""
        durable = [r for r in self.records if r.seq <= self.synced_seq]
        if not durable or count <= 0:
            return
        start = durable[max(0, len(durable) - count)].seq
        if self.corrupt_from is None or start < self.corrupt_from:
            self.corrupt_from = start

    def wipe(self) -> None:
        """Lose everything on disk; the replica must rejoin with amnesia."""
        self.records = []
        self.synced_seq = self.current_seq()
        self.snapshot = None
        self.durable_promise = BALLOT_ZERO
        self.corrupt_from = None
        self.amnesiac = True
        self.acked_promise = BALLOT_ZERO
        self.acked_accepts.clear()

    def clear_amnesia(self) -> None:
        self.amnesiac = False

    # ------------------------------------------------------------------
    # Recovery (called by PaxosReplica on restart)
    # ------------------------------------------------------------------
    def recovery_image(self) -> tuple[Any | None, list[WalRecord]]:
        """Snapshot + replayable WAL records, applying checksum policy.

        A checksum failure anywhere in the durable WAL means the disk
        cannot be trusted: the region is wiped and the replica recovers
        with amnesia (``self.amnesiac`` is set by :meth:`wipe`).
        """
        self.recoveries += 1
        if self.corrupt_from is not None:
            self.wipe()
        if self.amnesiac:
            self.last_recovery = {"mode": "amnesia", "replayed": 0, "snapshot": False}
            return None, []
        replay = [r for r in self.records if r.seq <= self.synced_seq]
        self.replayed_total += len(replay)
        self.max_replayed = max(self.max_replayed, len(replay))
        if self.snapshot is not None:
            self.snapshot_recoveries += 1
        self.last_recovery = {
            "mode": "replay",
            "replayed": len(replay),
            "snapshot": self.snapshot is not None,
        }
        return self.snapshot, replay


class NodeDisk:
    """All durable regions of one simulated node, plus fault flags."""

    def __init__(
        self,
        node_id: str,
        config: StorageConfig | None = None,
        tracer: Any = None,
    ) -> None:
        self.node_id = node_id
        self.config = config or StorageConfig()
        self.regions: dict[str, ReplicaStorage] = {}
        # Fault flags, toggled by the fault-injection layers.  io_error:
        # appends/fsyncs/snapshot writes fail (no ack is ever sent for
        # them).  fsync_factor: multiplier on fsync latency (slow disk).
        self.io_error = False
        self.fsync_factor = 1.0
        # repro.obs tracer if the host's simulator has one bound (None =
        # the disabled fast path; see wal.appends / wal.fsyncs metrics).
        self.tracer = tracer
        # Group-commit state (fsync_coalesce > 0): acks whose records
        # landed since the last fsync, waiting for the coalescing window
        # to close.  Entries are (region, covered_seq, on_durable).
        self._commit_queue: list[tuple[ReplicaStorage, int, Callable[[], None]]] = []
        self._commit_armed = False

    # ------------------------------------------------------------------
    # Group commit (fsync_coalesce > 0)
    # ------------------------------------------------------------------
    def enqueue_fsync(
        self,
        region: ReplicaStorage,
        upto: int,
        set_timer: Callable[..., Any],
        on_durable: Callable[[], None],
    ) -> None:
        """Fold one append's ack into the disk-wide group-commit batch.

        The first enqueue after an idle period arms one timer covering
        the coalescing window plus the fsync itself; every ack landing
        before it fires rides the same barrier.  ``set_timer`` must be
        the host node's crash-guarded timer, so a power failure inside
        the window silently discards the whole batch — no ack escapes
        for a record the crash threw away (``power_failure`` also drops
        the queued acks along with the un-fsynced suffix).
        """
        self._commit_queue.append((region, upto, on_durable))
        if not self._commit_armed:
            self._commit_armed = True
            delay = self.config.fsync_coalesce + self.config.fsync_latency * self.fsync_factor
            set_timer(delay, self._complete_group_fsync)

    def _complete_group_fsync(self) -> None:
        """The batch's single fsync finished: mark durable, fan acks out."""
        self._commit_armed = False
        batch, self._commit_queue = self._commit_queue, []
        if self.io_error:
            return  # the whole batch stays volatile; no acks, leaders retry
        high: dict[str, int] = {}
        for region, upto, _cb in batch:
            if upto > high.get(region.gid, -1):
                high[region.gid] = upto
        for gid, upto in high.items():
            self.regions[gid].mark_synced(upto)
        for _region, _upto, on_durable in batch:
            on_durable()

    def storage_for(self, gid: str) -> ReplicaStorage:
        region = self.regions.get(gid)
        if region is None:
            region = ReplicaStorage(self, gid)
            self.regions[gid] = region
        return region

    def power_failure(self) -> None:
        # Acks queued behind the in-flight group commit die with the
        # suffix; the crash-guarded timer never fires, and re-arming is
        # reset here so post-recovery appends start a fresh batch.
        self._commit_queue.clear()
        self._commit_armed = False
        for region in self.regions.values():
            region.power_failure()

    def wipe(self) -> None:
        """Disk loss: every region is gone; replicas rejoin amnesiac."""
        for region in self.regions.values():
            region.wipe()

    def corrupt_tail(self, count: int) -> None:
        for region in self.regions.values():
            region.corrupt_tail(count)

    def clear_faults(self) -> None:
        self.io_error = False
        self.fsync_factor = 1.0

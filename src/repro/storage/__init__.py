"""Simulated durable storage: per-node WAL, snapshots, disk faults.

The storage model gives crash/restart its teeth.  Without it the
replica object *is* the durable state and every restart recovers
perfectly; with it, acceptor state lives in a per-node
:class:`~repro.storage.disk.NodeDisk` whose write-ahead log has explicit
fsync boundaries, a crash loses the un-fsynced suffix (power-failure
semantics), and restart runs real recovery — snapshot load plus WAL
replay.  Disk faults (IO errors, checksum-detected corruption, slow
fsync, full disk loss) are first-class and injectable by the nemesis
and fuzzer layers.

Zero-perturbation: when no :class:`StorageConfig` is attached to a
deployment, no disk objects exist, no extra events are scheduled, and
every result is byte-identical to a build without this package.
"""

from repro.storage.disk import (
    NodeDisk,
    ReplicaStorage,
    StorageConfig,
    WalRecord,
    command_label,
)

__all__ = [
    "NodeDisk",
    "ReplicaStorage",
    "StorageConfig",
    "WalRecord",
    "command_label",
]

"""Declarative scenario registry: named, shareable fault schedules.

A scenario is data — which nemeses, with which knobs — so the same fault
schedule is runnable from a test, a benchmark, or the CLI
(``python -m repro nemesis <name>``) without copy-pasting schedule code.
Determinism contract: ``build_scenario`` derives each nemesis's RNG
stream from the scenario name and spec index, so a (scenario, simulator
seed) pair always reproduces the identical fault schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.faults.nemesis import (
    AsymmetricPartition,
    CrashRestartStorm,
    DiskFaults,
    DropBurst,
    Duplicator,
    GraySlowdown,
    Nemesis,
    NemesisSuite,
    NodeLossStorm,
    RollingPartition,
)
from repro.faults.target import FaultTarget
from repro.sim.loop import Simulator

NEMESIS_KINDS: dict[str, type[Nemesis]] = {
    "crash_storm": CrashRestartStorm,
    "rolling_partition": RollingPartition,
    "asymmetric_partition": AsymmetricPartition,
    "drop_burst": DropBurst,
    "gray_slowdown": GraySlowdown,
    "duplicator": Duplicator,
    "disk_faults": DiskFaults,
    "node_loss_storm": NodeLossStorm,
}


@dataclass(frozen=True)
class NemesisSpec:
    """One nemesis in a scenario: a kind from NEMESIS_KINDS plus knobs."""

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in NEMESIS_KINDS:
            raise ValueError(f"unknown nemesis kind {self.kind!r}")


@dataclass(frozen=True)
class Scenario:
    """A named, composable fault schedule.

    ``needs_storage`` marks scenarios whose faults act on simulated
    disks: deployment builders (the CLI ``nemesis`` command,
    ``_nemesis_run``) enable the durable-storage model for them, since
    against a disk-less deployment those nemeses would be no-ops.
    """

    name: str
    description: str
    nemeses: tuple[NemesisSpec, ...]
    needs_storage: bool = False
    # Scenarios built around permanent node loss are only a fair fight
    # when the system's self-healing is on: deployment builders enable
    # the Scatter repair policy (and the hardened Chord baseline) for
    # them.
    needs_repair: bool = False


def build_scenario(
    scenario: Scenario | str, sim: Simulator, target: FaultTarget
) -> NemesisSuite:
    """Instantiate a scenario's nemeses against ``target``."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    instances: list[Nemesis] = []
    for i, spec in enumerate(scenario.nemeses):
        cls = NEMESIS_KINDS[spec.kind]
        instances.append(
            cls(sim, target, name=f"{scenario.name}/{i}:{spec.kind}", **spec.params)
        )
    return NemesisSuite(instances)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


# ---------------------------------------------------------------------------
# The registry.  Timing is tuned for the experiment Paxos profile
# (heartbeats 0.1-0.25 s, elections 0.5-1.2 s): faults last long enough
# to force elections and lease expiries but heal within a few seconds.
# ---------------------------------------------------------------------------
SCENARIOS: dict[str, Scenario] = {}


def _register(scenario: Scenario) -> None:
    SCENARIOS[scenario.name] = scenario


_register(Scenario(
    name="clean_crash",
    description="Fail-stop storm: one node at a time crashes and restarts "
                "after a few seconds — the failure mode every system tests.",
    nemeses=(
        NemesisSpec("crash_storm",
                    {"interval": 3.0, "downtime": (1.5, 4.0), "max_down": 1}),
    ),
))

_register(Scenario(
    name="crash_storm",
    description="Aggressive crash/restart storm: up to two nodes down at "
                "once with short intervals between kills.",
    nemeses=(
        NemesisSpec("crash_storm",
                    {"interval": 1.5, "downtime": (0.5, 3.0), "max_down": 2}),
    ),
))

_register(Scenario(
    name="rolling_partition",
    description="Symmetric partitions that move: a random minority is cut "
                "off, healed, and a new side is chosen.",
    nemeses=(
        NemesisSpec("rolling_partition", {"period": 4.0, "duration": 1.5}),
    ),
))

_register(Scenario(
    name="asymmetric_partition",
    description="One-way partitions: a victim can send but not receive "
                "(or vice versa) — the schedule symmetric tests miss.",
    nemeses=(
        NemesisSpec("asymmetric_partition",
                    {"period": 4.0, "duration": 1.5, "mode": "random"}),
    ),
))

_register(Scenario(
    name="gray_failure",
    description="Gray failure: a victim's links degrade 10-50x instead of "
                "dying, defeating timeout-based failure detectors.",
    nemeses=(
        NemesisSpec("gray_slowdown",
                    {"period": 5.0, "duration": 2.5, "slowdown": (10.0, 50.0)}),
    ),
))

_register(Scenario(
    name="drop_burst",
    description="Bursts of 40% message loss on every link.",
    nemeses=(
        NemesisSpec("drop_burst",
                    {"period": 5.0, "duration": 1.5, "drop_prob": 0.4}),
    ),
))

_register(Scenario(
    name="dup_delivery",
    description="At-least-once delivery windows: 30% of messages delivered "
                "twice with independent timing — stresses command dedup.",
    nemeses=(
        NemesisSpec("duplicator",
                    {"period": 4.0, "duration": 2.5, "dup_prob": 0.3}),
    ),
))

_register(Scenario(
    name="disk_faults",
    description="Storage faults: IO-error windows, 10-100x slow fsync, and "
                "power cycles that lose the un-fsynced WAL suffix.  Only "
                "meaningful against deployments with the storage model on.",
    nemeses=(
        NemesisSpec("disk_faults",
                    {"period": 3.0, "duration": 1.5,
                     "slow_factor": (10.0, 100.0), "downtime": (0.5, 2.0)}),
    ),
    needs_storage=True,
))

_register(Scenario(
    name="node_loss_storm",
    description="Permanent failures: nodes die for good (disk and all), "
                "never restarting.  The system's own repair must restore "
                "replication before the next loss lands.",
    nemeses=(
        NemesisSpec("node_loss_storm",
                    {"interval": 6.0, "max_losses": 2, "min_alive": 6}),
        NemesisSpec("crash_storm",
                    {"interval": 5.0, "downtime": (1.0, 3.0), "max_down": 1}),
    ),
    needs_repair=True,
))

_register(Scenario(
    name="chaos",
    description="Everything at once: crashes, one-way partitions, gray "
                "links, loss bursts, and duplication.",
    nemeses=(
        NemesisSpec("crash_storm",
                    {"interval": 4.0, "downtime": (1.0, 3.0), "max_down": 1}),
        NemesisSpec("asymmetric_partition",
                    {"period": 6.0, "duration": 1.2, "mode": "random"}),
        NemesisSpec("gray_slowdown",
                    {"period": 7.0, "duration": 2.0, "slowdown": (8.0, 30.0)}),
        NemesisSpec("drop_burst",
                    {"period": 8.0, "duration": 1.0, "drop_prob": 0.3}),
        NemesisSpec("duplicator",
                    {"period": 9.0, "duration": 2.0, "dup_prob": 0.2}),
    ),
))

"""Adapter between nemeses and the system under test.

A nemesis needs very little from a system: the shared network (for
partitions, slowdowns, loss, duplication) and a way to enumerate, crash,
and restart its processes.  :class:`FaultTarget` packages exactly that,
with constructors for the three deployment shapes in this repo — a bare
Paxos cluster, a Scatter deployment, and the Chord baseline — so every
fault schedule is writable once and runnable against any of them.
"""

from __future__ import annotations

from typing import Mapping

from repro.net.node import Node
from repro.sim.network import SimNetwork


class FaultTarget:
    """A set of crashable processes sharing one :class:`SimNetwork`.

    ``nodes`` is kept by reference, so a live system that adds or removes
    nodes (churn) is reflected in later ``node_ids()`` calls — nemeses
    always draw victims from the current population.
    """

    def __init__(self, net: SimNetwork, nodes: Mapping[str, Node]) -> None:
        self.net = net
        self.nodes = nodes

    @staticmethod
    def for_system(system) -> "FaultTarget":
        """Wrap a ScatterSystem or ChordSystem (anything with .net/.nodes)."""
        return FaultTarget(system.net, system.nodes)

    @staticmethod
    def for_hosts(net: SimNetwork, hosts: list[Node]) -> "FaultTarget":
        """Wrap an explicit host list (e.g. ``build_cluster`` output)."""
        return FaultTarget(net, {h.node_id: h for h in hosts})

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def node_ids(self) -> list[str]:
        return sorted(self.nodes)

    def alive_ids(self) -> list[str]:
        return sorted(n for n, node in self.nodes.items() if node.alive)

    def down_ids(self) -> list[str]:
        return sorted(n for n, node in self.nodes.items() if not node.alive)

    # ------------------------------------------------------------------
    # Process faults
    # ------------------------------------------------------------------
    def crash(self, node_id: str) -> bool:
        """Transient fail-stop.  Returns True if the node was up."""
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return False
        node.crash()
        return True

    def restart(self, node_id: str) -> bool:
        """Recover a crashed node.  Returns True if it was down."""
        node = self.nodes.get(node_id)
        if node is None or node.alive:
            return False
        node.restart()
        return True

"""Adapter between nemeses and the system under test.

A nemesis needs very little from a system: the shared network (for
partitions, slowdowns, loss, duplication) and a way to enumerate, crash,
and restart its processes.  :class:`FaultTarget` packages exactly that,
with constructors for the three deployment shapes in this repo — a bare
Paxos cluster, a Scatter deployment, and the Chord baseline — so every
fault schedule is writable once and runnable against any of them.
"""

from __future__ import annotations

from typing import Mapping

from repro.net.node import Node
from repro.sim.network import SimNetwork


class FaultTarget:
    """A set of crashable processes sharing one :class:`SimNetwork`.

    ``nodes`` is kept by reference, so a live system that adds or removes
    nodes (churn) is reflected in later ``node_ids()`` calls — nemeses
    always draw victims from the current population.
    """

    def __init__(self, net: SimNetwork, nodes: Mapping[str, Node]) -> None:
        self.net = net
        self.nodes = nodes
        self._lost: set[str] = set()

    @staticmethod
    def for_system(system) -> "FaultTarget":
        """Wrap a ScatterSystem or ChordSystem (anything with .net/.nodes)."""
        return FaultTarget(system.net, system.nodes)

    @staticmethod
    def for_hosts(net: SimNetwork, hosts: list[Node]) -> "FaultTarget":
        """Wrap an explicit host list (e.g. ``build_cluster`` output)."""
        return FaultTarget(net, {h.node_id: h for h in hosts})

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def node_ids(self) -> list[str]:
        return sorted(self.nodes)

    def alive_ids(self) -> list[str]:
        return sorted(n for n, node in self.nodes.items() if node.alive)

    def down_ids(self) -> list[str]:
        return sorted(n for n, node in self.nodes.items() if not node.alive)

    # ------------------------------------------------------------------
    # Process faults
    # ------------------------------------------------------------------
    def crash(self, node_id: str) -> bool:
        """Transient fail-stop.  Returns True if the node was up."""
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return False
        node.crash()
        return True

    def restart(self, node_id: str) -> bool:
        """Recover a crashed node.  Returns True if it was down.

        Permanently lost nodes (see :meth:`node_loss`) never restart:
        heal-all sweeps and nemesis restore paths skip them.
        """
        node = self.nodes.get(node_id)
        if node is None or node.alive or node_id in self._lost:
            return False
        node.restart()
        return True

    def node_loss(self, node_id: str) -> bool:
        """Permanent failure: crash, wipe the disk, drop from the restart
        schedule.  Returns True if the node was up."""
        node = self.nodes.get(node_id)
        if node is None or not node.alive or node_id in self._lost:
            return False
        node.crash()
        disk = getattr(node, "disk", None)
        if disk is not None:
            disk.wipe()
        self._lost.add(node_id)
        return True

    def lost_ids(self) -> list[str]:
        """Nodes permanently removed via :meth:`node_loss`."""
        return sorted(self._lost)

    # ------------------------------------------------------------------
    # Disk faults (no-ops on deployments without the storage model)
    # ------------------------------------------------------------------
    def disk(self, node_id: str):
        """The node's simulated disk, or None (no node / no storage model)."""
        node = self.nodes.get(node_id)
        return getattr(node, "disk", None)

    def disk_ids(self) -> list[str]:
        """Nodes that actually have a simulated disk."""
        return sorted(n for n in self.nodes if self.disk(n) is not None)

    def set_disk_io_error(self, node_id: str, failing: bool) -> bool:
        """Toggle the IO-error flag: appends/fsyncs/snapshots fail silently."""
        disk = self.disk(node_id)
        if disk is None:
            return False
        disk.io_error = failing
        return True

    def set_fsync_factor(self, node_id: str, factor: float) -> bool:
        """Scale fsync latency (slow/degraded disk; 1.0 = healthy)."""
        disk = self.disk(node_id)
        if disk is None:
            return False
        disk.fsync_factor = factor
        return True

    def lose_disk(self, node_id: str) -> bool:
        """Wipe the node's disk; its replicas will rejoin amnesiac."""
        disk = self.disk(node_id)
        if disk is None:
            return False
        disk.wipe()
        return True

    def corrupt_wal_tail(self, node_id: str, count: int) -> bool:
        """Checksum-corrupt the last ``count`` durable WAL records."""
        disk = self.disk(node_id)
        if disk is None:
            return False
        disk.corrupt_tail(count)
        return True

    def clear_disk_faults(self) -> None:
        """Reset IO-error and fsync-speed flags on every disk (heal)."""
        for node_id in self.nodes:
            disk = self.disk(node_id)
            if disk is not None:
                disk.clear_faults()

"""Composable nemesis processes: deterministic fault schedules.

A *nemesis* (the Jepsen term) is a process that injects faults into a
running system on a randomized schedule.  Every nemesis here draws its
randomness from a named simulator stream (``sim.rng("nemesis:<name>")``),
so a (scenario, seed) pair reproduces the exact same fault schedule —
and records every action it takes as a :class:`FaultEvent`, so tests can
fingerprint schedules and experiments can report what actually happened.

Design rules shared by all nemeses:

- ``start()`` begins the schedule; ``stop()`` halts it **and undoes any
  fault still active** (partitions healed, slowdowns cleared, crashed
  victims restarted), so post-fault recovery measurements start from a
  fault-free network.
- Faults injected by one nemesis are tracked and reverted individually;
  two nemeses only interfere if they target the same link with the same
  primitive (last heal wins) — compose with disjoint primitives or
  accept that overlap.
- A nemesis never blocks: it only schedules simulator events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.faults.target import FaultTarget
from repro.sim.loop import Simulator


@dataclass(frozen=True)
class FaultEvent:
    """One action a nemesis took (for logs, fingerprints, reports)."""

    time: float
    nemesis: str
    action: str
    detail: tuple = ()


class Nemesis:
    """Base class: schedule management, RNG stream, event recording."""

    def __init__(self, sim: Simulator, target: FaultTarget, name: str) -> None:
        self.sim = sim
        self.target = target
        self.name = name
        self.rng = sim.rng(f"nemesis:{name}")
        self.events: list[FaultEvent] = []
        self.running = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._record("start")
        self._kickoff()

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self._heal()
        self._record("stop")

    def _kickoff(self) -> None:
        raise NotImplementedError

    def _heal(self) -> None:
        """Undo any fault this nemesis still has active."""

    # -- helpers --------------------------------------------------------
    def _record(self, action: str, *detail: Any) -> None:
        self.events.append(FaultEvent(self.sim.now, self.name, action, tuple(detail)))

    def _while_running(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn`` guarded by the running flag."""

        def guarded(*inner: Any) -> None:
            if self.running:
                fn(*inner)

        self.sim.schedule(delay, guarded, *args)

    def _jittered(self, period: float) -> float:
        return period * self.rng.uniform(0.5, 1.5)

    def schedule_fingerprint(self) -> tuple:
        """Hashable summary of the schedule for determinism checks."""
        return tuple(
            (round(e.time, 9), e.nemesis, e.action, e.detail) for e in self.events
        )


class CrashRestartStorm(Nemesis):
    """Repeatedly crash random nodes and restart them after a downtime.

    ``max_down`` caps how many of *this nemesis's* victims are down at
    once, so a storm against a replicated group can be kept below the
    majority threshold (or allowed to exceed it, for recovery tests).
    """

    def __init__(
        self,
        sim: Simulator,
        target: FaultTarget,
        name: str = "crash-storm",
        interval: float = 2.0,
        downtime: tuple[float, float] = (1.0, 4.0),
        max_down: int = 1,
    ) -> None:
        super().__init__(sim, target, name)
        self.interval = interval
        self.downtime = downtime
        self.max_down = max_down
        self._down: set[str] = set()

    def _kickoff(self) -> None:
        self._while_running(self.rng.uniform(0, self.interval), self._tick)

    def _tick(self) -> None:
        if len(self._down) < self.max_down:
            candidates = [n for n in self.target.alive_ids() if n not in self._down]
            if candidates:
                victim = self.rng.choice(candidates)
                if self.target.crash(victim):
                    self._down.add(victim)
                    self._record("crash", victim)
                    self.sim.schedule(
                        self.rng.uniform(*self.downtime), self._restore, victim
                    )
        self._while_running(self._jittered(self.interval), self._tick)

    def _restore(self, victim: str) -> None:
        if victim in self._down:
            self._down.discard(victim)
            if self.target.restart(victim):
                self._record("restart", victim)

    def _heal(self) -> None:
        for victim in sorted(self._down):
            if self.target.restart(victim):
                self._record("restart", victim)
        self._down.clear()


class NodeLossStorm(Nemesis):
    """Permanent node losses on a schedule — victims never come back.

    Unlike :class:`CrashRestartStorm`, ``_heal`` is deliberately a no-op:
    a lost node's disk is gone and the restart sweep skips it.  Healing
    is the *system's* job — Scatter's resilience-driven repair pulls
    spares in or merges fragile groups; a hardened Chord re-replicates —
    and that response is exactly what this nemesis exists to exercise.
    ``max_losses`` bounds the total carnage and ``min_alive`` keeps the
    deployment large enough that a remedy can exist at all.  ``burst``
    kills several distinct victims in the same instant — a correlated
    failure (rack power, AZ outage) that gives re-replication no time
    to react between the individual deaths.
    """

    def __init__(
        self,
        sim: Simulator,
        target: FaultTarget,
        name: str = "node-loss-storm",
        interval: float = 4.0,
        max_losses: int = 2,
        min_alive: int = 5,
        burst: int = 1,
    ) -> None:
        super().__init__(sim, target, name)
        self.interval = interval
        self.max_losses = max_losses
        self.min_alive = min_alive
        self.burst = burst
        self._losses = 0

    def _kickoff(self) -> None:
        self._while_running(self.rng.uniform(0, self.interval), self._tick)

    def _tick(self) -> None:
        for _ in range(self.burst):
            alive = self.target.alive_ids()
            if self._losses >= self.max_losses or len(alive) <= self.min_alive:
                break
            victim = self.rng.choice(alive)
            if self.target.node_loss(victim):
                self._losses += 1
                self._record("node_loss", victim)
        self._while_running(self._jittered(self.interval), self._tick)

    def _heal(self) -> None:
        """Nothing to undo: permanent means permanent."""


class RollingPartition(Nemesis):
    """Symmetric partitions that move around the system.

    Each round cuts a random minority side off from the rest for
    ``duration`` seconds, heals, then picks a new side — the classic
    schedule that shakes out stale-leader and split-brain bugs.
    """

    def __init__(
        self,
        sim: Simulator,
        target: FaultTarget,
        name: str = "rolling-partition",
        period: float = 4.0,
        duration: float = 1.5,
    ) -> None:
        super().__init__(sim, target, name)
        self.period = period
        self.duration = duration
        self._active_pairs: set[tuple[str, str]] = set()

    def _kickoff(self) -> None:
        self._while_running(self.rng.uniform(0, self.period), self._tick)

    def _tick(self) -> None:
        ids = self.target.node_ids()
        if len(ids) >= 2 and not self._active_pairs:
            side_size = self.rng.randrange(1, max(2, len(ids) // 2 + 1))
            side = set(self.rng.sample(ids, side_size))
            rest = set(ids) - side
            for a in side:
                for b in rest:
                    self._active_pairs.add((a, b))
                    self._active_pairs.add((b, a))
                    self.target.net.block_one_way(a, b)
                    self.target.net.block_one_way(b, a)
            self._record("partition", tuple(sorted(side)))
            self.sim.schedule(self.duration, self._heal_round)
        self._while_running(self._jittered(self.period), self._tick)

    def _heal_round(self) -> None:
        if not self._active_pairs:
            return
        for src, dst in sorted(self._active_pairs):
            self.target.net.unblock_one_way(src, dst)
        self._active_pairs.clear()
        self._record("heal")

    def _heal(self) -> None:
        self._heal_round()


class AsymmetricPartition(Nemesis):
    """One-way partitions: a victim that can send but not receive (or
    the reverse) — the edge case symmetric fault tests never cover, and
    the one *How to Make Chord Correct* shows breaking overlay
    invariants."""

    def __init__(
        self,
        sim: Simulator,
        target: FaultTarget,
        name: str = "asymmetric-partition",
        period: float = 4.0,
        duration: float = 1.5,
        mode: str = "inbound",  # "inbound", "outbound", or "random"
    ) -> None:
        if mode not in ("inbound", "outbound", "random"):
            raise ValueError(f"bad mode {mode}")
        super().__init__(sim, target, name)
        self.period = period
        self.duration = duration
        self.mode = mode
        self._active_pairs: set[tuple[str, str]] = set()

    def _kickoff(self) -> None:
        self._while_running(self.rng.uniform(0, self.period), self._tick)

    def _tick(self) -> None:
        alive = self.target.alive_ids()
        if alive and not self._active_pairs:
            victim = self.rng.choice(alive)
            mode = self.mode
            if mode == "random":
                mode = "inbound" if self.rng.random() < 0.5 else "outbound"
            peers = [n for n in self.target.node_ids() if n != victim]
            for peer in peers:
                pair = (peer, victim) if mode == "inbound" else (victim, peer)
                self._active_pairs.add(pair)
                self.target.net.block_one_way(*pair)
            self._record(f"isolate_{mode}", victim)
            self.sim.schedule(self.duration, self._heal_round)
        self._while_running(self._jittered(self.period), self._tick)

    def _heal_round(self) -> None:
        if not self._active_pairs:
            return
        for src, dst in sorted(self._active_pairs):
            self.target.net.unblock_one_way(src, dst)
        self._active_pairs.clear()
        self._record("heal")

    def _heal(self) -> None:
        self._heal_round()


class DropBurst(Nemesis):
    """Bursts of heavy message loss: raise ``net.drop_prob`` for a
    window, then restore whatever it was before."""

    def __init__(
        self,
        sim: Simulator,
        target: FaultTarget,
        name: str = "drop-burst",
        period: float = 5.0,
        duration: float = 1.0,
        drop_prob: float = 0.4,
    ) -> None:
        super().__init__(sim, target, name)
        self.period = period
        self.duration = duration
        self.drop_prob = drop_prob
        self._saved: float | None = None

    def _kickoff(self) -> None:
        self._while_running(self.rng.uniform(0, self.period), self._tick)

    def _tick(self) -> None:
        if self._saved is None:
            self._saved = self.target.net.drop_prob
            self.target.net.drop_prob = max(self._saved, self.drop_prob)
            self._record("drop_burst", self.drop_prob)
            self.sim.schedule(self.duration, self._heal_round)
        self._while_running(self._jittered(self.period), self._tick)

    def _heal_round(self) -> None:
        if self._saved is None:
            return
        self.target.net.drop_prob = self._saved
        self._saved = None
        self._record("heal")

    def _heal(self) -> None:
        self._heal_round()


class GraySlowdown(Nemesis):
    """Gray failure: a victim's links get slow, not dead.

    Every message still arrives, just ``slowdown`` times later — which
    keeps naive is-it-up probes happy while leases expire, RPCs time
    out, and retry storms build.  The hardest failure mode for
    timeout-based detectors, and the one E16 measures.
    """

    def __init__(
        self,
        sim: Simulator,
        target: FaultTarget,
        name: str = "gray-slowdown",
        period: float = 5.0,
        duration: float = 2.5,
        slowdown: tuple[float, float] = (10.0, 50.0),
    ) -> None:
        super().__init__(sim, target, name)
        self.period = period
        self.duration = duration
        self.slowdown = slowdown
        self._active: dict[str, list[str]] = {}  # victim -> peers degraded

    def _kickoff(self) -> None:
        self._while_running(self.rng.uniform(0, self.period), self._tick)

    def _tick(self) -> None:
        alive = [n for n in self.target.alive_ids() if n not in self._active]
        if alive and not self._active:
            victim = self.rng.choice(alive)
            factor = self.rng.uniform(*self.slowdown)
            peers = [n for n in self.target.node_ids() if n != victim]
            self.target.net.set_node_slowdown(victim, factor, peers)
            self._active[victim] = peers
            self._record("slow", victim, round(factor, 3))
            self.sim.schedule(self.duration, self._heal_victim, victim)
        self._while_running(self._jittered(self.period), self._tick)

    def _heal_victim(self, victim: str) -> None:
        peers = self._active.pop(victim, None)
        if peers is None:
            return
        self.target.net.set_node_slowdown(victim, 1.0, peers)
        self._record("heal", victim)

    def _heal(self) -> None:
        for victim in sorted(self._active):
            self._heal_victim(victim)


class Duplicator(Nemesis):
    """At-least-once delivery: windows where every message may be
    delivered twice (independently timed, so duplicates can reorder past
    the original).  Stresses command dedup exactly the way Spinnaker's
    correctness argument assumes it is stressed."""

    def __init__(
        self,
        sim: Simulator,
        target: FaultTarget,
        name: str = "duplicator",
        period: float = 4.0,
        duration: float = 2.0,
        dup_prob: float = 0.3,
    ) -> None:
        super().__init__(sim, target, name)
        self.period = period
        self.duration = duration
        self.dup_prob = dup_prob
        self._saved: float | None = None

    def _kickoff(self) -> None:
        self._while_running(self.rng.uniform(0, self.period), self._tick)

    def _tick(self) -> None:
        if self._saved is None:
            self._saved = self.target.net.dup_prob
            self.target.net.dup_prob = max(self._saved, self.dup_prob)
            self._record("duplicate", self.dup_prob)
            self.sim.schedule(self.duration, self._heal_round)
        self._while_running(self._jittered(self.period), self._tick)

    def _heal_round(self) -> None:
        if self._saved is None:
            return
        self.target.net.dup_prob = self._saved
        self._saved = None
        self._record("heal")

    def _heal(self) -> None:
        self._heal_round()


class DiskFaults(Nemesis):
    """Storage-layer faults against nodes with a simulated disk.

    Each round picks a victim and one of three modes: an *io_error*
    window (appends/fsyncs/snapshot writes fail, so the replica goes
    silent instead of acking), a *slow* window (fsync latency multiplied,
    the storage flavor of a gray failure), or a *power_cycle* (crash and
    restart, exercising the lost-suffix recovery path).  No-op against
    deployments without the storage model — there are no disks to hurt.
    """

    def __init__(
        self,
        sim: Simulator,
        target: FaultTarget,
        name: str = "disk-faults",
        period: float = 4.0,
        duration: float = 1.5,
        slow_factor: tuple[float, float] = (10.0, 100.0),
        downtime: tuple[float, float] = (0.5, 2.0),
    ) -> None:
        super().__init__(sim, target, name)
        self.period = period
        self.duration = duration
        self.slow_factor = slow_factor
        self.downtime = downtime
        self._io_victims: set[str] = set()
        self._slow_victims: set[str] = set()
        self._down: set[str] = set()

    def _kickoff(self) -> None:
        self._while_running(self.rng.uniform(0, self.period), self._tick)

    def _tick(self) -> None:
        busy = self._io_victims | self._slow_victims | self._down
        candidates = [
            n for n in self.target.disk_ids() if n not in busy and n in self.target.alive_ids()
        ]
        if candidates:
            victim = self.rng.choice(candidates)
            mode = self.rng.choice(("io_error", "slow", "power_cycle"))
            if mode == "io_error":
                self.target.set_disk_io_error(victim, True)
                self._io_victims.add(victim)
                self._record("io_error", victim)
                self.sim.schedule(self.duration, self._heal_io, victim)
            elif mode == "slow":
                factor = self.rng.uniform(*self.slow_factor)
                self.target.set_fsync_factor(victim, factor)
                self._slow_victims.add(victim)
                self._record("slow_fsync", victim, round(factor, 3))
                self.sim.schedule(self.duration, self._heal_slow, victim)
            elif self.target.crash(victim):
                self._down.add(victim)
                self._record("power_cycle", victim)
                self.sim.schedule(self.rng.uniform(*self.downtime), self._restore, victim)
        self._while_running(self._jittered(self.period), self._tick)

    def _heal_io(self, victim: str) -> None:
        if victim in self._io_victims:
            self._io_victims.discard(victim)
            self.target.set_disk_io_error(victim, False)
            self._record("heal_io", victim)

    def _heal_slow(self, victim: str) -> None:
        if victim in self._slow_victims:
            self._slow_victims.discard(victim)
            self.target.set_fsync_factor(victim, 1.0)
            self._record("heal_slow", victim)

    def _restore(self, victim: str) -> None:
        if victim in self._down:
            self._down.discard(victim)
            if self.target.restart(victim):
                self._record("restart", victim)

    def _heal(self) -> None:
        for victim in sorted(self._io_victims):
            self._heal_io(victim)
        for victim in sorted(self._slow_victims):
            self._heal_slow(victim)
        for victim in sorted(self._down):
            if self.target.restart(victim):
                self._record("restart", victim)
        self._down.clear()


class NemesisSuite:
    """Several nemeses run as one: start/stop together, merged events."""

    def __init__(self, nemeses: list[Nemesis]) -> None:
        self.nemeses = list(nemeses)

    def start(self) -> None:
        for nemesis in self.nemeses:
            nemesis.start()

    def stop(self) -> None:
        for nemesis in self.nemeses:
            nemesis.stop()

    @property
    def events(self) -> list[FaultEvent]:
        merged = [e for n in self.nemeses for e in n.events]
        merged.sort(key=lambda e: (e.time, e.nemesis, e.action, e.detail))
        return merged

    def schedule_fingerprint(self) -> tuple:
        return tuple(
            (round(e.time, 9), e.nemesis, e.action, e.detail) for e in self.events
        )

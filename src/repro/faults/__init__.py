"""Fault orchestration: nemeses, scenarios, and fault targets.

This package turns fault injection from hand-coded per-test schedules
into a reusable layer:

- :class:`FaultTarget` adapts any deployment (Paxos cluster, Scatter,
  Chord) to the little interface nemeses need.
- :mod:`repro.faults.nemesis` provides composable nemesis processes
  (crash storms, rolling and one-way partitions, drop bursts, gray-link
  slowdowns, duplicate delivery), all driven from named RNG streams and
  recording every action as a :class:`FaultEvent`.
- :mod:`repro.faults.scenarios` is the declarative registry: named fault
  schedules shared between tests, benchmarks, and the CLI
  (``python -m repro nemesis <scenario>``).
"""

from repro.faults.nemesis import (
    AsymmetricPartition,
    CrashRestartStorm,
    DropBurst,
    Duplicator,
    FaultEvent,
    GraySlowdown,
    Nemesis,
    NemesisSuite,
    RollingPartition,
)
from repro.faults.scenarios import (
    NEMESIS_KINDS,
    SCENARIOS,
    NemesisSpec,
    Scenario,
    build_scenario,
    get_scenario,
    scenario_names,
)
from repro.faults.target import FaultTarget

__all__ = [
    "NEMESIS_KINDS",
    "SCENARIOS",
    "AsymmetricPartition",
    "CrashRestartStorm",
    "DropBurst",
    "Duplicator",
    "FaultEvent",
    "FaultTarget",
    "GraySlowdown",
    "Nemesis",
    "NemesisSpec",
    "NemesisSuite",
    "RollingPartition",
    "Scenario",
    "build_scenario",
    "get_scenario",
    "scenario_names",
]

"""Scatter's mechanism/policy split: pluggable overlay policies.

The paper separates the *mechanisms* (group operations, joins, failure
handling) from the *policies* that decide when and how to use them.
:class:`ScatterPolicy` bundles the three policy axes evaluated in the
paper — resilience (group sizing and join placement), load balance
(split-point and placement choices), and latency (leader placement) —
as declarative knobs interpreted by the node's maintenance loop.
"""

from repro.policies.policy import ScatterPolicy

__all__ = ["ScatterPolicy"]

"""Policy knobs and decision helpers for the maintenance loop."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING


if TYPE_CHECKING:
    from repro.group.info import GroupInfo
    from repro.group.replica import GroupReplica


@dataclass
class ScatterPolicy:
    """Declarative overlay policy.

    Resilience axis:

    - ``target_size`` — the group size the system steers toward; a group
      of k nodes tolerates floor((k-1)/2) simultaneous failures.
    - ``split_size`` — split a group once it exceeds this many members.
    - ``merge_size`` — seek a merge once it shrinks below this.
    - ``join_mode`` — where joining nodes are sent: ``smallest_group``
      (paper's resilience policy: shore up the most fragile group),
      ``random``, or ``largest_range``.

    Load axis:

    - ``split_key_mode`` — ``midpoint`` halves the key range;
      ``load_median`` halves observed per-key load (the paper's
      load-balance policy).

    Latency axis:

    - ``leader_mode`` — ``static`` keeps whatever leader Paxos elects;
      ``latency`` transfers leadership to the member whose fastest
      majority of peers is closest (minimizing commit round trips).
    - ``migrate_balance`` — oversized groups proactively migrate a
      member to the smallest known undersized group.

    Repair axis (self-healing under permanent node loss):

    - ``repair`` — when True, a group leader whose *live* membership has
      fallen below the repair floor heals the group: it pulls a spare
      node in from a healthy donor group (a migrate coordinated by the
      fragile group itself), or merges with its successor when no donor
      exists.  Off by default so existing runs are bit-identical.
    - ``repair_floor`` — the minimum live replication a group may sit at
      before repair kicks in; ``None`` means ``target_size``.
    """

    target_size: int = 5
    split_size: int = 9
    merge_size: int = 3
    join_mode: str = "smallest_group"
    split_key_mode: str = "midpoint"
    leader_mode: str = "static"
    # When True, oversized groups proactively migrate a member to the
    # smallest known undersized group instead of waiting for joins.
    migrate_balance: bool = False
    repair: bool = False
    repair_floor: int | None = None

    def __post_init__(self) -> None:
        if self.merge_size >= self.split_size:
            raise ValueError("merge_size must be < split_size")
        if self.repair_floor is not None and self.repair_floor < 1:
            raise ValueError("repair_floor must be >= 1")
        if self.join_mode not in ("smallest_group", "random", "largest_range"):
            raise ValueError(f"bad join_mode {self.join_mode}")
        if self.split_key_mode not in ("midpoint", "load_median"):
            raise ValueError(f"bad split_key_mode {self.split_key_mode}")
        if self.leader_mode not in ("static", "latency"):
            raise ValueError(f"bad leader_mode {self.leader_mode}")

    # ------------------------------------------------------------------
    # Join placement
    # ------------------------------------------------------------------
    def choose_join_target(
        self, candidates: list["GroupInfo"], rng: random.Random
    ) -> "GroupInfo | None":
        """Which group a joining node should reinforce (``join_mode``)."""
        if not candidates:
            return None
        if self.join_mode == "random":
            return rng.choice(candidates)
        if self.join_mode == "largest_range":
            return max(candidates, key=lambda g: (g.range.size(), g.gid))
        return min(candidates, key=lambda g: (len(g.members), g.gid))

    # ------------------------------------------------------------------
    # Group sizing
    # ------------------------------------------------------------------
    def wants_split(self, group: "GroupReplica") -> bool:
        """True when the group has grown past ``split_size``."""
        return len(group.members) >= self.split_size

    def wants_merge(self, group: "GroupReplica") -> bool:
        """True when the group has shrunk to ``merge_size`` or below."""
        return len(group.members) <= self.merge_size

    def choose_migration(
        self, group: "GroupReplica", known: list["GroupInfo"], rng: random.Random
    ) -> tuple[str, "GroupInfo"] | None:
        """(member, destination) to even out group sizes, or None.

        Fires only with ``migrate_balance``: the donor must exceed the
        target by 2+ (so donating cannot make *it* fragile) and the
        recipient must sit below target by 2+.
        """
        if not self.migrate_balance:
            return None
        if len(group.members) < self.target_size + 2:
            return None
        candidates = [
            info
            for info in known
            if info.gid != group.gid and len(info.members) <= self.target_size - 2
        ]
        if not candidates:
            return None
        destination = min(candidates, key=lambda g: (len(g.members), g.gid))
        movable = [m for m in group.members if m != group.paxos.replica_id]
        if not movable:
            return None
        return rng.choice(sorted(movable)), destination

    # ------------------------------------------------------------------
    # Repair (self-healing)
    # ------------------------------------------------------------------
    def effective_repair_floor(self) -> int:
        """The live-replication level below which repair engages."""
        return self.repair_floor if self.repair_floor is not None else self.target_size

    def choose_repair_donor(
        self, group: "GroupReplica", known: list["GroupInfo"]
    ) -> tuple[str, "GroupInfo"] | None:
        """(node, donor group) for a pull-in repair migrate, or None.

        A donor must sit strictly above the repair floor so donating
        cannot drag *it* below the floor, and must have a member not
        already in the fragile group.  Selection is deterministic: the
        largest (then lexicographically-first) donor, and its first
        spare member in sorted order — two leaders observing the same
        overlay state pick the same donor, so duplicate repairs target
        the same node and the second prepare is refused cleanly.
        """
        floor = self.effective_repair_floor()
        ours = set(group.members)
        candidates: list[tuple["GroupInfo", str]] = []
        for info in known:
            if info.gid == group.gid or len(info.members) <= floor:
                continue
            spare = sorted(m for m in info.members if m not in ours)
            if spare:
                candidates.append((info, spare[0]))
        if not candidates:
            return None
        donor, node = max(candidates, key=lambda c: (len(c[0].members), c[0].gid))
        return node, donor

    def choose_split_key(self, group: "GroupReplica") -> int:
        """Where to cut the range: geometric middle or load median."""
        if self.split_key_mode == "load_median":
            key = _load_median(group)
            if key is not None:
                return key
        return group.range.midpoint()

    def partition_members(
        self, members: list[str], rng: random.Random
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Split a member list into two halves for the two new groups."""
        shuffled = sorted(members)
        rng.shuffle(shuffled)
        half = len(shuffled) // 2
        return tuple(sorted(shuffled[:half])), tuple(sorted(shuffled[half:]))

    # ------------------------------------------------------------------
    # Leader placement
    # ------------------------------------------------------------------
    def choose_leader(self, group: "GroupReplica", expected_latency) -> str | None:
        """Return a better leader than the current one, or None.

        ``expected_latency(a, b)`` estimates one-way latency between two
        nodes.  A commit needs acknowledgements from the fastest
        majority, so the figure of merit is the distance to the
        (majority-1)-th closest *other* member — a leader with a couple
        of nearby peers commits fast no matter how far the stragglers
        are.
        """
        if self.leader_mode != "latency":
            return None
        members = group.members
        if len(members) < 2:
            return None
        majority = len(members) // 2 + 1

        def quorum_latency(candidate: str) -> float:
            others = sorted(expected_latency(candidate, m) for m in members if m != candidate)
            return others[majority - 2]

        best = min(members, key=lambda m: (quorum_latency(m), m))
        current = group.paxos.replica_id
        if best == current:
            return None
        # Only transfer when the improvement is material (>5%), to avoid
        # flapping between near-equivalent members.
        if quorum_latency(best) > 0.95 * quorum_latency(current):
            return None
        return best


def _load_median(group: "GroupReplica") -> int | None:
    """Key that splits observed load in half, if enough signal exists."""
    if sum(group.load.values()) < 10:
        return None
    # Order keys along the arc starting at range.lo so wraparound ranges
    # accumulate in ring order.
    lo = group.range.lo
    ordered = sorted(group.load, key=lambda k: (k - lo) % (1 << 32))
    total = sum(group.load.values())
    acc = 0
    for key in ordered:
        acc += group.load[key]
        if acc * 2 >= total:
            candidate = key
            if candidate != group.range.lo and group.range.contains(candidate):
                return candidate
            return None
    return None

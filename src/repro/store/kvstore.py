"""The key-value state machine replicated by each Scatter group.

Keys are integers in the DHT identifier space (hashed from user strings
by the overlay layer).  Values are opaque.  Every mutation bumps a
per-key version; versions let the linearizability checker and the Chirp
application reason about staleness cheaply.

The store also supports *range extraction* and *absorption*: a split
transaction carves the state for one half of a group's range out of the
store, and a merge transaction absorbs a neighbour's state.  Client
session bookkeeping (for exactly-once retried operations) lives in the
store too, because it must move with the data during splits and merges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

OP_GET = "get"
OP_PUT = "put"
OP_DELETE = "delete"
OP_CAS = "cas"

_VALID_OPS = (OP_GET, OP_PUT, OP_DELETE, OP_CAS)


@dataclass(frozen=True)
class KvOp:
    """One storage operation, as carried in a group's Paxos log."""

    op: str
    key: int
    value: Any = None
    expected_version: int | None = None  # for cas

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise ValueError(f"unknown op {self.op!r}")


@dataclass(frozen=True)
class KvResult:
    """Outcome of a storage operation."""

    ok: bool
    value: Any = None
    version: int = 0
    error: str | None = None


@dataclass
class _Cell:
    value: Any
    version: int


@dataclass
class RangeState:
    """Serialized slice of a store, moved by split/merge transactions."""

    cells: dict[int, tuple[Any, int]] = field(default_factory=dict)
    sessions: dict[str, dict[int, Any]] = field(default_factory=dict)


# How many recent (client, seq) results to retain per client.  Retries of
# an operation happen within seconds; a window this size outlives them by
# orders of magnitude while bounding memory.
SESSION_WINDOW = 128


class KvStore:
    """In-memory versioned KV map with client session dedup."""

    def __init__(self) -> None:
        self._cells: dict[int, _Cell] = {}
        # client_id -> {seq: result}: exactly-once for retried operations.
        # Exact-match (not a watermark) because one client may have many
        # operations in flight, arriving at this shard in any order.
        self._sessions: dict[str, dict[int, KvResult]] = {}
        self.ops_applied = 0

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def apply(self, op: KvOp, dedup: tuple[str, int] | None = None) -> KvResult:
        """Apply ``op``; with ``dedup=(client, seq)`` retries are idempotent."""
        if dedup is not None:
            client, seq = dedup
            session = self._sessions.get(client)
            if session is not None and seq in session:
                return session[seq]
        result = self._execute(op)
        self.ops_applied += 1
        if dedup is not None:
            client, seq = dedup
            session = self._sessions.setdefault(client, {})
            session[seq] = result
            if len(session) > SESSION_WINDOW:
                for stale in sorted(session)[: len(session) - SESSION_WINDOW]:
                    del session[stale]
        return result

    def _execute(self, op: KvOp) -> KvResult:
        cell = self._cells.get(op.key)
        if op.op == OP_GET:
            if cell is None:
                return KvResult(ok=False, error="not_found")
            return KvResult(ok=True, value=cell.value, version=cell.version)
        if op.op == OP_PUT:
            if cell is None:
                self._cells[op.key] = _Cell(value=op.value, version=1)
                return KvResult(ok=True, version=1)
            cell.value = op.value
            cell.version += 1
            return KvResult(ok=True, version=cell.version)
        if op.op == OP_DELETE:
            if cell is None:
                return KvResult(ok=False, error="not_found")
            del self._cells[op.key]
            return KvResult(ok=True, version=cell.version)
        # OP_CAS
        if cell is None:
            return KvResult(ok=False, error="not_found")
        if op.expected_version is not None and cell.version != op.expected_version:
            return KvResult(ok=False, value=cell.value, version=cell.version, error="conflict")
        cell.value = op.value
        cell.version += 1
        return KvResult(ok=True, version=cell.version)

    def get(self, key: int) -> KvResult:
        """Read-only lookup (used by lease reads; does not count as an op)."""
        cell = self._cells.get(key)
        if cell is None:
            return KvResult(ok=False, error="not_found")
        return KvResult(ok=True, value=cell.value, version=cell.version)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cells)

    def keys(self) -> list[int]:
        return sorted(self._cells)

    def keys_in(self, lo: int, hi: int) -> list[int]:
        """Keys in [lo, hi) under ordinary integer order (no wraparound)."""
        return sorted(k for k in self._cells if lo <= k < hi)

    # ------------------------------------------------------------------
    # Range movement (split / merge)
    # ------------------------------------------------------------------
    def extract(self, keys: list[int]) -> RangeState:
        """Remove ``keys`` and return them as a transferable range state.

        Client sessions are copied (not moved): a client may have
        operations on both sides of a split, and duplicate session
        entries are harmless — they only suppress replays.
        """
        state = RangeState()
        for key in keys:
            cell = self._cells.pop(key, None)
            if cell is not None:
                state.cells[key] = (cell.value, cell.version)
        state.sessions = {c: dict(seqs) for c, seqs in self._sessions.items()}
        return state

    def absorb(self, state: RangeState) -> None:
        """Install a range state produced by :meth:`extract`.

        Session entries merge by union; the same (client, seq) always
        maps to the same result, so collisions are harmless.
        """
        for key, (value, version) in state.cells.items():
            self._cells[key] = _Cell(value=value, version=version)
        for client, seqs in state.sessions.items():
            self._sessions.setdefault(client, {}).update(seqs)

    def snapshot(self) -> RangeState:
        """Full copy of the store (bootstrap state for new group members)."""
        return self.extract_copy(self.keys())

    def extract_copy(self, keys: list[int]) -> RangeState:
        """Like :meth:`extract` but non-destructive."""
        state = RangeState()
        for key in keys:
            cell = self._cells.get(key)
            if cell is not None:
                state.cells[key] = (cell.value, cell.version)
        state.sessions = {c: dict(seqs) for c, seqs in self._sessions.items()}
        return state

"""Versioned key-value storage — the state machine each group replicates."""

from repro.store.kvstore import KvOp, KvResult, KvStore, OP_CAS, OP_DELETE, OP_GET, OP_PUT

__all__ = ["KvOp", "KvResult", "KvStore", "OP_CAS", "OP_DELETE", "OP_GET", "OP_PUT"]

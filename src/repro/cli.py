"""Command-line interface: run experiments and ad-hoc simulations.

Usage::

    python -m repro list
    python -m repro run E2 E11 --full --seed 7
    python -m repro sweep E2 --workers 4 --seeds 1 2 3 4
    python -m repro churn --backend scatter --lifetime 120 --duration 90
    python -m repro nemesis gray_failure --backend scatter --duration 60
    python -m repro profile E6 --top 20
    python -m repro perf --json BENCH_SIM.json
    python -m repro trace e05 --out trace_E5.jsonl
    python -m repro fuzz --iterations 25
    python -m repro fuzz --demo-bug quorum-off-by-one
    python -m repro fuzz --replay repro-12345.json
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.faults.scenarios import SCENARIOS, scenario_names
from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    EXPERIMENT_TITLES,
    _churn_run,
    _nemesis_run,
)
from repro.harness.builders import DeploymentParams


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:])):
        print(f"{name:>4}  {EXPERIMENT_TITLES.get(name, '')}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = args.experiments or sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:]))
    for name in names:
        key = name.upper()
        if key not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; try `python -m repro list`", file=sys.stderr)
            return 2
        started = time.time()
        kwargs = {"quick": not args.full}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        result = ALL_EXPERIMENTS[key](**kwargs)
        print(result.render())
        if args.chart:
            from repro.harness.charts import render_chart

            print()
            print(render_chart(result, args.chart))
        print(f"[{key} in {time.time() - started:.1f}s wall]\n")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness.sweep import derive_seed, run_sweep

    key = _experiment_key(args.experiment)
    if key is None:
        print(
            f"unknown experiment {args.experiment!r}; try `python -m repro list`",
            file=sys.stderr,
        )
        return 2
    seeds = args.seeds
    if not seeds:
        seeds = [derive_seed(args.master_seed, key, i) for i in range(args.count)]
    started = time.time()
    sweep = run_sweep(key, seeds, quick=not args.full, workers=args.workers)
    print(sweep.merged.render())
    if args.fingerprints:
        print()
        for seed, digest in sweep.fingerprints():
            print(f"cell seed={seed} fingerprint={digest}")
    print(
        f"[{key} x {len(seeds)} seeds, {args.workers} worker(s) "
        f"in {time.time() - started:.1f}s wall]"
    )
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    params = DeploymentParams(
        n_nodes=args.nodes, n_groups=max(1, args.nodes // 5), n_clients=3, seed=args.seed
    )
    metrics = _churn_run(
        args.backend,
        args.lifetime if args.lifetime > 0 else None,
        args.duration,
        params,
    )
    print(f"backend:       {args.backend}")
    print(f"nodes:         {args.nodes}")
    print(f"lifetime:      {args.lifetime if args.lifetime > 0 else 'no churn'}")
    print(f"ops:           {metrics['ops']}")
    print(f"availability:  {metrics['availability']:.4f}")
    print(f"p50 latency:   {1000 * metrics['latency_p50']:.1f} ms")
    print(f"reads checked: {metrics['reads_checked']}")
    print(f"violations:    {metrics['violations']}")
    print(f"departures:    {metrics['departures']}")
    return 0


def _cmd_nemesis(args: argparse.Namespace) -> int:
    if args.scenario is None or args.scenario == "list":
        for name in scenario_names():
            print(f"{name:>22}  {SCENARIOS[name].description}")
        return 0
    if args.scenario not in SCENARIOS:
        known = ", ".join(scenario_names())
        print(f"unknown scenario {args.scenario!r}; known: {known}", file=sys.stderr)
        return 2
    params = DeploymentParams(
        n_nodes=args.nodes, n_groups=max(1, args.nodes // 5), n_clients=3, seed=args.seed
    )
    metrics = _nemesis_run(args.backend, args.scenario, args.duration, params)
    print(f"scenario:      {args.scenario}")
    print(f"backend:       {args.backend}")
    print(f"nodes:         {args.nodes}  seed: {args.seed}  duration: {args.duration}s")
    print(f"fault events:  {metrics['fault_events']}")
    print(f"ops:           {metrics['ops']}")
    print(f"availability:  {metrics['availability']:.4f}")
    print(f"p50 latency:   {1000 * metrics['latency_p50']:.1f} ms")
    print(f"violations:    {metrics['violations']}")
    print(f"stalls:        {metrics['stalls']}  (max {metrics['max_stall_s']:.2f} s)")
    if "dead_groups" in metrics:
        dead = metrics["dead_groups"]
        if dead:
            print(f"dead groups:   {dead}  (first below quorum at +{metrics['first_death_s']:.2f} s)")
        else:
            print("dead groups:   0")
    recovered = "yes" if metrics["recovered"] else "NO (capped)"
    print(f"recovery:      {metrics['recovery_s']:.2f} s after heal  recovered: {recovered}")
    dead_ok = metrics.get("dead_groups", 0) == 0
    return 0 if metrics["recovered"] and metrics["violations"] == 0 and dead_ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.perf.profile import profile_experiment

    try:
        result, stats_text = profile_experiment(
            args.experiment, quick=not args.full, seed=args.seed,
            sort=args.sort, top=args.top,
        )
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(result.render())
    print()
    print(stats_text)
    return 0


def _experiment_key(name: str) -> str | None:
    """Normalize 'e05'/'E5'/'5' to the registry key 'E5' (None if unknown)."""
    text = name.strip().upper()
    if text.startswith("E"):
        text = text[1:]
    if not text.isdigit():
        return None
    key = f"E{int(text)}"
    return key if key in ALL_EXPERIMENTS else None


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.harness.experiments import run_traced
    from repro.obs.export import render_breakdown, write_jsonl

    key = _experiment_key(args.experiment)
    if key is None:
        print(
            f"unknown experiment {args.experiment!r}; try `python -m repro list`",
            file=sys.stderr,
        )
        return 2
    started = time.time()
    result, tracer = run_traced(key, quick=not args.full, seed=args.seed)
    out = args.out or f"trace_{key}.jsonl"
    lines = write_jsonl(tracer, out)
    print(result.render())
    print()
    print(render_breakdown(tracer))
    print(f"\n[{lines} trace lines -> {out}; {key} in {time.time() - started:.1f}s wall]")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    import os

    from repro.perf.microbench import (
        attach_baseline,
        compare_benchmarks,
        load_bench_file,
        render_report,
        run_microbenchmarks,
        write_bench_file,
    )

    report = run_microbenchmarks(quick=args.quick, repeat=args.repeat)
    comparison = None
    if args.json and os.path.exists(args.json):
        previous = load_bench_file(args.json)
        comparison = compare_benchmarks(previous, report)
        # The pre-PR reference measurement rides along across rewrites.
        if "pre_pr_baseline" in previous:
            attach_baseline(report, previous["pre_pr_baseline"])
    print(render_report(report, comparison))
    if args.json:
        write_bench_file(report, args.json)
        print(f"\nwrote {args.json}")
    if args.fail_below and comparison:
        regressed = [
            c for c in comparison
            if c["ratio"] is not None and c["ratio"] < args.fail_below
        ]
        for c in regressed:
            print(
                f"REGRESSION: {c['name']} {c['old']:,.0f} -> {c['new']:,.0f} "
                f"{c['metric']} ({c['ratio']:.2f}x < {args.fail_below}x)",
                file=sys.stderr,
            )
        if regressed:
            return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.check import FuzzConfig, load_repro, replay, run_fuzz, run_fuzz_sharded

    if args.replay:
        try:
            data = load_repro(args.replay)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load repro file: {exc}", file=sys.stderr)
            return 2
        reproduced, observed, recorded = replay(data)
        print(f"recorded: {recorded.kind}:{recorded.name} @ t={recorded.time}")
        if observed is None:
            print("observed: run completed clean — NOT reproduced", file=sys.stderr)
            return 2
        print(f"observed: {observed.kind}:{observed.name} @ t={observed.time}")
        print(f"detail:   {observed.detail}")
        if not reproduced:
            print("failure differs from the recorded one — NOT reproduced", file=sys.stderr)
            return 2
        print("reproduced: yes")
        return 0

    config = FuzzConfig(
        master_seed=args.seed,
        iterations=args.iterations,
        minutes=args.minutes,
        bug=args.demo_bug,
        out_dir=args.out_dir,
        shrink=not args.no_shrink,
        max_shrink_runs=args.max_shrink_runs,
        progress=lambda line: print(f"[fuzz] {line}", file=sys.stderr),
    )
    try:
        if args.workers > 1:
            if args.minutes is not None:
                print("--workers requires a fixed --iterations budget; "
                      "--minutes campaigns run serially", file=sys.stderr)
                return 2
            summary = run_fuzz_sharded(config, workers=args.workers)
        else:
            summary = run_fuzz(config)
    except ValueError as exc:  # unknown --demo-bug
        print(str(exc), file=sys.stderr)
        return 2
    print(json.dumps(summary.to_dict(), sort_keys=True))
    if summary.found:
        failure = summary.failure
        print(
            f"FAILURE at iteration {summary.failing_iteration}: "
            f"{failure.kind}:{failure.name} — {failure.detail}",
            file=sys.stderr,
        )
        print(f"repro written to {summary.repro_path}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scatter (SOSP 2011) reproduction: experiments and simulations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run experiments (default: all, quick scale)")
    p_run.add_argument("experiments", nargs="*", help="e.g. E1 E2 e11")
    p_run.add_argument("--full", action="store_true", help="paper-scale runs (slow)")
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument("--chart", metavar="COLUMN", default=None,
                       help="also render an ASCII bar chart of this column")
    p_run.set_defaults(fn=_cmd_run)

    p_sweep = sub.add_parser(
        "sweep",
        help="run one experiment across seeds, sharded over worker "
             "processes; the merged table is byte-identical to a serial run",
    )
    p_sweep.add_argument("experiment", help="e.g. E2")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="worker processes (1 = serial, the reference)")
    p_sweep.add_argument("--seeds", type=int, nargs="*", default=None,
                         help="explicit cell seeds (default: derive --count "
                              "seeds from --master-seed)")
    p_sweep.add_argument("--count", type=int, default=4,
                         help="derived seeds when --seeds is not given")
    p_sweep.add_argument("--master-seed", type=int, default=1)
    p_sweep.add_argument("--full", action="store_true", help="paper-scale cells (slow)")
    p_sweep.add_argument("--fingerprints", action="store_true",
                         help="also print each cell's table fingerprint")
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_churn = sub.add_parser("churn", help="one ad-hoc churn run with metrics")
    p_churn.add_argument("--backend", choices=["scatter", "chord"], default="scatter")
    p_churn.add_argument("--lifetime", type=float, default=120.0,
                         help="median node lifetime in seconds (0 = no churn)")
    p_churn.add_argument("--duration", type=float, default=60.0)
    p_churn.add_argument("--nodes", type=int, default=20)
    p_churn.add_argument("--seed", type=int, default=1)
    p_churn.set_defaults(fn=_cmd_churn)

    p_nem = sub.add_parser(
        "nemesis", help="run a named fault scenario against a live deployment"
    )
    p_nem.add_argument("scenario", nargs="?", default=None,
                       help="scenario name (omit or 'list' to list scenarios)")
    p_nem.add_argument("--backend", choices=["scatter", "chord"], default="scatter")
    p_nem.add_argument("--nodes", type=int, default=20)
    p_nem.add_argument("--duration", type=float, default=40.0)
    p_nem.add_argument("--seed", type=int, default=1)
    p_nem.set_defaults(fn=_cmd_nemesis)

    p_prof = sub.add_parser(
        "profile", help="run one experiment under cProfile and print hot frames"
    )
    p_prof.add_argument("experiment", help="e.g. E6")
    p_prof.add_argument("--full", action="store_true", help="paper-scale run (slow)")
    p_prof.add_argument("--seed", type=int, default=None)
    p_prof.add_argument("--sort", choices=["tottime", "cumulative", "ncalls"],
                        default="tottime")
    p_prof.add_argument("--top", type=int, default=25, help="frames to print")
    p_prof.set_defaults(fn=_cmd_profile)

    p_perf = sub.add_parser(
        "perf", help="simulator wall-clock microbenchmarks (events/sec etc.)"
    )
    p_perf.add_argument("--json", metavar="PATH", default=None,
                        help="write report to PATH (comparing against it first "
                             "if it exists), e.g. BENCH_SIM.json")
    p_perf.add_argument("--quick", action="store_true",
                        help="small workloads (smoke test, not for BENCH_SIM.json)")
    p_perf.add_argument("--repeat", type=int, default=3,
                        help="runs per benchmark; best is kept")
    p_perf.add_argument("--fail-below", type=float, default=None, metavar="RATIO",
                        help="exit 1 if any benchmark falls below RATIO x the "
                             "previous report (use ~0.6 to absorb CI noise)")
    p_perf.set_defaults(fn=_cmd_perf)

    p_trace = sub.add_parser(
        "trace",
        help="run one experiment with repro.obs tracing on; print the "
             "per-phase cost breakdown and write a JSONL trace",
    )
    p_trace.add_argument("experiment", help="e.g. e05 or E5")
    p_trace.add_argument("--full", action="store_true", help="paper-scale run (slow)")
    p_trace.add_argument("--seed", type=int, default=None)
    p_trace.add_argument("--out", metavar="PATH", default=None,
                         help="JSONL trace path (default trace_<EXP>.jsonl)")
    p_trace.set_defaults(fn=_cmd_trace)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="deterministic-simulation fuzzing: randomized fault schedules "
             "checked against the repro.check invariant registry",
    )
    p_fuzz.add_argument("--iterations", type=int, default=25,
                        help="iterations to run (ignored with --minutes)")
    p_fuzz.add_argument("--workers", type=int, default=1,
                        help="shard iterations across N processes; the "
                             "verdict (failing iteration, repro file) matches "
                             "a serial campaign")
    p_fuzz.add_argument("--minutes", type=float, default=None,
                        help="wall-clock budget; run iterations until it expires")
    p_fuzz.add_argument("--seed", type=int, default=1,
                        help="master seed; iteration seeds derive from it")
    p_fuzz.add_argument("--demo-bug", default=None, metavar="NAME",
                        help="inject a known bug (quorum-off-by-one, "
                             "forgotten-promise) to prove the fuzzer finds it")
    p_fuzz.add_argument("--out-dir", default=".",
                        help="directory for repro-<seed>.json files")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging the failing plan")
    p_fuzz.add_argument("--max-shrink-runs", type=int, default=150,
                        help="re-execution budget for the shrinker")
    p_fuzz.add_argument("--replay", metavar="FILE", default=None,
                        help="re-execute a saved repro file and verify the "
                             "recorded failure reproduces (exit 0 if so)")
    p_fuzz.set_defaults(fn=_cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())

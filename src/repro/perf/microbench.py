"""Microbenchmarks for the simulation core's wall-clock throughput.

Each benchmark runs a fixed, seeded simulated workload and reports how
fast the host chewed through it.  The simulated work is bit-identical
between runs and between machines; only the wall-clock differs.  Every
metric is "bigger is better" (events, messages, or operations per
wall-clock second).

The suite is the source of ``BENCH_SIM.json``, committed at the repo
root so the perf trajectory is reviewable across PRs and regressions
are a one-command check (``scripts/check_perf.sh``).
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Callable

from repro.sim.latency import ConstantLatency, LogNormalLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork

BENCH_FILENAME = "BENCH_SIM.json"

# Regressions smaller than this ratio are treated as wall-clock noise by
# compare_benchmarks callers (shared CI boxes jitter easily by 20-30%).
DEFAULT_TOLERANCE = 0.6


# ---------------------------------------------------------------------------
# Individual benchmarks.  Each returns work-units completed; the runner
# divides by wall time.
# ---------------------------------------------------------------------------
def _bench_event_throughput(n: int) -> Callable[[], int]:
    """Raw event loop: one self-rescheduling tick, fire-and-forget path."""

    def run() -> int:
        sim = Simulator(seed=1)
        count = [0]
        fire = sim.schedule_fire
        def tick() -> None:
            count[0] += 1
            if count[0] < n:
                fire(0.001, tick)
        fire(0.0, tick)
        sim.run()
        return count[0]

    return run


def _bench_event_throughput_handles(n: int) -> Callable[[], int]:
    """Handle-based scheduling with a cancellation on every other event —
    exercises EventHandle allocation plus lazy deletion."""

    def run() -> int:
        sim = Simulator(seed=1)
        count = [0]
        def tick() -> None:
            count[0] += 1
            if count[0] < n:
                sim.schedule(0.001, tick)
                sim.schedule(0.002, tick).cancel()
        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    return run


def _bench_net_send_deliver(n: int) -> Callable[[], int]:
    """Two endpoints ping-pong over a fault-free network (fast path)."""

    def run() -> int:
        sim = Simulator(seed=1)
        net = SimNetwork(sim, latency=ConstantLatency(0.001))
        got = [0]
        def pong(src: str, msg: Any) -> None:
            got[0] += 1
            if got[0] < n:
                net.send("b", "a", msg)
        def ping(src: str, msg: Any) -> None:
            got[0] += 1
            if got[0] < n:
                net.send("a", "b", msg)
        net.register("a", ping)
        net.register("b", pong)
        net.send("a", "b", "ping")
        sim.run()
        return got[0]

    return run


def _bench_net_send_deliver_faulty(n: int) -> Callable[[], int]:
    """Same ping-pong with drop/dup/slowdown active (slow path)."""

    def run() -> int:
        sim = Simulator(seed=1)
        net = SimNetwork(sim, latency=ConstantLatency(0.001), drop_prob=0.01, dup_prob=0.01)
        net.set_link_slowdown("c", "d", 4.0)  # unrelated link; keeps slow path on
        got = [0]
        def pong(src: str, msg: Any) -> None:
            got[0] += 1
            if got[0] < n:
                net.send("b", "a", msg)
        def ping(src: str, msg: Any) -> None:
            got[0] += 1
            if got[0] < n:
                net.send("a", "b", msg)
        net.register("a", ping)
        net.register("b", pong)
        def kick() -> None:
            # Drops kill the ping-pong chain; restart it until done.
            if got[0] < n:
                net.send("a", "b", "ping")
                sim.schedule_fire(0.5, kick)
        kick()
        sim.run()
        return got[0]

    return run


def _bench_e2e_ops(duration: float) -> Callable[[], int]:
    """End-to-end: a small Scatter deployment under closed-loop load.

    Returns simulator events processed (the unit the optimizations
    target); the ops count is reported via the ``extra`` hook.
    """

    def run() -> int:
        # Imported lazily: the harness pulls in the whole stack and the
        # event/net benches should not pay for that.
        from repro.harness.builders import DeploymentParams, build_scatter_deployment
        from repro.workloads import UniformKeys
        from repro.workloads.driver import ClosedLoopWorkload

        params = DeploymentParams(
            n_nodes=12, n_groups=4, n_clients=2, seed=1,
            latency=LogNormalLatency(0.004, 0.4),
        )
        deployment = build_scatter_deployment(params)
        workload = ClosedLoopWorkload(
            deployment.sim, deployment.clients, UniformKeys(64), read_fraction=0.5
        )
        workload.start()
        deployment.sim.run_for(duration)
        workload.stop()
        run.ops = len(workload.all_records())  # type: ignore[attr-defined]
        return deployment.sim.events_processed

    return run


def _bench_ring_lookup(n_lookups: int, n_groups: int) -> Callable[[], int]:
    """Routing-table lookups on a large ring: RingTable bisect vs the
    historical linear containment scan over the same infos.

    A ``n_groups``-arc tiled ring stands in for a ~10k-node deployment
    (3 members per group).  The reported value is the table path; the
    linear baseline (scaled down — it is hundreds of times slower) and
    the speedup land in the report via the ``extra`` hook.  The two
    paths are cross-checked for identical picks on a key sample, the
    equivalence E21 relies on.
    """

    def run() -> int:
        import random as _random

        from repro.dht.ring import KEY_SPACE, KeyRange, ring_distance
        from repro.dht.route import RingTable
        from repro.group.info import GroupInfo

        bounds = [(i * KEY_SPACE) // n_groups for i in range(n_groups)]
        infos = [
            GroupInfo(
                gid=f"g{i:05d}",
                range=KeyRange(bounds[i], bounds[(i + 1) % n_groups]),
                members=(f"n{3 * i}", f"n{3 * i + 1}", f"n{3 * i + 2}"),
                leader_hint=f"n{3 * i}",
            )
            for i in range(n_groups)
        ]
        rng = _random.Random(1)
        keys = [rng.randrange(KEY_SPACE) for _ in range(n_lookups)]

        def linear_best(key: int) -> GroupInfo:
            # The historical ScatterClient._best_info scan.
            containing = [g for g in infos if g.range.contains(key)]
            if containing:
                return containing[0]
            return min(infos, key=lambda g: ring_distance(g.range.lo, key))

        table = RingTable(infos)
        for key in keys[:200]:
            assert table.lookup(key) is linear_best(key)

        t0 = time.perf_counter()
        lookup = table.lookup
        for key in keys:
            lookup(key)
        table_wall = time.perf_counter() - t0

        n_linear = max(200, n_lookups // 200)
        t0 = time.perf_counter()
        for key in keys[:n_linear]:
            linear_best(key)
        linear_wall = time.perf_counter() - t0

        table_rate = n_lookups / table_wall if table_wall > 0 else 0.0
        linear_rate = n_linear / linear_wall if linear_wall > 0 else 0.0
        run.self_timed = (n_lookups, table_wall)  # type: ignore[attr-defined]
        run.extra = {  # type: ignore[attr-defined]
            "groups": n_groups,
            "linear_lookups_per_s": round(linear_rate, 1),
            "speedup_vs_linear": round(table_rate / linear_rate, 2) if linear_rate else None,
        }
        return n_lookups

    return run


def _bench_pooled_send_deliver(n: int) -> Callable[[], int]:
    """The fault-free send->deliver path, pooled vs unpooled, in one
    process: the same ping-pong as ``net_send_deliver`` run once with
    ``pooling=False`` (the pre-PR code path: latency.sample call,
    _deliver frame, per-delivery set probes and tuple allocations) and
    once with the direct-dispatch pooled path.  The reported value is
    the pooled rate; the in-process A/B ratio lands in ``extra``.
    """

    def one(pooling: bool) -> float:
        sim = Simulator(seed=1)
        net = SimNetwork(sim, latency=ConstantLatency(0.001), pooling=pooling)
        got = [0]

        def pong(src: str, msg: Any) -> None:
            got[0] += 1
            if got[0] < n:
                net.send("b", "a", msg)

        def ping(src: str, msg: Any) -> None:
            got[0] += 1
            if got[0] < n:
                net.send("a", "b", msg)

        net.register("a", ping)
        net.register("b", pong)
        net.send("a", "b", "ping")
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0

    def run() -> int:
        unpooled_wall = one(False)
        pooled_wall = one(True)
        pooled_rate = n / pooled_wall if pooled_wall > 0 else 0.0
        unpooled_rate = n / unpooled_wall if unpooled_wall > 0 else 0.0
        run.self_timed = (n, pooled_wall)  # type: ignore[attr-defined]
        run.extra = {  # type: ignore[attr-defined]
            "unpooled_msgs_per_s": round(unpooled_rate, 1),
            "speedup_vs_unpooled": round(pooled_rate / unpooled_rate, 2)
            if unpooled_rate
            else None,
        }
        return n

    return run


def _bench_write_path(n: int) -> Callable[[], int]:
    """Write-path saturation: a 3-replica Paxos group with the full
    throughput stack on (slot batching, pipelined slots, accept
    coalescing, WAL group commit) chewing through ``n`` closed-pipe
    proposals at concurrency 64.  Guards the hot path the write-path
    optimizations touch; returns simulator events processed.
    """

    def run() -> int:
        from repro.consensus.commands import Command
        from repro.consensus.harness import build_cluster
        from repro.consensus.replica import PaxosConfig
        from repro.storage.disk import StorageConfig

        sim = Simulator(seed=1)
        net = SimNetwork(sim, latency=ConstantLatency(0.001))
        config = PaxosConfig(
            heartbeat_interval=0.1,
            election_timeout=0.5,
            lease_duration=0.35,
            retry_interval=0.3,
            batch=True,
            batch_window=0.002,
            batch_max=16,
            pipeline_depth=8,
            accept_coalescing=True,
        )
        hosts = build_cluster(
            sim, net, n=3, config=config, storage=StorageConfig(fsync_coalesce=0.002)
        )
        sim.run_for(0.5)  # let the initial leader settle
        leader = hosts[0]
        issued = [0]
        done = [0]

        def pump(_future: Any = None) -> None:
            done[0] += _future is not None
            if issued[0] < n:
                issued[0] += 1
                leader.propose(Command.app(issued[0])).add_callback(pump)

        for _ in range(64):
            pump()
        sim.run_for(120.0)
        run.ops = done[0]  # type: ignore[attr-defined]
        return sim.events_processed

    return run


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------
def run_microbenchmarks(quick: bool = False, repeat: int = 3) -> dict:
    """Run the suite; return a JSON-ready report.

    ``repeat`` runs each benchmark several times and keeps the best —
    the standard defence against scheduler noise.  ``quick`` shrinks the
    workloads for tests and smoke runs.
    """
    n_events = 30_000 if quick else 300_000
    n_msgs = 20_000 if quick else 200_000
    e2e_duration = 5.0 if quick else 30.0
    n_writes = 2_000 if quick else 20_000
    n_lookups = 20_000 if quick else 200_000
    n_lookup_groups = 334 if quick else 3_334  # ~1k / ~10k nodes at 3 members/group

    specs: list[tuple[str, str, Callable[[], int]]] = [
        ("event_throughput", "events_per_s", _bench_event_throughput(n_events)),
        ("event_throughput_handles", "events_per_s", _bench_event_throughput_handles(n_events)),
        ("net_send_deliver", "msgs_per_s", _bench_net_send_deliver(n_msgs)),
        ("net_send_deliver_faulty", "msgs_per_s", _bench_net_send_deliver_faulty(n_msgs)),
        ("pooled_send_deliver", "msgs_per_s", _bench_pooled_send_deliver(n_msgs)),
        ("ring_lookup_10k", "lookups_per_s", _bench_ring_lookup(n_lookups, n_lookup_groups)),
        ("e2e_scatter_ops", "events_per_s", _bench_e2e_ops(e2e_duration)),
        ("write_path_saturation", "events_per_s", _bench_write_path(n_writes)),
    ]

    benchmarks = []
    for name, metric, fn in specs:
        best_rate = 0.0
        best_units = 0
        best_wall = 0.0
        best_extra: dict | None = None
        for _ in range(max(1, repeat)):
            t0 = time.perf_counter()
            units = fn()
            wall = time.perf_counter() - t0
            # Self-timing benchmarks measure only their targeted path
            # (excluding setup or an in-process baseline) and report it
            # via the ``self_timed`` hook.
            timed = getattr(fn, "self_timed", None)
            if timed is not None:
                units, wall = timed
            rate = units / wall if wall > 0 else 0.0
            if rate > best_rate:
                best_rate, best_units, best_wall = rate, units, wall
                best_extra = getattr(fn, "extra", None)
        entry = {
            "name": name,
            "metric": metric,
            "value": round(best_rate, 1),
            "units_completed": best_units,
            "wall_s": round(best_wall, 4),
        }
        ops = getattr(fn, "ops", None)
        if ops is not None:
            entry["ops_completed"] = ops
            entry["ops_per_s"] = round(ops / best_wall, 1) if best_wall > 0 else 0.0
        if best_extra:
            entry.update(best_extra)
        benchmarks.append(entry)

    return {
        "schema": 1,
        "quick": quick,
        "repeat": repeat,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": benchmarks,
    }


# ---------------------------------------------------------------------------
# BENCH_SIM.json emit / compare
# ---------------------------------------------------------------------------
def write_bench_file(report: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")


def load_bench_file(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def compare_benchmarks(old: dict, new: dict) -> list[dict]:
    """Per-benchmark ratio of new/old throughput (by matching name).

    Returns one row per benchmark present in ``new``; ``ratio`` is None
    when the old report lacks that benchmark (or measured a different
    workload size, which would make the ratio meaningless to threshold).
    """
    old_by_name = {b["name"]: b for b in old.get("benchmarks", [])}
    comparable = old.get("quick") == new.get("quick")
    rows = []
    for bench in new.get("benchmarks", []):
        prev = old_by_name.get(bench["name"])
        ratio = None
        if prev and comparable and prev.get("value"):
            ratio = bench["value"] / prev["value"]
        rows.append(
            {
                "name": bench["name"],
                "metric": bench["metric"],
                "old": prev.get("value") if prev else None,
                "new": bench["value"],
                "ratio": round(ratio, 3) if ratio is not None else None,
            }
        )
    return rows


def attach_baseline(report: dict, baseline: dict) -> None:
    """Embed a fixed reference measurement and per-benchmark speedups.

    ``baseline`` holds ``values`` (name -> throughput) measured once on
    some reference revision — e.g. the pre-optimization event loop — and
    a ``description`` saying what that revision was.  It is carried
    forward verbatim by ``repro perf --json`` so the speedup column
    survives report rewrites.  Speedups are only attached when the
    workloads match (same ``quick`` flag).
    """
    report["pre_pr_baseline"] = baseline
    if baseline.get("quick") != report.get("quick"):
        return
    values = baseline.get("values", {})
    for bench in report["benchmarks"]:
        ref = values.get(bench["name"])
        if ref:
            bench["speedup_vs_pre_pr"] = round(bench["value"] / ref, 2)


def render_report(report: dict, comparison: list[dict] | None = None) -> str:
    """Human-readable table of a report, optionally with old/new ratios."""
    lines = [
        f"simulator microbenchmarks  (python {report['python']}, "
        f"{'quick' if report['quick'] else 'full'} workloads, best of {report['repeat']})"
    ]
    ratio_by_name = {c["name"]: c for c in comparison or []}
    for bench in report["benchmarks"]:
        line = f"  {bench['name']:<26} {bench['value']:>12,.0f} {bench['metric']}"
        if "ops_per_s" in bench:
            line += f"  ({bench['ops_per_s']:,.0f} ops/s)"
        if "speedup_vs_pre_pr" in bench:
            line += f"  [{bench['speedup_vs_pre_pr']:.2f}x vs pre-PR]"
        cmp_row = ratio_by_name.get(bench["name"])
        if cmp_row and cmp_row["ratio"] is not None:
            line += f"  [{cmp_row['ratio']:.2f}x vs previous]"
        lines.append(line)
    return "\n".join(lines)

"""Run an experiment under cProfile and report the hot frames.

``python -m repro profile E6 --top 20`` answers "where does the wall
clock go" for any registered experiment — the tool that guided the
simulator hot-path optimization and should guide the next one.
"""

from __future__ import annotations

import cProfile
import io
import pstats

VALID_SORTS = ("tottime", "cumulative", "ncalls")


def profile_experiment(
    name: str,
    quick: bool = True,
    seed: int | None = None,
    sort: str = "tottime",
    top: int = 25,
):
    """Profile one experiment run; returns ``(result, stats_text)``.

    ``name`` is an experiment key like ``"E6"`` (see
    ``repro.harness.experiments.ALL_EXPERIMENTS``).  ``sort`` is a
    pstats sort key: ``tottime`` shows the hot frames themselves,
    ``cumulative`` shows which subsystems the time flows through.
    """
    # Lazy import: keeps `repro.perf` importable without the full stack.
    from repro.harness.experiments import ALL_EXPERIMENTS

    key = name.upper()
    if key not in ALL_EXPERIMENTS:
        known = ", ".join(sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:])))
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    if sort not in VALID_SORTS:
        raise ValueError(f"sort must be one of {VALID_SORTS}, got {sort!r}")

    kwargs: dict = {"quick": quick}
    if seed is not None:
        kwargs["seed"] = seed

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = ALL_EXPERIMENTS[key](**kwargs)
    finally:
        profiler.disable()

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(sort).print_stats(top)
    return result, buf.getvalue()

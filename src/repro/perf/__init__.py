"""Wall-clock performance layer for the simulation core.

The simulator's speed is what bounds every experiment's scale, so it is
measured like any other system property:

- :mod:`repro.perf.microbench` — microbenchmarks for raw event
  throughput, network send/deliver, and end-to-end ops/sec, plus the
  ``BENCH_SIM.json`` emitter that tracks the trajectory across PRs.
- :mod:`repro.perf.profile` — run any experiment under ``cProfile`` and
  report the hot frames (``python -m repro profile E6``).

Unlike everything else in this repository, these numbers are *not*
deterministic — they measure the host.  The microbenchmarks fix seeds so
the simulated work is identical run to run; only the wall-clock varies.
"""

from repro.perf.microbench import (
    BENCH_FILENAME,
    compare_benchmarks,
    load_bench_file,
    run_microbenchmarks,
    write_bench_file,
)
from repro.perf.profile import profile_experiment

__all__ = [
    "BENCH_FILENAME",
    "compare_benchmarks",
    "load_bench_file",
    "profile_experiment",
    "run_microbenchmarks",
    "write_bench_file",
]

"""Reproduction of "Scalable consistency in Scatter" (SOSP 2011).

Scatter is a scalable, self-organizing, *linearizable* distributed
key-value store: a DHT whose ring positions are held by Paxos groups
rather than individual nodes, restructured by distributed transactions
whose participants are themselves replicated.

Most users want one of:

- :class:`repro.dht.system.ScatterSystem` — build a deployment in the
  simulator (``ScatterSystem.build(sim, net, n_nodes, n_groups)``).
- :class:`repro.dht.client.ScatterClient` — linearizable get/put/cas.
- :mod:`repro.harness.experiments` — the paper's evaluation, E1–E20.
- :mod:`repro.obs` — operation-level tracing of any run
  (``python -m repro trace e05``); see docs/OBSERVABILITY.md.
- ``python -m repro`` — the command-line interface over all of it.

See README.md for the tour, docs/ARCHITECTURE.md for the module map,
and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Continuous invariant evaluation over a running simulation.

The monitor samples the invariant registry on a fixed virtual-time
cadence.  It is strictly an observer: it draws no random numbers, sends
no messages, and mutates no protocol state, so attaching it cannot
perturb a run (guarded by tests/test_check_invariants.py).

Invariants in ``EVENTUAL_INVARIANTS`` (ring coverage) are allowed legal
transients — a split's commit reaches replicas one apply at a time — so
they only count as violated after ``persist`` consecutive failing
samples, and each such episode is reported once.
"""

from __future__ import annotations

from repro.check.invariants import (
    CONTINUOUS_INVARIANTS,
    EVENTUAL_INVARIANTS,
    InvariantViolation,
    check_replication_floor,
)
from repro.sim.loop import Simulator

MAX_VIOLATIONS = 50  # stop accumulating past this; the first is what matters


class InvariantMonitor:
    def __init__(
        self,
        sim: Simulator,
        system,
        interval: float = 0.25,
        persist: int = 5,
        repair_floor: int | None = None,
    ) -> None:
        self.sim = sim
        self.system = system
        self.interval = interval
        self.persist = persist
        # When set, stop() evaluates the quiescent replication-floor
        # invariant once against this floor (runs with repair enabled).
        self.repair_floor = repair_floor
        self.violations: list[InvariantViolation] = []
        self.samples = 0
        self._streaks: dict[str, int] = {name: 0 for name in EVENTUAL_INVARIANTS}
        self._reported: set[str] = set()
        self._running = False

    def start(self) -> None:
        self._running = True
        self.sim.schedule_fire(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False
        if self.repair_floor is not None:
            problems = check_replication_floor(self.system, self.repair_floor)
            if problems:
                self._record("replication-floor", problems)

    @property
    def ok(self) -> bool:
        return not self.violations

    def _record(self, name: str, problems: list[str]) -> None:
        for detail in problems:
            if len(self.violations) >= MAX_VIOLATIONS:
                return
            self.violations.append(
                InvariantViolation(invariant=name, time=round(self.sim.now, 9), detail=detail)
            )

    def _tick(self) -> None:
        if not self._running:
            return
        self.samples += 1
        for name, fn in CONTINUOUS_INVARIANTS.items():
            problems = fn(self.system)
            if problems:
                self._record(name, problems)
        for name, fn in EVENTUAL_INVARIANTS.items():
            problems = fn(self.system)
            if problems:
                self._streaks[name] += 1
                if self._streaks[name] == self.persist and name not in self._reported:
                    self._reported.add(name)
                    self._record(name, problems)
            else:
                self._streaks[name] = 0
                self._reported.discard(name)
        if self._running and len(self.violations) < MAX_VIOLATIONS:
            self.sim.schedule_fire(self.interval, self._tick)

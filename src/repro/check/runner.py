"""Executes one fuzz plan deterministically and classifies the outcome.

``run_plan`` builds a fresh deployment from the plan's seed, plays the
scripted workload while the fault schedule runs and the invariant
monitor samples, heals, drains, and finally checks per-key
linearizability of the complete client history.  Everything the run
does is a pure function of the plan (plus the optional demo bug), so
the shrinker and ``--replay`` re-execute it byte-identically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any

from repro.analysis.linearizability import check_history
from repro.check.demo import demo_bug
from repro.check.monitor import InvariantMonitor
from repro.check.plan import FuzzPlan
from repro.check.schedule import ScheduleRunner
from repro.check.workload import ScriptedWorkload
from repro.dht.client import ClientConfig, ScatterClient
from repro.dht.system import ScatterSystem
from repro.faults.target import FaultTarget
from repro.harness.builders import EXPERIMENT_PAXOS, experiment_scatter_config
from repro.policies import ScatterPolicy
from repro.sim.latency import LogNormalLatency
from repro.sim.loop import Simulator, _stable_hash
from repro.sim.network import SimNetwork
from repro.storage.disk import StorageConfig

_HEX_ADDR = re.compile(r"0x[0-9a-fA-F]+")


def _sanitize(text: str) -> str:
    """Strip memory addresses so failure details are run-independent."""
    return _HEX_ADDR.sub("0x?", text)


@dataclass(frozen=True)
class FailureSummary:
    """What went wrong, in plan-reproducible terms."""

    kind: str  # "invariant" | "linearizability" | "exception"
    name: str  # invariant name / violation kind / exception type
    detail: str
    time: float

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "detail": self.detail, "time": self.time}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "FailureSummary":
        return FailureSummary(data["kind"], data["name"], data["detail"], data["time"])


@dataclass
class FuzzOutcome:
    plan: FuzzPlan
    failure: FailureSummary | None
    violations: list
    ops_total: int
    ops_completed: int
    events: int
    history_digest: int

    @property
    def failed(self) -> bool:
        return self.failure is not None


def _history_digest(records: list) -> int:
    parts = [
        f"{r.op}|{r.key}|{r.invoke_time:.9f}|{r.response_time:.9f}|{r.hops}|{r.attempts}"
        for r in records
    ]
    return _stable_hash(";".join(parts))


def run_plan(plan: FuzzPlan, bug: str | None = None) -> FuzzOutcome:
    with demo_bug(bug):
        sim = Simulator(seed=plan.sim_seed)
        net = SimNetwork(sim, latency=LogNormalLatency(0.004, 0.4))
        size = plan.group_size
        policy = ScatterPolicy(
            target_size=size,
            split_size=2 * size + 1,
            merge_size=max(1, size - 2),
            repair=plan.repair,
        )
        system = ScatterSystem.build(
            sim,
            net,
            n_nodes=plan.n_nodes,
            n_groups=plan.n_groups,
            config=experiment_scatter_config(
                paxos=replace(
                    EXPERIMENT_PAXOS,
                    batch=plan.batching,
                    pipeline_depth=plan.pipeline_depth,
                    accept_coalescing=plan.accept_coalescing,
                    follower_reads=plan.follower_reads,
                ),
                storage=(
                    StorageConfig(fsync_coalesce=plan.fsync_coalesce)
                    if plan.storage
                    else None
                ),
            ),
            policy=policy,
        )
        # Follower-read plans route Gets round-robin across members so the
        # scripted workload actually exercises the follower serve path.
        client_config = (
            ClientConfig(read_routing="round_robin") if plan.follower_reads else None
        )
        clients = [
            ScatterClient(
                f"c{i}",
                sim,
                net,
                seed_provider=system.alive_node_ids,
                config=client_config,
            )
            for i in range(plan.n_clients)
        ]
        target = FaultTarget.for_system(system)
        has_loss = any(e.kind == "node_loss" for e in plan.schedule)
        monitor = InvariantMonitor(
            sim,
            system,
            repair_floor=size if (plan.repair and has_loss) else None,
        )
        workload = ScriptedWorkload(sim, clients, plan.ops)
        schedule = ScheduleRunner(sim, system, target, plan.schedule)

        failure: FailureSummary | None = None
        sim.run_for(plan.warmup)
        monitor.start()
        workload.start()
        schedule.start()
        try:
            sim.run_for(plan.duration)
            schedule.stop()
            sim.run_for(plan.drain)
        except Exception as exc:  # a protocol assertion tripped mid-run
            failure = FailureSummary(
                kind="exception",
                name=type(exc).__name__,
                detail=_sanitize(str(exc)),
                time=round(sim.now, 9),
            )
            try:
                schedule.stop()
            except Exception:
                pass
        monitor.stop()

        records = workload.all_records()
        violations = list(monitor.violations)
        if failure is None and violations:
            first = violations[0]
            failure = FailureSummary(
                kind="invariant",
                name=first.invariant,
                detail=first.detail,
                time=first.time,
            )
        if failure is None:
            result = check_history(records)
            if not result.ok:
                first = result.violations[0]
                failure = FailureSummary(
                    kind="linearizability",
                    name=first.kind,
                    detail=f"key {first.key}: {_sanitize(first.detail)}",
                    time=round(first.time, 9),
                )

        return FuzzOutcome(
            plan=plan,
            failure=failure,
            violations=violations,
            ops_total=len(plan.ops),
            ops_completed=sum(1 for r in records if r.completed),
            events=sim.events_processed,
            history_digest=_history_digest(records),
        )

"""Intentionally-buggy modes that prove the fuzzer has teeth.

A fuzzer that has never found a bug is indistinguishable from one that
cannot.  Each demo bug weakens one load-bearing line of the protocol for
the duration of a ``with`` block:

- ``quorum-off-by-one`` weakens the Paxos quorum from ``n//2 + 1`` to
  ``max(1, n//2)`` — a minority "quorum", the classic off-by-one.  Under
  partitions this lets both sides elect leaders and choose conflicting
  values, which the invariant registry (log divergence, duplicate
  leases) and the linearizability checker then catch.
- ``forgotten-promise`` makes the acceptor *claim* its promise hit the
  WAL without ever appending it — acks still go out after a plausible
  fsync delay, but a power failure reveals the promise was never
  durable, so a restarted acceptor can promise backwards.  The
  ``acceptor-durability`` invariant catches the renege at recovery
  time.  Only bites on plans with the storage model enabled and at
  least one crash.
- ``repair-race`` races the repair path against its own serialization:
  instead of coordinating the pull-in migrate as a 2PC with the donor,
  the fragile group "just adds" the spare to its own membership with a
  raw config command.  The donor never releases the node and the spare
  never receives a welcome or state, so the group's *roster* says it is
  healed while its *live replication* stays degraded.  The quiescent
  ``replication-floor`` invariant counts attending replicas, not roster
  lines, and catches it.  Only bites on plans with a ``node_loss``
  fault (the only plans where the floor is asserted).
- ``stale-follower-read`` skips the follower's conflict-window check:
  a granted follower serves any Get locally the moment its applied
  prefix covers the advertised frontier, without checking the
  in-flight write set or its own accepted-but-unapplied window.  A Get
  racing a Put on the same key can then return the old value *after*
  the Put was acknowledged elsewhere — a stale read the per-key
  linearizability checker flags.  Only bites on plans with
  ``follower_reads`` enabled (about half of sampled plans).

The patch is applied at class level inside the context manager and
always restored, so production code paths never see it; nothing outside
``repro.check`` imports this module.  The CI canary asserts the fuzzer
finds and shrinks these within a bounded iteration budget.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.consensus.commands import Command
from repro.consensus.replica import PaxosReplica
from repro.dht.scatter import ScatterNode

DEMO_BUGS = (
    "quorum-off-by-one",
    "forgotten-promise",
    "repair-race",
    "stale-follower-read",
)


def _buggy_majority(self) -> int:
    return max(1, len(self.members) // 2)


def _forgotten_promise(self, ballot) -> bool:
    return True  # "sure, it's on disk" — without touching the WAL


def _raced_repair_migrate(self, replica, node, donor):
    # "Why bother with the 2PC?  The spare is right there."  The roster
    # gains a member; the donor keeps it too, and nobody ships state.
    replica.paxos.propose(Command.config("add", node))
    return "committed"
    yield  # unreachable — keeps this a generator like the original


def _skip_conflict_window(self, key) -> bool:
    return True  # "the prefix covers the frontier, what could be in flight?"


# name -> (class, attribute, replacement)
_PATCHES = {
    "quorum-off-by-one": (PaxosReplica, "_majority", _buggy_majority),
    "forgotten-promise": (PaxosReplica, "_persist_promise", _forgotten_promise),
    "repair-race": (ScatterNode, "_repair_migrate_proc", _raced_repair_migrate),
    "stale-follower-read": (PaxosReplica, "_fr_conflict_free", _skip_conflict_window),
}


@contextmanager
def demo_bug(name: str | None):
    """Activate the named demo bug for the duration of the block."""
    if name is None:
        yield
        return
    if name not in DEMO_BUGS:
        raise ValueError(f"unknown demo bug {name!r}; known: {', '.join(DEMO_BUGS)}")
    cls, attr, replacement = _PATCHES[name]
    original = getattr(cls, attr)
    setattr(cls, attr, replacement)
    try:
        yield
    finally:
        setattr(cls, attr, original)

"""Intentionally-buggy modes that prove the fuzzer has teeth.

A fuzzer that has never found a bug is indistinguishable from one that
cannot.  Each demo bug weakens one load-bearing line of the protocol for
the duration of a ``with`` block:

- ``quorum-off-by-one`` weakens the Paxos quorum from ``n//2 + 1`` to
  ``max(1, n//2)`` — a minority "quorum", the classic off-by-one.  Under
  partitions this lets both sides elect leaders and choose conflicting
  values, which the invariant registry (log divergence, duplicate
  leases) and the linearizability checker then catch.
- ``forgotten-promise`` makes the acceptor *claim* its promise hit the
  WAL without ever appending it — acks still go out after a plausible
  fsync delay, but a power failure reveals the promise was never
  durable, so a restarted acceptor can promise backwards.  The
  ``acceptor-durability`` invariant catches the renege at recovery
  time.  Only bites on plans with the storage model enabled and at
  least one crash.

The patch is applied at class level inside the context manager and
always restored, so production code paths never see it; nothing outside
``repro.check`` imports this module.  The CI canary asserts the fuzzer
finds and shrinks these within a bounded iteration budget.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.consensus.replica import PaxosReplica

DEMO_BUGS = ("quorum-off-by-one", "forgotten-promise")


def _buggy_majority(self) -> int:
    return max(1, len(self.members) // 2)


def _forgotten_promise(self, ballot) -> bool:
    return True  # "sure, it's on disk" — without touching the WAL


@contextmanager
def demo_bug(name: str | None):
    """Activate the named demo bug for the duration of the block."""
    if name is None:
        yield
        return
    if name not in DEMO_BUGS:
        raise ValueError(f"unknown demo bug {name!r}; known: {', '.join(DEMO_BUGS)}")
    if name == "quorum-off-by-one":
        original = PaxosReplica._majority
        PaxosReplica._majority = _buggy_majority
        try:
            yield
        finally:
            PaxosReplica._majority = original
    else:  # forgotten-promise
        original = PaxosReplica._persist_promise
        PaxosReplica._persist_promise = _forgotten_promise
        try:
            yield
        finally:
            PaxosReplica._persist_promise = original

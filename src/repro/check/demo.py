"""Intentionally-buggy modes that prove the fuzzer has teeth.

A fuzzer that has never found a bug is indistinguishable from one that
cannot.  ``demo_bug("quorum-off-by-one")`` weakens the Paxos quorum from
``n//2 + 1`` to ``max(1, n//2)`` — a minority "quorum", the classic
off-by-one — for the duration of a ``with`` block.  Under partitions
this lets both sides elect leaders and choose conflicting values, which
the invariant registry (log divergence, duplicate leases) and the
linearizability checker then catch.  The CI canary asserts the fuzzer
finds and shrinks this within a bounded iteration budget.

The patch is applied at class level inside the context manager and
always restored, so production code paths never see it; nothing outside
``repro.check`` imports this module.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.consensus.replica import PaxosReplica

DEMO_BUGS = ("quorum-off-by-one",)


def _buggy_majority(self) -> int:
    return max(1, len(self.members) // 2)


@contextmanager
def demo_bug(name: str | None):
    """Activate the named demo bug for the duration of the block."""
    if name is None:
        yield
        return
    if name not in DEMO_BUGS:
        raise ValueError(f"unknown demo bug {name!r}; known: {', '.join(DEMO_BUGS)}")
    original = PaxosReplica._majority
    PaxosReplica._majority = _buggy_majority
    try:
        yield
    finally:
        PaxosReplica._majority = original

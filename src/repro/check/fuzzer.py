"""The fuzz loop: sample → run → (on failure) shrink → write repro.

Iteration seeds derive from the master seed by stable hash, so a fuzz
campaign is fully described by ``(master_seed, n_iterations)``: the same
pair always visits the same plans in the same order and reaches the
same verdict.  Wall-clock time only decides *when to stop* in
``--minutes`` mode — it never influences what any iteration does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.check.plan import FuzzPlan, sample_plan
from repro.check.repro_file import dump_repro, repro_dict
from repro.check.runner import FailureSummary, FuzzOutcome, run_plan
from repro.check.shrink import shrink_plan


@dataclass
class FuzzConfig:
    master_seed: int = 1
    iterations: int = 25
    minutes: float | None = None  # wall-clock budget; overrides iterations
    bug: str | None = None
    out_dir: str = "."
    shrink: bool = True
    max_shrink_runs: int = 150
    progress: Callable[[str], None] | None = None


@dataclass
class FuzzSummary:
    master_seed: int
    iterations_run: int = 0
    found: bool = False
    failure: FailureSummary | None = None
    failing_iteration: int | None = None
    repro_path: str | None = None
    shrink: dict[str, Any] = field(default_factory=dict)
    ops_total: int = 0
    events_total: int = 0
    wall_seconds: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "master_seed": self.master_seed,
            "iterations_run": self.iterations_run,
            "found": self.found,
            "failure": self.failure.to_dict() if self.failure else None,
            "failing_iteration": self.failing_iteration,
            "repro_path": self.repro_path,
            "shrink": self.shrink,
            "ops_total": self.ops_total,
            "events_total": self.events_total,
            "wall_seconds": round(self.wall_seconds, 2),
        }


def _describe(plan: FuzzPlan, outcome: FuzzOutcome) -> str:
    verdict = "FAIL" if outcome.failed else "ok"
    note = f" [{outcome.failure.kind}:{outcome.failure.name}]" if outcome.failed else ""
    return (
        f"iter {plan.iteration} seed={plan.sim_seed} nodes={plan.n_nodes} "
        f"groups={plan.n_groups} faults={len(plan.schedule)} ops={len(plan.ops)} "
        f"completed={outcome.ops_completed} -> {verdict}{note}"
    )


def run_fuzz(config: FuzzConfig) -> FuzzSummary:
    """Run a fuzz campaign; stop at the first failure (after shrinking it)."""
    say = config.progress or (lambda _line: None)
    summary = FuzzSummary(master_seed=config.master_seed)
    started = time.monotonic()
    iteration = 0
    while True:
        if config.minutes is not None:
            if time.monotonic() - started >= config.minutes * 60.0:
                break
        elif iteration >= config.iterations:
            break

        plan = sample_plan(config.master_seed, iteration)
        outcome = run_plan(plan, bug=config.bug)
        summary.iterations_run += 1
        summary.ops_total += outcome.ops_total
        summary.events_total += outcome.events
        say(_describe(plan, outcome))

        if outcome.failed:
            _finalize_failure(config, summary, iteration, plan, outcome, say)
            break

        iteration += 1

    summary.wall_seconds = time.monotonic() - started
    return summary


def _finalize_failure(
    config: FuzzConfig,
    summary: FuzzSummary,
    iteration: int,
    plan: FuzzPlan,
    outcome: FuzzOutcome,
    say: Callable[[str], None],
) -> None:
    """Shrink a failing plan and write its repro file into ``summary``.

    Shared by the serial loop and the sharded runner so a campaign's
    verdict — failure summary, shrink stats, repro file contents — is
    identical however the iterations were scheduled.
    """
    summary.found = True
    summary.failing_iteration = iteration
    final_plan, failure = plan, outcome.failure
    if config.shrink:
        say(
            f"shrinking: {len(plan.schedule)} faults, {len(plan.ops)} ops "
            f"(budget {config.max_shrink_runs} runs)"
        )

        def still_fails(candidate: FuzzPlan) -> bool:
            return run_plan(candidate, bug=config.bug).failed

        final_plan, stats = shrink_plan(
            plan, still_fails, max_runs=config.max_shrink_runs
        )
        failure = run_plan(final_plan, bug=config.bug).failure or outcome.failure
        summary.shrink = stats.to_dict()
        say(
            f"shrunk to {len(final_plan.schedule)} faults, "
            f"{len(final_plan.ops)} ops in {stats.runs} runs"
        )
    summary.failure = failure
    out_dir = Path(config.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"repro-{plan.sim_seed}.json"
    dump_repro(
        repro_dict(final_plan, failure, config.bug, shrink=summary.shrink), path
    )
    summary.repro_path = str(path)
    say(f"wrote {path}")


def _fuzz_shard(args: tuple[int, tuple[int, ...], str | None]) -> dict[str, Any]:
    """Worker entry point: run a strided subset of iterations, no shrinking.

    Plans derive purely from ``(master_seed, iteration)``, so running a
    subset in a different process changes nothing about what any
    iteration does.  Stops at the shard's first failure; the parent
    takes the minimum failing iteration across shards — which is by
    construction the iteration the serial loop would have stopped at —
    and re-runs only that one locally to shrink and write the repro.
    """
    master_seed, iterations, bug = args
    tally: dict[str, Any] = {
        "failing_iteration": None,
        "iterations_run": 0,
        "ops_total": 0,
        "events_total": 0,
    }
    for iteration in iterations:
        plan = sample_plan(master_seed, iteration)
        outcome = run_plan(plan, bug=bug)
        tally["iterations_run"] += 1
        tally["ops_total"] += outcome.ops_total
        tally["events_total"] += outcome.events
        if outcome.failed:
            tally["failing_iteration"] = iteration
            break
    return tally


def run_fuzz_sharded(config: FuzzConfig, workers: int) -> FuzzSummary:
    """Shard a fixed-iteration campaign across worker processes.

    Worker ``w`` of ``N`` scans iterations ``w, w+N, w+2N, ...`` in
    order.  The merged verdict — found / failing iteration / failure /
    repro file — equals the serial campaign's, because the minimum
    failing iteration over all shards is exactly the first failing
    iteration overall.  Only the bookkeeping differs: shards keep
    running until their own first failure, so ``iterations_run`` /
    ``ops_total`` may exceed the serial campaign's (which stops at the
    global first failure).  Wall-clock budgets (``minutes``) are
    inherently schedule-dependent, so they stay on the serial path.
    """
    if workers <= 1 or config.minutes is not None:
        return run_fuzz(config)
    say = config.progress or (lambda _line: None)
    summary = FuzzSummary(master_seed=config.master_seed)
    started = time.monotonic()
    shards = [
        (config.master_seed, tuple(range(w, config.iterations, workers)), config.bug)
        for w in range(workers)
        if range(w, config.iterations, workers)
    ]
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor

    from repro.harness.sweep import _ensure_child_pythonpath

    _ensure_child_pythonpath()
    ctx = mp.get_context("spawn")
    with ProcessPoolExecutor(max_workers=len(shards), mp_context=ctx) as pool:
        tallies = list(pool.map(_fuzz_shard, shards))
    for tally in tallies:
        summary.iterations_run += tally["iterations_run"]
        summary.ops_total += tally["ops_total"]
        summary.events_total += tally["events_total"]
    failing = [t["failing_iteration"] for t in tallies if t["failing_iteration"] is not None]
    if failing:
        iteration = min(failing)
        plan = sample_plan(config.master_seed, iteration)
        outcome = run_plan(plan, bug=config.bug)
        say(_describe(plan, outcome))
        _finalize_failure(config, summary, iteration, plan, outcome, say)
    summary.wall_seconds = time.monotonic() - started
    return summary


def replay(data: dict[str, Any]) -> tuple[bool, FailureSummary | None, FailureSummary]:
    """Re-execute a loaded repro file.

    Returns (reproduced, observed_failure, recorded_failure): reproduced
    means the run failed again with the same kind and name.
    """
    from repro.check.repro_file import failure_of, plan_of

    plan = plan_of(data)
    recorded = failure_of(data)
    outcome = run_plan(plan, bug=data.get("demo_bug"))
    observed = outcome.failure
    reproduced = (
        observed is not None
        and observed.kind == recorded.kind
        and observed.name == recorded.name
    )
    return reproduced, observed, recorded

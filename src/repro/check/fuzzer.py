"""The fuzz loop: sample → run → (on failure) shrink → write repro.

Iteration seeds derive from the master seed by stable hash, so a fuzz
campaign is fully described by ``(master_seed, n_iterations)``: the same
pair always visits the same plans in the same order and reaches the
same verdict.  Wall-clock time only decides *when to stop* in
``--minutes`` mode — it never influences what any iteration does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.check.plan import FuzzPlan, sample_plan
from repro.check.repro_file import dump_repro, repro_dict
from repro.check.runner import FailureSummary, FuzzOutcome, run_plan
from repro.check.shrink import shrink_plan


@dataclass
class FuzzConfig:
    master_seed: int = 1
    iterations: int = 25
    minutes: float | None = None  # wall-clock budget; overrides iterations
    bug: str | None = None
    out_dir: str = "."
    shrink: bool = True
    max_shrink_runs: int = 150
    progress: Callable[[str], None] | None = None


@dataclass
class FuzzSummary:
    master_seed: int
    iterations_run: int = 0
    found: bool = False
    failure: FailureSummary | None = None
    failing_iteration: int | None = None
    repro_path: str | None = None
    shrink: dict[str, Any] = field(default_factory=dict)
    ops_total: int = 0
    events_total: int = 0
    wall_seconds: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "master_seed": self.master_seed,
            "iterations_run": self.iterations_run,
            "found": self.found,
            "failure": self.failure.to_dict() if self.failure else None,
            "failing_iteration": self.failing_iteration,
            "repro_path": self.repro_path,
            "shrink": self.shrink,
            "ops_total": self.ops_total,
            "events_total": self.events_total,
            "wall_seconds": round(self.wall_seconds, 2),
        }


def _describe(plan: FuzzPlan, outcome: FuzzOutcome) -> str:
    verdict = "FAIL" if outcome.failed else "ok"
    note = f" [{outcome.failure.kind}:{outcome.failure.name}]" if outcome.failed else ""
    return (
        f"iter {plan.iteration} seed={plan.sim_seed} nodes={plan.n_nodes} "
        f"groups={plan.n_groups} faults={len(plan.schedule)} ops={len(plan.ops)} "
        f"completed={outcome.ops_completed} -> {verdict}{note}"
    )


def run_fuzz(config: FuzzConfig) -> FuzzSummary:
    """Run a fuzz campaign; stop at the first failure (after shrinking it)."""
    say = config.progress or (lambda _line: None)
    summary = FuzzSummary(master_seed=config.master_seed)
    started = time.monotonic()
    iteration = 0
    while True:
        if config.minutes is not None:
            if time.monotonic() - started >= config.minutes * 60.0:
                break
        elif iteration >= config.iterations:
            break

        plan = sample_plan(config.master_seed, iteration)
        outcome = run_plan(plan, bug=config.bug)
        summary.iterations_run += 1
        summary.ops_total += outcome.ops_total
        summary.events_total += outcome.events
        say(_describe(plan, outcome))

        if outcome.failed:
            summary.found = True
            summary.failing_iteration = iteration
            final_plan, failure = plan, outcome.failure
            if config.shrink:
                say(
                    f"shrinking: {len(plan.schedule)} faults, {len(plan.ops)} ops "
                    f"(budget {config.max_shrink_runs} runs)"
                )

                def still_fails(candidate: FuzzPlan) -> bool:
                    return run_plan(candidate, bug=config.bug).failed

                final_plan, stats = shrink_plan(
                    plan, still_fails, max_runs=config.max_shrink_runs
                )
                failure = run_plan(final_plan, bug=config.bug).failure or outcome.failure
                summary.shrink = stats.to_dict()
                say(
                    f"shrunk to {len(final_plan.schedule)} faults, "
                    f"{len(final_plan.ops)} ops in {stats.runs} runs"
                )
            summary.failure = failure
            out_dir = Path(config.out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / f"repro-{plan.sim_seed}.json"
            dump_repro(
                repro_dict(final_plan, failure, config.bug, shrink=summary.shrink), path
            )
            summary.repro_path = str(path)
            say(f"wrote {path}")
            break

        iteration += 1

    summary.wall_seconds = time.monotonic() - started
    return summary


def replay(data: dict[str, Any]) -> tuple[bool, FailureSummary | None, FailureSummary]:
    """Re-execute a loaded repro file.

    Returns (reproduced, observed_failure, recorded_failure): reproduced
    means the run failed again with the same kind and name.
    """
    from repro.check.repro_file import failure_of, plan_of

    plan = plan_of(data)
    recorded = failure_of(data)
    outcome = run_plan(plan, bug=data.get("demo_bug"))
    observed = outcome.failure
    reproduced = (
        observed is not None
        and observed.kind == recorded.kind
        and observed.name == recorded.name
    )
    return reproduced, observed, recorded

"""Delta-debugging shrinker for failing fuzz plans.

Classic ddmin (Zeller & Hildebrandt) over a list: try dropping chunks,
keep any reduction that still fails, refine chunk granularity until
nothing can be removed.  Applied first to the fault schedule, then to
the client ops, so a failing iteration reduces to the few faults and
operations that actually matter.  Because runs are deterministic, a
reduction that fails once fails always — no flaky shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.check.plan import FuzzPlan


@dataclass
class ShrinkStats:
    runs: int = 0
    schedule_before: int = 0
    schedule_after: int = 0
    ops_before: int = 0
    ops_after: int = 0

    def to_dict(self) -> dict:
        return {
            "runs": self.runs,
            "schedule_before": self.schedule_before,
            "schedule_after": self.schedule_after,
            "ops_before": self.ops_before,
            "ops_after": self.ops_after,
        }


def _ddmin(items: list, still_fails: Callable[[list], bool], budget: list[int]) -> list:
    """Minimize ``items`` under ``still_fails``; ``budget`` caps test runs."""
    n = 2
    while len(items) >= 2 and budget[0] > 0:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            if budget[0] <= 0:
                return items
            candidate = items[:start] + items[start + chunk:]
            if not candidate:
                continue
            budget[0] -= 1
            if still_fails(candidate):
                items = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            n = min(len(items), n * 2)
    # Final singleton sweep: try the empty list too (a failure may need
    # no faults at all, e.g. a workload-only linearizability bug).
    if items and budget[0] > 0:
        budget[0] -= 1
        if still_fails([]):
            return []
    return items


def shrink_plan(
    plan: FuzzPlan,
    fails: Callable[[FuzzPlan], bool],
    max_runs: int = 150,
) -> tuple[FuzzPlan, ShrinkStats]:
    """Return a minimized plan that still fails, plus shrink statistics.

    ``fails`` re-executes a candidate plan and reports whether the
    failure persists (any failure counts: once a run is off the rails,
    the most-reduced reproducer is the useful artifact).
    """
    stats = ShrinkStats(
        schedule_before=len(plan.schedule),
        ops_before=len(plan.ops),
    )
    budget = [max_runs]

    def counted(candidate: FuzzPlan) -> bool:
        stats.runs += 1
        return fails(candidate)

    schedule = _ddmin(
        list(plan.schedule),
        lambda entries: counted(plan.with_schedule(entries)),
        budget,
    )
    plan = plan.with_schedule(schedule)

    ops = _ddmin(
        list(plan.ops),
        lambda entries: counted(plan.with_ops(entries)),
        budget,
    )
    plan = plan.with_ops(ops)

    stats.schedule_after = len(plan.schedule)
    stats.ops_after = len(plan.ops)
    return plan, stats

"""Executes a plan's fault schedule against a live deployment.

Each :class:`~repro.check.plan.FaultEntry` is applied at its offset from
the fault-window start and healed ``duration`` later; :meth:`stop` heals
everything still outstanding (restarts down nodes, unblocks links,
clears slowdowns, restores loss/dup baselines), Jepsen-style, so the
post-fault drain always runs on a healthy network.

All primitives come from :class:`repro.faults.target.FaultTarget` and
:class:`repro.sim.network.SimNetwork`; entries reference nodes by name
and are resolved at fire time, so the same schedule data can be re-run
(or shrunk and re-run) deterministically.
"""

from __future__ import annotations

from typing import Sequence

from repro.check.plan import FaultEntry
from repro.faults.target import FaultTarget
from repro.sim.loop import Simulator


class ScheduleRunner:
    def __init__(
        self,
        sim: Simulator,
        system,
        target: FaultTarget,
        schedule: Sequence[FaultEntry],
    ) -> None:
        self.sim = sim
        self.system = system
        self.target = target
        self.schedule = list(schedule)
        self.applied: list[str] = []  # human-readable fault log
        self._base_drop = target.net.drop_prob
        self._base_dup = target.net.dup_prob
        self._active_drops: list[float] = []
        self._active_dups: list[float] = []
        self._stopped = False

    def start(self) -> None:
        for entry in self.schedule:
            self.sim.schedule_fire(entry.time, self._apply, entry)

    def stop(self) -> None:
        """Heal every outstanding fault; later heal events become no-ops."""
        self._stopped = True
        net = self.target.net
        net.heal()
        net.clear_slowdowns()
        self._active_drops.clear()
        self._active_dups.clear()
        net.drop_prob = self._base_drop
        net.dup_prob = self._base_dup
        self.target.clear_disk_faults()
        for node_id in self.target.down_ids():
            self.target.restart(node_id)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def _apply(self, entry: FaultEntry) -> None:
        if self._stopped:
            return
        handler = getattr(self, f"_apply_{entry.kind}")
        handler(entry)
        self.applied.append(f"{entry.time:.3f} {entry.kind}")

    def _apply_crash(self, entry: FaultEntry) -> None:
        node = entry.params["node"]
        if self.target.crash(node):
            self.sim.schedule_fire(entry.duration, self.target.restart, node)

    def _apply_partition(self, entry: FaultEntry) -> None:
        known = set(self.target.node_ids())
        side = [n for n in entry.params["side"] if n in known]
        rest = sorted(known.difference(side))
        if not side or not rest:
            return
        self.target.net.partition(set(side), set(rest))
        self.sim.schedule_fire(entry.duration, self._heal_partition, side, rest)

    def _heal_partition(self, side: list[str], rest: list[str]) -> None:
        if self._stopped:
            return
        for a in side:
            for b in rest:
                self.target.net.unblock(a, b)

    def _apply_oneway(self, entry: FaultEntry) -> None:
        victim = entry.params["node"]
        peers = [n for n in self.target.node_ids() if n != victim]
        if entry.params["mode"] == "inbound":
            self.target.net.isolate_inbound(victim, peers)
            blocked = [(peer, victim) for peer in peers]
        else:
            self.target.net.isolate_outbound(victim, peers)
            blocked = [(victim, peer) for peer in peers]
        self.sim.schedule_fire(entry.duration, self._heal_oneway, blocked)

    def _heal_oneway(self, blocked: list[tuple[str, str]]) -> None:
        if self._stopped:
            return
        for src, dst in blocked:
            self.target.net.unblock_one_way(src, dst)

    def _apply_gray(self, entry: FaultEntry) -> None:
        victim = entry.params["node"]
        peers = [n for n in self.target.node_ids() if n != victim]
        self.target.net.set_node_slowdown(victim, entry.params["factor"], peers)
        self.sim.schedule_fire(entry.duration, self._heal_gray, victim, peers)

    def _heal_gray(self, victim: str, peers: list[str]) -> None:
        if self._stopped:
            return
        self.target.net.set_node_slowdown(victim, 1.0, peers)

    def _apply_drop(self, entry: FaultEntry) -> None:
        prob = entry.params["prob"]
        self._active_drops.append(prob)
        self.target.net.drop_prob = max([self._base_drop, *self._active_drops])
        self.sim.schedule_fire(entry.duration, self._pop_drop, prob)

    def _pop_drop(self, prob: float) -> None:
        if self._stopped:
            return
        if prob in self._active_drops:
            self._active_drops.remove(prob)
        self.target.net.drop_prob = max([self._base_drop, *self._active_drops])

    def _apply_dup(self, entry: FaultEntry) -> None:
        prob = entry.params["prob"]
        self._active_dups.append(prob)
        self.target.net.dup_prob = max([self._base_dup, *self._active_dups])
        self.sim.schedule_fire(entry.duration, self._pop_dup, prob)

    def _pop_dup(self, prob: float) -> None:
        if self._stopped:
            return
        if prob in self._active_dups:
            self._active_dups.remove(prob)
        self.target.net.dup_prob = max([self._base_dup, *self._active_dups])

    # ------------------------- disk faults ----------------------------
    # All of these are no-ops when the deployment has no storage model
    # (FaultTarget's disk primitives return False on disk-less nodes).
    def _apply_disk_io(self, entry: FaultEntry) -> None:
        node = entry.params["node"]
        if self.target.set_disk_io_error(node, True):
            self.sim.schedule_fire(entry.duration, self._heal_disk_io, node)

    def _heal_disk_io(self, node: str) -> None:
        if self._stopped:
            return
        self.target.set_disk_io_error(node, False)

    def _apply_disk_slow(self, entry: FaultEntry) -> None:
        node = entry.params["node"]
        if self.target.set_fsync_factor(node, entry.params["factor"]):
            self.sim.schedule_fire(entry.duration, self._heal_disk_slow, node)

    def _heal_disk_slow(self, node: str) -> None:
        if self._stopped:
            return
        self.target.set_fsync_factor(node, 1.0)

    def _apply_disk_corrupt(self, entry: FaultEntry) -> None:
        """Crash, corrupt a durable WAL tail, restart: recovery detects
        the checksum failure and the node rejoins amnesiac."""
        node = entry.params["node"]
        if self.target.crash(node):
            self.target.corrupt_wal_tail(node, entry.params["records"])
            self.sim.schedule_fire(entry.duration, self.target.restart, node)

    def _apply_disk_loss(self, entry: FaultEntry) -> None:
        """Crash with total disk loss: the node rejoins amnesiac."""
        node = entry.params["node"]
        if self.target.crash(node):
            self.target.lose_disk(node)
            self.sim.schedule_fire(entry.duration, self.target.restart, node)

    def _apply_node_loss(self, entry: FaultEntry) -> None:
        """Permanent failure: no heal event is scheduled, and stop()'s
        restart sweep skips lost nodes (FaultTarget refuses to revive
        them), so the loss outlives the fault window by design."""
        self.target.node_loss(entry.params["node"])

    def _apply_group_op(self, entry: FaultEntry) -> None:
        gids = sorted(self.system.active_groups())
        if not gids:
            return
        gid = gids[entry.params["index"] % len(gids)]
        leader = self.system.leader_of(gid)
        if leader is None:
            return
        if entry.params["op"] == "split":
            future = leader.host.start_split(leader)
        else:
            future = leader.host.start_merge(leader)
        # The op may legitimately fail (bad split key, frozen neighbor);
        # consume the exception so it isn't re-raised at GC time.
        future.add_callback(lambda f: f.exception)

"""Fuzz plans: the complete, serializable input of one fuzz iteration.

A plan pins everything a run depends on — deployment shape, simulator
seed, a *scripted* client workload, and an explicit fault schedule — so
that (a) the same plan always reproduces the same run byte-for-byte,
(b) the shrinker can delete schedule entries / ops and re-run, and
(c) a failing plan can be written to a ``repro-<seed>.json`` file and
replayed later with ``python -m repro fuzz --replay``.

Randomness is confined to :func:`sample_plan`: once sampled, a plan is
pure data and its execution draws no fuzzer-level random numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any

from repro.sim.loop import _stable_hash

PLAN_FORMAT = "repro.check/1"

# Fault kinds a schedule entry may carry (documented in docs/TESTING.md).
# The disk_* kinds need the storage model (plan.storage) to bite; without
# it they are applied as no-ops.
FAULT_KINDS = (
    "crash",
    "partition",
    "oneway",
    "gray",
    "drop",
    "dup",
    "group_op",
    "disk_io",
    "disk_slow",
    "disk_corrupt",
    "disk_loss",
    "node_loss",
)

# At most this many amnesia-inducing faults (disk_corrupt / disk_loss)
# per plan: each one turns a voter into a learner for a while, and two
# in one small group can legitimately stall it for the whole window.
MAX_AMNESIA_FAULTS = 1

# At most this many permanent node losses per plan: losing two voters of
# a three-member group kills its quorum for good, which is a legitimate
# outcome but not one repair can be expected to fix.
MAX_NODE_LOSS_FAULTS = 1

# Extra post-schedule drain for plans that contain a node_loss entry:
# repair needs quiescent time to detect the loss and run a migrate or
# merge before the replication-floor invariant is evaluated.
NODE_LOSS_EXTRA_DRAIN = 6.0


@dataclass(frozen=True)
class FaultEntry:
    """One scheduled fault: applied at ``time``, healed ``duration`` later.

    ``time`` is an offset from the start of the fault window (after
    warmup).  ``params`` is kind-specific plain data — node names, sides,
    probabilities — never live objects, so entries serialize cleanly.
    """

    time: float
    kind: str
    duration: float
    params: dict[str, Any]


@dataclass(frozen=True)
class OpEntry:
    """One scripted client operation.

    ``op_id`` is assigned at sampling time and survives shrinking, so a
    put's value (``c<client>#<op_id>``) is stable no matter which other
    ops the shrinker deletes around it.
    """

    op_id: int
    client: int
    kind: str  # "get" | "put"
    key: int
    think: float  # pause before issuing, seconds


@dataclass(frozen=True)
class FuzzPlan:
    """Everything one fuzz iteration needs, as pure data."""

    master_seed: int
    iteration: int
    sim_seed: int
    n_groups: int
    group_size: int
    n_clients: int
    warmup: float
    duration: float
    drain: float
    schedule: tuple[FaultEntry, ...]
    ops: tuple[OpEntry, ...]
    # Run with the durable-storage model (WAL + snapshots + real crash
    # recovery).  Sampled plans enable it; old repro files without the
    # field deserialize to False and replay exactly as recorded.
    storage: bool = False
    # Run with the self-healing repair policy enabled (leaders detect
    # permanently lost members and migrate/merge to restore replication).
    # Sampled plans enable it; old repro files deserialize to False and
    # replay exactly as recorded.
    repair: bool = False
    # Write-path throughput knobs (slot batching, pipeline flow control,
    # accept coalescing, WAL group commit).  Sampled plans randomize them
    # so acceptor-durability polices fsync coalescing under disk faults
    # and power failures; old repro files deserialize to the historical
    # defaults and replay exactly as recorded.
    batching: bool = False
    pipeline_depth: int = 0
    accept_coalescing: bool = False
    fsync_coalesce: float = 0.0
    # Scale-out read path: linearizable follower reads plus round-robin
    # client read routing.  Sampled plans flip it on about half the
    # time so the fuzzer polices the grant/quorum-expansion protocol
    # under every fault kind; old repro files deserialize to False and
    # replay exactly as recorded.
    follower_reads: bool = False

    @property
    def n_nodes(self) -> int:
        return self.n_groups * self.group_size

    def with_schedule(self, schedule) -> "FuzzPlan":
        return replace(self, schedule=tuple(schedule))

    def with_ops(self, ops) -> "FuzzPlan":
        return replace(self, ops=tuple(ops))


def iteration_seed(master_seed: int, iteration: int) -> int:
    """Derive iteration ``i``'s seed from the master seed (stable hash)."""
    return _stable_hash(f"fuzz:{master_seed}:{iteration}") & 0x7FFFFFFF


def _r(value: float) -> float:
    return round(value, 6)


def _sample_fault(rng: random.Random, node_names: list[str], duration: float) -> FaultEntry:
    time = _r(rng.uniform(0.3, max(0.4, duration - 1.0)))
    kind = rng.choices(
        FAULT_KINDS,
        weights=(24, 16, 10, 10, 7, 7, 12, 5, 5, 2, 2, 4),
    )[0]
    if kind == "crash":
        return FaultEntry(
            time,
            kind,
            _r(rng.uniform(0.5, 3.0)),
            {"node": rng.choice(node_names)},
        )
    if kind == "partition":
        k = rng.randint(1, max(1, len(node_names) // 2))
        side = sorted(rng.sample(node_names, k))
        return FaultEntry(time, kind, _r(rng.uniform(0.8, 2.5)), {"side": side})
    if kind == "oneway":
        return FaultEntry(
            time,
            kind,
            _r(rng.uniform(0.8, 2.0)),
            {"node": rng.choice(node_names), "mode": rng.choice(["inbound", "outbound"])},
        )
    if kind == "gray":
        return FaultEntry(
            time,
            kind,
            _r(rng.uniform(1.0, 3.0)),
            {"node": rng.choice(node_names), "factor": _r(rng.uniform(8.0, 30.0))},
        )
    if kind == "drop":
        return FaultEntry(
            time, kind, _r(rng.uniform(0.5, 1.5)), {"prob": _r(rng.uniform(0.15, 0.45))}
        )
    if kind == "dup":
        return FaultEntry(
            time, kind, _r(rng.uniform(0.8, 2.0)), {"prob": _r(rng.uniform(0.15, 0.4))}
        )
    if kind == "disk_io":
        return FaultEntry(
            time,
            kind,
            _r(rng.uniform(0.5, 2.0)),
            {"node": rng.choice(node_names)},
        )
    if kind == "disk_slow":
        return FaultEntry(
            time,
            kind,
            _r(rng.uniform(1.0, 3.0)),
            {"node": rng.choice(node_names), "factor": _r(rng.uniform(10.0, 100.0))},
        )
    if kind == "disk_corrupt":
        # Crash, corrupt a tail of the durable WAL, restart after
        # `duration`: recovery detects the bad checksum and takes the
        # amnesia path.
        return FaultEntry(
            time,
            kind,
            _r(rng.uniform(0.5, 2.0)),
            {"node": rng.choice(node_names), "records": rng.randint(1, 8)},
        )
    if kind == "disk_loss":
        return FaultEntry(
            time,
            kind,
            _r(rng.uniform(0.5, 2.0)),
            {"node": rng.choice(node_names)},
        )
    if kind == "node_loss":
        # Permanent: fire early so repair has the rest of the window plus
        # the drain to detect the loss and restore replication.
        return FaultEntry(
            _r(rng.uniform(0.3, 3.0)),
            kind,
            0.0,
            {"node": rng.choice(node_names)},
        )
    # group_op: force a split or merge on whichever group is at `index`
    # (mod the live group count) when the entry fires.
    return FaultEntry(
        time,
        "group_op",
        0.0,
        {"op": rng.choice(["split", "merge"]), "index": rng.randrange(8)},
    )


def sample_plan(master_seed: int, iteration: int) -> FuzzPlan:
    """Sample iteration ``i``'s plan — deployment, workload, faults."""
    seed = iteration_seed(master_seed, iteration)
    rng = random.Random(seed)

    n_groups = rng.randint(2, 4)
    group_size = rng.choice([3, 3, 5])
    n_clients = rng.randint(2, 3)
    duration = _r(rng.uniform(8.0, 14.0))
    node_names = [f"s{i}" for i in range(n_groups * group_size)]

    n_faults = rng.randint(3, 10)
    sampled = [_sample_fault(rng, node_names, duration) for _ in range(n_faults)]
    # Cap amnesia-inducing faults: demote extras to plain crashes so the
    # plan keeps an entry (and its timing) without wiping a second voter.
    # node_loss is capped the same way: extras become transient crashes.
    amnesia_kinds = ("disk_corrupt", "disk_loss")
    seen_amnesia = 0
    seen_loss = 0
    capped = []
    for entry in sampled:
        if entry.kind in amnesia_kinds:
            seen_amnesia += 1
            if seen_amnesia > MAX_AMNESIA_FAULTS:
                entry = FaultEntry(
                    entry.time, "crash", entry.duration, {"node": entry.params["node"]}
                )
        elif entry.kind == "node_loss":
            seen_loss += 1
            if seen_loss > MAX_NODE_LOSS_FAULTS:
                entry = FaultEntry(
                    entry.time, "crash", 1.5, {"node": entry.params["node"]}
                )
        capped.append(entry)
    schedule = sorted(capped, key=lambda e: (e.time, e.kind))
    has_loss = any(e.kind == "node_loss" for e in schedule)

    key_space = rng.choice([8, 16, 32])
    read_fraction = rng.uniform(0.35, 0.65)
    ops: list[OpEntry] = []
    op_id = 0
    per_client = max(10, int(duration / 0.12))
    for client in range(n_clients):
        for _ in range(per_client):
            kind = "get" if rng.random() < read_fraction else "put"
            ops.append(
                OpEntry(
                    op_id=op_id,
                    client=client,
                    kind=kind,
                    key=rng.randrange(key_space),
                    think=_r(rng.uniform(0.02, 0.15)),
                )
            )
            op_id += 1

    # Write-path knobs come from a *separate* RNG stream derived from the
    # same seed, so adding them did not shift any draw above — existing
    # plans (and the canary-bug seeds that depend on their exact
    # schedules) are unchanged.
    wp = random.Random(_stable_hash(f"writepath:{seed}"))
    batching = wp.random() < 0.5
    pipeline_depth = wp.choice([0, 0, 2, 4, 8])
    accept_coalescing = wp.random() < 0.5
    fsync_coalesce = wp.choice([0.0, 0.0, 0.001, 0.002, 0.005])

    # Same trick for the read-path knob: its own derived stream, so the
    # write-path draws above (and every existing plan) are unchanged.
    fr = random.Random(_stable_hash(f"followerreads:{seed}"))
    follower_reads = fr.random() < 0.5

    return FuzzPlan(
        master_seed=master_seed,
        iteration=iteration,
        sim_seed=seed,
        n_groups=n_groups,
        group_size=group_size,
        n_clients=n_clients,
        warmup=3.0,
        duration=duration,
        drain=6.0 + (NODE_LOSS_EXTRA_DRAIN if has_loss else 0.0),
        schedule=tuple(schedule),
        ops=tuple(ops),
        storage=True,
        repair=True,
        batching=batching,
        pipeline_depth=pipeline_depth,
        accept_coalescing=accept_coalescing,
        fsync_coalesce=fsync_coalesce,
        follower_reads=follower_reads,
    )


# ---------------------------------------------------------------------------
# Serialization (used by repro files; JSON-stable)
# ---------------------------------------------------------------------------
def plan_to_dict(plan: FuzzPlan) -> dict[str, Any]:
    return {
        "master_seed": plan.master_seed,
        "iteration": plan.iteration,
        "sim_seed": plan.sim_seed,
        "n_groups": plan.n_groups,
        "group_size": plan.group_size,
        "n_clients": plan.n_clients,
        "warmup": plan.warmup,
        "duration": plan.duration,
        "drain": plan.drain,
        "schedule": [
            {"time": e.time, "kind": e.kind, "duration": e.duration, "params": e.params}
            for e in plan.schedule
        ],
        "ops": [[o.op_id, o.client, o.kind, o.key, o.think] for o in plan.ops],
        "storage": plan.storage,
        "repair": plan.repair,
        "batching": plan.batching,
        "pipeline_depth": plan.pipeline_depth,
        "accept_coalescing": plan.accept_coalescing,
        "fsync_coalesce": plan.fsync_coalesce,
        "follower_reads": plan.follower_reads,
    }


def plan_from_dict(data: dict[str, Any]) -> FuzzPlan:
    schedule = tuple(
        FaultEntry(e["time"], e["kind"], e["duration"], dict(e["params"]))
        for e in data["schedule"]
    )
    ops = tuple(OpEntry(*entry) for entry in data["ops"])
    return FuzzPlan(
        master_seed=data["master_seed"],
        iteration=data["iteration"],
        sim_seed=data["sim_seed"],
        n_groups=data["n_groups"],
        group_size=data["group_size"],
        n_clients=data["n_clients"],
        warmup=data["warmup"],
        duration=data["duration"],
        drain=data["drain"],
        schedule=schedule,
        ops=ops,
        storage=data.get("storage", False),
        repair=data.get("repair", False),
        batching=data.get("batching", False),
        pipeline_depth=data.get("pipeline_depth", 0),
        accept_coalescing=data.get("accept_coalescing", False),
        fsync_coalesce=data.get("fsync_coalesce", 0.0),
        follower_reads=data.get("follower_reads", False),
    )

"""Repro files: a failing fuzz iteration as a self-contained JSON file.

``repro-<seed>.json`` carries the full (shrunk) plan, the demo-bug mode
it ran under, and the failure it produced.  Serialization is canonical
(sorted keys, fixed indent, no wall-clock timestamps), so the same
failure always produces byte-identical files — which is what lets the
determinism test compare them directly and lets ``--replay`` assert the
failure reproduces exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.check.plan import PLAN_FORMAT, FuzzPlan, plan_from_dict, plan_to_dict
from repro.check.runner import FailureSummary


def repro_dict(
    plan: FuzzPlan,
    failure: FailureSummary,
    bug: str | None,
    shrink: dict[str, Any] | None = None,
) -> dict[str, Any]:
    return {
        "format": PLAN_FORMAT,
        "demo_bug": bug,
        "failure": failure.to_dict(),
        "plan": plan_to_dict(plan),
        "shrink": shrink or {},
    }


def dump_repro(data: dict[str, Any], path: str | Path) -> None:
    Path(path).write_text(json.dumps(data, sort_keys=True, indent=2) + "\n")


def repro_bytes(data: dict[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, indent=2) + "\n"


def load_repro(path: str | Path) -> dict[str, Any]:
    data = json.loads(Path(path).read_text())
    if data.get("format") != PLAN_FORMAT:
        raise ValueError(
            f"unsupported repro format {data.get('format')!r}; expected {PLAN_FORMAT}"
        )
    return data


def plan_of(data: dict[str, Any]) -> FuzzPlan:
    return plan_from_dict(data["plan"])


def failure_of(data: dict[str, Any]) -> FailureSummary:
    return FailureSummary.from_dict(data["failure"])

"""The invariant registry: safety properties checked during fuzzing.

Each invariant is a pure read-only function over a live
:class:`~repro.dht.system.ScatterSystem`; it returns a list of
human-readable problem strings (empty = holds).  The registry maps a
stable invariant name to its checker, and the
:class:`~repro.check.monitor.InvariantMonitor` evaluates the registry on
a fixed cadence while a fuzz run executes.

The catalog (see docs/TESTING.md for the full write-up):

- ``leader-exclusivity`` — at most one Paxos leader per group per
  ballot, and at most one live lease per group at any instant.
- ``log-agreement`` — live replicas of a group never disagree on a
  chosen value in their overlapping committed windows (prefix
  agreement; compared over a bounded tail).
- ``txn-atomicity`` — at-most-once 2PC: no replica applies the same
  transaction twice, and no transaction is observed both committed and
  aborted anywhere in the system.
- ``ring-coverage`` — active groups partition the key space with no
  gaps or overlaps.  Split/merge commits propagate replica-by-replica,
  so a transient overlap is legal; the monitor only reports this one
  when it persists across several consecutive samples.
- ``acceptor-durability`` — a replica never reneges on a promise or
  accepted value it acked before a crash.  Breaches are detected
  deterministically during recovery (the replica compares its recovered
  state against the ack-time ledger and records any gap in
  ``storage.reneged``) and double-checked live against the ledger.
  Only meaningful on runs with the storage model enabled.
- ``group-ring-structure`` — every group's successor/predecessor
  pointers name the groups that actually own the adjacent arcs, so the
  group ring is connected and ordered.  Pointer updates propagate with
  the same legal transients as coverage, so this is an eventual
  invariant too.
- ``replication-floor`` — once the network is healed and repair has had
  time to run, no group sits below the policy's repair floor in live,
  attending members.  Evaluated once at monitor stop (quiescent-only),
  and only on runs with repair enabled.

:func:`check_chord_ring` is the Chord-side ring-structure check (Zave's
correctness conditions for successor lists); the fuzzer drives Scatter
deployments only, so it lives here for tests and experiments rather
than in a registry.

End-of-run per-key linearizability of the client history is checked by
the runner (it needs the complete history), not by this registry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dht.ring import KEY_SPACE
from repro.group.replica import GroupStatus
from repro.storage.disk import command_label
from repro.txn.spec import decisions_conflict


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation, timestamped with virtual time."""

    invariant: str
    time: float
    detail: str


def _live_replicas(system):
    """Yield (node_name, gid, replica) for live, non-retired replicas."""
    for name in sorted(system.nodes):
        node = system.nodes[name]
        if not node.alive:
            continue
        for gid in sorted(node.groups):
            replica = node.groups[gid]
            if replica.paxos.retired or replica.status is GroupStatus.RETIRED:
                continue
            yield name, gid, replica


def check_leader_exclusivity(system) -> list[str]:
    problems: list[str] = []
    leaders: dict[str, list[tuple[str, dict]]] = {}
    for name, gid, replica in _live_replicas(system):
        view = replica.paxos.leadership_view()
        if view["is_leader"]:
            leaders.setdefault(gid, []).append((name, view))
    for gid in sorted(leaders):
        by_ballot: dict[tuple, list[str]] = {}
        for name, view in leaders[gid]:
            by_ballot.setdefault(view["ballot"], []).append(name)
        for ballot in sorted(by_ballot):
            names = by_ballot[ballot]
            if len(names) > 1:
                problems.append(
                    f"{gid}: {len(names)} leaders at ballot {ballot}: {','.join(names)}"
                )
        leased = sorted(name for name, view in leaders[gid] if view["lease_active"])
        if len(leased) > 1:
            problems.append(f"{gid}: {len(leased)} live leases: {','.join(leased)}")
    return problems


def _command_label(value) -> str:
    """Describe a log value without repr()ing payloads.

    Payloads can hold closures whose repr embeds memory addresses, which
    would make violation details (and hence repro files) nondeterministic.
    """
    kind = getattr(value, "kind", None)
    if kind is None:
        return type(value).__name__
    dedup = getattr(value, "dedup", None)
    return f"{kind}{dedup}" if dedup else str(kind)


def check_log_agreement(system, tail: int = 32) -> list[str]:
    problems: list[str] = []
    logs: dict[str, list[tuple[str, object]]] = {}
    for name, gid, replica in _live_replicas(system):
        logs.setdefault(gid, []).append((name, replica.paxos.log))
    for gid in sorted(logs):
        replicas = logs[gid]
        if len(replicas) < 2:
            continue
        ref_name, ref_log = replicas[0]
        ref_lo, ref_hi = ref_log.commit_window(tail)
        for other_name, other_log in replicas[1:]:
            oth_lo, oth_hi = other_log.commit_window(tail)
            lo, hi = max(ref_lo, oth_lo), min(ref_hi, oth_hi)
            for slot in range(lo, hi + 1):
                if not (ref_log.is_chosen(slot) and other_log.is_chosen(slot)):
                    continue
                a = ref_log.chosen_value(slot)
                b = other_log.chosen_value(slot)
                if a is not b and a != b:
                    problems.append(
                        f"{gid}: slot {slot} diverges: "
                        f"{ref_name}={_command_label(a)} vs {other_name}={_command_label(b)}"
                    )
                    break  # one slot per replica pair is enough signal
    return problems


def check_txn_atomicity(system) -> list[str]:
    problems: list[str] = []
    observed: dict[str, set[str]] = {}
    # Crashed nodes keep durable state, and a decision applied before a
    # crash still counts — scan every node, alive or not.
    for name in sorted(system.nodes):
        node = system.nodes[name]
        for gid in sorted(node.groups):
            replica = node.groups[gid]
            seen: set[tuple[str, str]] = set()
            for txn_id, decision in replica.txn_log:
                if (txn_id, decision) in seen:
                    problems.append(
                        f"{gid}@{name}: {decision} applied twice for {txn_id}"
                    )
                seen.add((txn_id, decision))
                observed.setdefault(txn_id, set()).add(decision)
    for txn_id in sorted(observed):
        if decisions_conflict(observed[txn_id]):
            problems.append(
                f"{txn_id}: conflicting decisions {sorted(observed[txn_id])}"
            )
    return problems


def authoritative_arcs(system) -> dict[str, tuple[int, int]]:
    """The committed group structure: gid -> (lo, hi) key arcs.

    A lagging replica (partitioned or freshly restarted) may still see a
    long-retired group as ACTIVE; that is a legal transient, not a ring
    violation.  So for each gid we take the *most-applied* replica's
    view across every node — alive or crashed, since durable state
    survives crashes — and treat a group as retired as soon as any
    replica has applied its retirement (retirement is a chosen log
    entry, so one sighting proves the decision).  A successor group
    whose members have not yet applied their creation is stood in for
    by its parent's forwarding info, which records the replacement
    arcs at retirement time.
    """
    views: dict[str, tuple[int, tuple[int, int]]] = {}
    retired: set[str] = set()
    forwarding: dict[str, tuple[int, int]] = {}
    for name in sorted(system.nodes):
        node = system.nodes[name]
        for gid in sorted(node.groups):
            replica = node.groups[gid]
            if replica.status is GroupStatus.RETIRED:
                retired.add(gid)
                for info in replica.forwarding:
                    forwarding.setdefault(info.gid, (info.range.lo, info.range.hi))
                continue
            if replica.paxos.retired:
                # This *member* was removed from the group; its view is
                # stale but the group itself lives on elsewhere.
                continue
            applied = replica.paxos.applied_index
            current = views.get(gid)
            if current is None or applied > current[0]:
                views[gid] = (applied, (replica.range.lo, replica.range.hi))
    arcs = {gid: arc for gid, (_, arc) in views.items() if gid not in retired}
    for gid, arc in forwarding.items():
        if gid not in arcs and gid not in retired:
            arcs[gid] = arc
    return arcs


def _structural_txn_in_flight(system) -> bool:
    """Is any group-operation 2PC still propagating?

    A split/merge/repartition changes ranges group-by-group as each
    participant applies its own log's commit, so the ring is legally
    untiled from the first apply until the last.  That window is exactly
    bounded by some replica still holding ``active_txn`` (prepared but
    not yet resolved) — so ring coverage is only asserted when no
    structural transaction is in flight anywhere.
    """
    for _name, _gid, replica in _live_replicas(system):
        if replica.active_txn is not None:
            return True
    return False


def check_ring_coverage(system) -> list[str]:
    if _structural_txn_in_flight(system):
        return []
    arcs = authoritative_arcs(system)
    if not arcs:
        return ["no active groups"]
    spans = sorted(arcs.values())
    if len(spans) == 1:
        lo, hi = spans[0]
        if lo != hi:
            return [f"single group covers [{lo},{hi}) — not the full ring"]
        return []
    total = 0
    for i, (lo, hi) in enumerate(spans):
        next_lo = spans[(i + 1) % len(spans)][0]
        if hi != next_lo:
            return [f"ring gap/overlap: arc ends at {hi} but next starts at {next_lo}"]
        total += (hi - lo) % KEY_SPACE or KEY_SPACE
    if total != KEY_SPACE:
        return [f"arcs wrap the ring more than once ({total} keys claimed)"]
    return []


def _most_applied_views(system):
    """gid -> the most-applied live, non-retired replica (freshest view)."""
    views: dict[str, tuple[int, object]] = {}
    for _name, gid, replica in _live_replicas(system):
        applied = replica.paxos.applied_index
        current = views.get(gid)
        if current is None or applied > current[0]:
            views[gid] = (applied, replica)
    return {gid: replica for gid, (_, replica) in views.items()}


def check_group_ring_structure(system) -> list[str]:
    """Group successor/predecessor pointers match the committed arcs.

    For each active group the most-applied replica's ``successor`` must
    name the group owning the arc that starts where ours ends, and
    ``predecessor`` the group owning the arc ending where ours starts.
    Gaps and overlaps themselves are ring-coverage's job; this check is
    about the *pointers* — a connected, ordered, non-overlapping
    successor structure.  Skipped while a structural 2PC is in flight
    (same legal transients as coverage).
    """
    if _structural_txn_in_flight(system):
        return []
    arcs = authoritative_arcs(system)
    if len(arcs) < 2:
        return []
    start_of = {lo: gid for gid, (lo, _hi) in arcs.items()}
    end_of = {hi: gid for gid, (_lo, hi) in arcs.items()}
    views = _most_applied_views(system)
    problems: list[str] = []
    for gid in sorted(arcs):
        replica = views.get(gid)
        if replica is None:
            continue  # forwarding stand-in; no live replica to inspect yet
        lo, hi = arcs[gid]
        expected_succ = start_of.get(hi)
        if expected_succ is not None and expected_succ != gid:
            succ = replica.successor
            if succ is None or succ.gid != expected_succ:
                problems.append(
                    f"{gid}: successor pointer "
                    f"{succ.gid if succ is not None else None} != {expected_succ}"
                )
        expected_pred = end_of.get(lo)
        if expected_pred is not None and expected_pred != gid:
            pred = replica.predecessor
            if pred is None or pred.gid != expected_pred:
                problems.append(
                    f"{gid}: predecessor pointer "
                    f"{pred.gid if pred is not None else None} != {expected_pred}"
                )
    return problems


def check_replication_floor(system, floor: int) -> list[str]:
    """No group below ``floor`` live, attending members (quiescent-only).

    Attending means the node is alive *and* hosts a live replica of the
    group — a member that never received its welcome (or lost its disk
    and state) does not count, so repair bugs that commit membership
    without delivering state are caught.  Sanctioned skips: a structural
    2PC still in flight (repair itself may be mid-run); a system whose
    total attending population is below the floor (no remedy can
    exist); and groups that have permanently lost quorum — a leaderless
    group can run no repair by design (consistency forbids it), so dead
    groups are the liveness watchdog's verdict, not this invariant's.
    """
    if _structural_txn_in_flight(system):
        return []
    if len(system.alive_node_ids()) < floor:
        return []
    attending: dict[str, int] = {}
    voting: dict[str, int] = {}
    for _name, gid, replica in _live_replicas(system):
        attending[gid] = attending.get(gid, 0) + 1
        # Amnesiac replicas (disk corruption survivors) cannot vote
        # until a leader catches them up — for election liveness they
        # might as well be gone.
        if not replica.paxos.amnesiac:
            voting[gid] = voting.get(gid, 0) + 1
    views = _most_applied_views(system)
    arcs = authoritative_arcs(system)
    for gid in arcs:
        replica = views.get(gid)
        members = len(replica.members) if replica is not None else 0
        if voting.get(gid, 0) < members // 2 + 1:
            # A group below quorum is dead for good — no leader, so no
            # repair, and every merge adjacent to it is blocked (its
            # prepare can never be acked).  Repair guarantees are off
            # for the whole ring at that point; the dead group itself
            # is the liveness watchdog's distinct verdict.
            return []
    problems: list[str] = []
    for gid in sorted(arcs):
        count = attending.get(gid, 0)
        if count < floor:
            problems.append(f"{gid}: {count} attending members < repair floor {floor}")
    return problems


def check_chord_ring(system) -> list[str]:
    """Zave-style ring-structure conditions for a ChordSystem.

    Each live node's successor list must be duplicate-free, exclude the
    node itself (in a multi-node ring), and be ordered by ring distance;
    and following first-live-successor pointers from any node must tour
    every live node exactly once.  Used by tests and E18 — the fuzzer's
    registries drive Scatter deployments.
    """
    from repro.dht.ring import hash_key

    alive = sorted(system.alive_node_ids())
    problems: list[str] = []
    for name in alive:
        node = system.nodes[name]
        succs = list(node.successors)
        if not succs:
            problems.append(f"{name}: empty successor list")
            continue
        if len(set(succs)) != len(succs):
            problems.append(f"{name}: duplicate successor entries {succs}")
        if len(alive) > 1 and name in succs:
            problems.append(f"{name}: lists itself as a successor")
        dists = [(hash_key(s) - hash_key(name)) % KEY_SPACE for s in succs]
        if dists != sorted(dists):
            problems.append(f"{name}: successor list out of ring order {succs}")
    if len(alive) > 1:
        alive_set = set(alive)
        visited = []
        current = alive[0]
        for _ in range(len(alive)):
            visited.append(current)
            node = system.nodes[current]
            nxt = next((s for s in node.successors if s in alive_set), None)
            if nxt is None:
                problems.append(f"{current}: no live successor")
                break
            current = nxt
        else:
            if current != alive[0] or len(set(visited)) != len(alive):
                missed = sorted(alive_set - set(visited))
                problems.append(
                    f"ring tour from {alive[0]} does not cover the ring "
                    f"(missed {missed}, ended at {current})"
                )
    return problems


def check_acceptor_durability(system) -> list[str]:
    """No replica reneges on a promise/accept it acked before a crash.

    Two sources of signal, both read-only:

    1. ``storage.reneged`` — breaches the replica itself detected
       deterministically at recovery time, by comparing its recovered
       state against the ack-time ledger.  This is the authoritative
       detector: live protocol traffic (heartbeats raising ``promised``)
       can mask a renege within one election timeout, long before the
       monitor's next sample.
    2. A live comparison of each replica's current state against the
       ledger, which additionally catches an acceptor that silently
       loses state *without* crashing.

    Replicas without a storage region, and amnesiac replicas (their
    learner rejoin is the sanctioned loss path — they stop acking and
    their ledger is cleared with the wipe), are skipped.
    """
    problems: list[str] = []
    # (1) recovery-time breach records, on every node dead or alive
    # (the details already name the replica and region).
    for name in sorted(system.nodes):
        disk = getattr(system.nodes[name], "disk", None)
        if disk is None:
            continue
        for gid in sorted(disk.regions):
            problems.extend(disk.regions[gid].reneged)
    # (2) live state vs ledger.
    for name, gid, replica in _live_replicas(system):
        paxos = replica.paxos
        storage = paxos.storage
        if storage is None or paxos.amnesiac or storage.amnesiac:
            continue
        if storage.acked_promise > paxos.promised:
            problems.append(
                f"{gid}@{name}: promised {paxos.promised} below acked "
                f"promise {storage.acked_promise}"
            )
        log = paxos.log
        for slot in sorted(storage.acked_accepts):
            if slot <= paxos.applied_index or slot < log.first_slot:
                continue
            ballot, label = storage.acked_accepts[slot]
            entry = log.get(slot)
            if entry is not None and (
                entry.chosen
                or (
                    entry.accepted_ballot is not None
                    and (
                        entry.accepted_ballot > ballot
                        or (
                            entry.accepted_ballot == ballot
                            and command_label(entry.accepted_value) == label
                        )
                    )
                )
            ):
                continue
            problems.append(
                f"{gid}@{name}: slot {slot} lost acked accept "
                f"({ballot}, {label})"
            )
    return problems


# Invariants safe to assert at every sample.
CONTINUOUS_INVARIANTS: dict[str, object] = {
    "leader-exclusivity": check_leader_exclusivity,
    "log-agreement": check_log_agreement,
    "txn-atomicity": check_txn_atomicity,
    "acceptor-durability": check_acceptor_durability,
}

# Invariants with legal transients; violated only if persistent.
EVENTUAL_INVARIANTS: dict[str, object] = {
    "ring-coverage": check_ring_coverage,
    "group-ring-structure": check_group_ring_structure,
}

# Invariants meaningful only once the run is quiescent (network healed,
# repair given time); evaluated once by InvariantMonitor.stop() on runs
# with repair enabled.  Checkers take (system, floor) — kept out of
# ALL_INVARIANTS, whose callers pass the system alone.
QUIESCENT_INVARIANTS: dict[str, object] = {
    "replication-floor": check_replication_floor,
}

ALL_INVARIANTS: dict[str, object] = {**CONTINUOUS_INVARIANTS, **EVENTUAL_INVARIANTS}

"""Scripted workload: replays a plan's op list exactly.

Unlike :class:`repro.workloads.driver.ClosedLoopWorkload`, which draws
keys and op kinds from an RNG stream as it runs, this driver executes a
pre-sampled list of :class:`repro.check.plan.OpEntry`.  That makes the
workload shrinkable — deleting an op from the plan deletes exactly that
op from the run — and keeps put values (``c<client>#<op_id>``) stable
under shrinking, so the linearizability checker's reads-from mapping
never shifts as the shrinker works.
"""

from __future__ import annotations

from typing import Sequence

from repro.check.plan import OpEntry
from repro.net.futures import Future, spawn
from repro.sim.loop import Simulator


class ScriptedWorkload:
    """Each client plays its slice of the plan's ops, one at a time."""

    def __init__(self, sim: Simulator, clients: list, ops: Sequence[OpEntry]) -> None:
        self.sim = sim
        self.clients = clients
        self._per_client: list[list[OpEntry]] = [[] for _ in clients]
        for op in ops:
            self._per_client[op.client % len(clients)].append(op)
        self.issued = 0
        self._done = 0

    def start(self) -> None:
        for idx, client in enumerate(self.clients):
            spawn(self.sim, self._run_client(client, self._per_client[idx]))

    @property
    def finished(self) -> bool:
        return self._done == len(self.clients)

    def _run_client(self, client, ops: list[OpEntry]):
        for op in ops:
            if op.think > 0:
                pause = Future()
                self.sim.schedule_fire(op.think, pause.set_result, None)
                yield pause
            if op.kind == "get":
                future = client.get(op.key)
            else:
                future = client.put(op.key, f"c{op.client}#{op.op_id}")
            self.issued += 1
            try:
                yield future
            except Exception:
                pass  # the OpRecord captures the failure; keep going
        self._done += 1

    def all_records(self) -> list:
        return [record for client in self.clients for record in client.records]

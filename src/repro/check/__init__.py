"""repro.check — deterministic-simulation fuzzing for Scatter.

Composes the seeded simulator (`repro.sim`), fault primitives
(`repro.faults`), and the linearizability checker (`repro.analysis`)
into an automated bug-finder: randomized deployments + scripted
workloads + mutated fault schedules, with a continuously-evaluated
invariant registry and a delta-debugging shrinker that reduces any
failure to a minimal, replayable ``repro-<seed>.json``.

Entry points: ``python -m repro fuzz`` (see `repro.cli`) or
:func:`repro.check.fuzzer.run_fuzz` programmatically.
"""

from repro.check.fuzzer import (
    FuzzConfig,
    FuzzSummary,
    replay,
    run_fuzz,
    run_fuzz_sharded,
)
from repro.check.invariants import (
    ALL_INVARIANTS,
    CONTINUOUS_INVARIANTS,
    EVENTUAL_INVARIANTS,
    QUIESCENT_INVARIANTS,
    InvariantViolation,
)
from repro.check.monitor import InvariantMonitor
from repro.check.plan import FaultEntry, FuzzPlan, OpEntry, iteration_seed, sample_plan
from repro.check.repro_file import dump_repro, load_repro, repro_bytes, repro_dict
from repro.check.runner import FailureSummary, FuzzOutcome, run_plan
from repro.check.shrink import ShrinkStats, shrink_plan

__all__ = [
    "ALL_INVARIANTS",
    "CONTINUOUS_INVARIANTS",
    "EVENTUAL_INVARIANTS",
    "FailureSummary",
    "FaultEntry",
    "FuzzConfig",
    "FuzzOutcome",
    "FuzzPlan",
    "FuzzSummary",
    "InvariantMonitor",
    "InvariantViolation",
    "OpEntry",
    "QUIESCENT_INVARIANTS",
    "ShrinkStats",
    "dump_repro",
    "iteration_seed",
    "load_repro",
    "repro_bytes",
    "repro_dict",
    "replay",
    "run_fuzz",
    "run_fuzz_sharded",
    "run_plan",
    "sample_plan",
    "shrink_plan",
]

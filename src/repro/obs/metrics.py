"""Counters and histograms for the tracing subsystem.

A :class:`MetricsRegistry` is the cheap half of ``repro.obs``: where a
span records one *interval*, a metric aggregates *many* events into a
single counter or distribution.  Instrumented layers use metrics for
anything that happens per message or per protocol tick (traffic by
type, retransmissions, heartbeats) and spans only for operations worth
attributing individually.

Everything here is plain arithmetic on Python ints/floats — no clock
access, no randomness, no scheduling — so registering metrics during a
simulation cannot perturb it.
"""

from __future__ import annotations


def _percentile(values: list[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100].

    Local copy of :func:`repro.analysis.stats.percentile`: this module
    must not import ``repro.analysis`` (whose ``__init__`` pulls in the
    simulator, which imports ``repro.obs`` — a cycle).
    """
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


class Histogram:
    """A recorded distribution of values (latencies, hops, sizes).

    Values are kept verbatim up to ``max_samples``; beyond that the
    histogram keeps counting and summing but stops storing, so the
    count/mean stay exact while the percentiles describe the first
    ``max_samples`` observations.  Tracing runs are short and opt-in, so
    the cap exists only as a memory backstop.
    """

    __slots__ = ("values", "count", "total", "max", "max_samples")

    def __init__(self, max_samples: int = 100_000) -> None:
        self.values: list[float] = []
        self.count = 0
        self.total = 0.0
        self.max = float("-inf")
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if len(self.values) < self.max_samples:
            self.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, p: float) -> float:
        return _percentile(self.values, p)

    def summary(self) -> dict:
        """JSON-ready digest: count, mean, p50, p99, max."""
        return {
            "count": self.count,
            "mean": self.mean if self.count else None,
            "p50": self.percentile(50) if self.values else None,
            "p99": self.percentile(99) if self.values else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named counters and histograms, created on first touch.

    Names are dotted ``<layer>.<what>`` strings (``net.sent``,
    ``paxos.accept_rounds``, ``client.hops``); docs/OBSERVABILITY.md
    lists every name the instrumentation emits.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name`` (creating it empty)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Histogram | None:
        return self.histograms.get(name)

    def ratio(self, numerator: str, denominator: str) -> float:
        """counters[numerator] / counters[denominator], NaN on empty."""
        denom = self.counters.get(denominator, 0)
        if denom == 0:
            return float("nan")
        return self.counters.get(numerator, 0) / denom

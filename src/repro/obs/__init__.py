"""Operation-level tracing and metrics for the simulator (`repro.obs`).

The harness's end-to-end numbers (``repro.harness.metrics``) say *how
long* operations took; this package says *where the time and messages
went*: routing hops per lookup, Paxos accept rounds per committed slot,
2PC phase latencies per group operation.  Two primitives:

- :class:`Tracer` records **spans** — (kind, start, end, attrs) intervals
  keyed on *simulated* time, with explicit parent links — into an
  in-memory list that :func:`repro.obs.export.write_jsonl` serializes.
- :class:`MetricsRegistry` (one per tracer, at ``tracer.metrics``)
  exposes **counters** and **histograms** for things too hot or too
  numerous to span: messages by type, retransmissions, leader changes,
  lease-read hit rates.

Tracing is **disabled by default** and costs one attribute load plus a
branch per instrumented call site when off (the ``if tracer:`` fast
path); see docs/OBSERVABILITY.md for the overhead guarantees and the
full span taxonomy.  Because spans record only simulated time and never
consume simulator randomness or schedule events, traces are
deterministic in (seed, configuration) and tracing cannot perturb
results — a guard test asserts byte-identical experiment rows with
tracing on, off, and absent.

Enable tracing ambiently (picked up by every :class:`~repro.sim.loop.Simulator`
constructed while installed)::

    from repro.obs import Tracer, tracing

    with tracing(Tracer()) as tracer:
        result = run_e05(quick=True)
    print(render_breakdown(tracer))

or from the command line: ``python -m repro trace e05``.
"""

from repro.obs.export import render_breakdown, write_jsonl
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.runtime import clear_tracer, current_tracer, install_tracer, tracing
from repro.obs.spans import (
    ALL_SPAN_KINDS,
    CLIENT_OP,
    GROUP_FREEZE,
    PAXOS_ELECTION,
    PAXOS_SLOT,
    TXN_COMMIT,
    TXN_NOTIFY,
    TXN_OP,
    TXN_PREPARE,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "ALL_SPAN_KINDS",
    "CLIENT_OP",
    "GROUP_FREEZE",
    "PAXOS_ELECTION",
    "PAXOS_SLOT",
    "TXN_COMMIT",
    "TXN_NOTIFY",
    "TXN_OP",
    "TXN_PREPARE",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "clear_tracer",
    "current_tracer",
    "install_tracer",
    "render_breakdown",
    "tracing",
    "write_jsonl",
]

"""Trace serialization (JSONL) and the per-phase cost breakdown report.

The JSONL schema (documented with examples in docs/OBSERVABILITY.md)
is one object per line, discriminated by ``type``:

- ``{"type": "span", "id": 7, "parent": 3, "kind": "txn.prepare",
  "run": 0, "start": 5.1032, "end": 5.1189, "attrs": {...}}`` — one
  span; ``end`` is null for spans still open when the run stopped.
- ``{"type": "counter", "name": "net.sent", "value": 81234}``
- ``{"type": "hist", "name": "client.hops", "count": 412,
  "mean": 1.9, "p50": 2.0, "p99": 5.0, "max": 7.0}``

Lines are emitted spans-first in span-id order, then counters and
histograms sorted by name, so identical runs serialize byte-identically
— the determinism tests diff the files directly.
"""

from __future__ import annotations

import json
import math
from typing import TextIO

from repro.obs.tracer import Span, Tracer


# ---------------------------------------------------------------------------
# JSONL export
# ---------------------------------------------------------------------------
def span_record(span: Span) -> dict:
    """The JSON object a span serializes to (schema above)."""
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "kind": span.kind,
        "run": span.run,
        "start": span.start,
        "end": span.end,
        "attrs": span.attrs,
    }


def dump_jsonl(tracer: Tracer, out: TextIO) -> int:
    """Write the trace to ``out``; returns the number of lines written."""
    lines = 0
    for span in tracer.spans:
        json.dump(span_record(span), out, default=str, sort_keys=True)
        out.write("\n")
        lines += 1
    for name in sorted(tracer.metrics.counters):
        json.dump(
            {"type": "counter", "name": name, "value": tracer.metrics.counters[name]},
            out,
            sort_keys=True,
        )
        out.write("\n")
        lines += 1
    for name in sorted(tracer.metrics.histograms):
        record = {"type": "hist", "name": name}
        record.update(tracer.metrics.histograms[name].summary())
        json.dump(record, out, default=str, sort_keys=True)
        out.write("\n")
        lines += 1
    return lines


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write the trace to ``path``; returns the number of lines written."""
    with open(path, "w", encoding="utf-8") as out:
        return dump_jsonl(tracer, out)


# ---------------------------------------------------------------------------
# Per-phase cost breakdown
# ---------------------------------------------------------------------------
def _ms(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{1000 * value:.1f} ms"


def _num(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if isinstance(value, int) or float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:.2f}"


def _span_durations(spans: list[Span]) -> list[float]:
    return [s.duration for s in spans if not s.open]


def _pct(numer: float, denom: float) -> str:
    if not denom:
        return "-"
    return f"{100 * numer / denom:.1f}%"


def render_breakdown(tracer: Tracer) -> str:
    """Human-readable per-phase cost attribution from one traced run.

    Sections mirror the layers a client operation crosses: client
    routing (hops), the network (messages by type), Paxos (accept
    rounds, elections, quorum latency), and 2PC group operations (phase
    latencies per operation kind).  Sections with no recorded activity
    still print, showing zeros — a trace of a client-free experiment
    legitimately has no ``client.op`` spans.
    """
    from repro.analysis.stats import percentile

    m = tracer.metrics
    lines: list[str] = []
    title = "Per-phase cost attribution"
    lines += [title, "=" * len(title)]

    # ---- client routing --------------------------------------------------
    ops = m.counter("client.ops")
    hops = m.histogram("client.hops")
    attempts = m.histogram("client.attempts")
    lines.append("")
    lines.append("client operations (routing)")
    lines.append(f"  ops traced:        {_num(ops)}")
    if hops is not None and hops.count:
        lines.append(
            f"  hops/op:           mean {hops.mean:.2f}  p50 {_num(hops.percentile(50))}"
            f"  p99 {_num(hops.percentile(99))}"
        )
    else:
        lines.append("  hops/op:           - (no client ops in this experiment)")
    if attempts is not None and attempts.count:
        lines.append(f"  attempts/op:       mean {attempts.mean:.2f}")
    lines.append(f"  rpc timeouts:      {_num(m.counter('client.rpc_failures'))}")
    op_spans = [s for s in tracer.spans_of("client.op") if not s.open]
    if op_spans:
        durations = _span_durations(op_spans)
        lines.append(
            f"  op latency:        p50 {_ms(percentile(durations, 50))}"
            f"  p99 {_ms(percentile(durations, 99))}"
        )

    # ---- network ---------------------------------------------------------
    lines.append("")
    lines.append("network")
    sent = m.counter("net.sent")
    lines.append(
        f"  messages:          sent {_num(sent)}  delivered {_num(m.counter('net.delivered'))}"
        f"  dropped {_num(m.counter('net.dropped'))}  to-dead {_num(m.counter('net.to_dead'))}"
        f"  duplicated {_num(m.counter('net.duplicated'))}"
    )
    by_type = sorted(
        ((name[len("net.msg."):], count) for name, count in m.counters.items()
         if name.startswith("net.msg.")),
        key=lambda item: (-item[1], item[0]),
    )
    for name, count in by_type[:8]:
        lines.append(f"    {name:<18} {_num(count):>10}  ({_pct(count, sent)})")
    if ops:
        lines.append(f"  msgs/client-op:    {sent / ops:.1f} (all protocol traffic)")

    # ---- paxos -----------------------------------------------------------
    lines.append("")
    lines.append("paxos (per-group consensus)")
    rounds = m.counter("paxos.accept_rounds")
    chosen = m.counter("paxos.slots_chosen")
    lines.append(
        f"  accept rounds:     {_num(rounds)}  slots chosen {_num(chosen)}"
        f"  rounds/slot {_num(rounds / chosen) if chosen else '-'}"
    )
    lines.append(
        f"  retransmissions:   {_num(m.counter('paxos.retransmissions'))}"
        f"  heartbeat rounds {_num(m.counter('paxos.heartbeats'))}"
    )
    elections = tracer.spans_of("paxos.election")
    won = sum(1 for s in elections if s.attrs.get("outcome") == "won")
    lines.append(f"  elections:         {_num(len(elections))}  won {_num(won)}")
    slot_durations = _span_durations(tracer.spans_of("paxos.slot"))
    if slot_durations:
        lines.append(
            f"  slot quorum time:  p50 {_ms(percentile(slot_durations, 50))}"
            f"  p99 {_ms(percentile(slot_durations, 99))}"
        )
    lease = m.counter("group.lease_reads")
    logged = m.counter("group.log_ops")
    lines.append(
        f"  reads via lease:   {_num(lease)}  via log {_num(logged)}"
        f"  (lease hit rate {_pct(lease, lease + logged)})"
    )
    follower = m.counter("reads.follower")
    bounced = m.counter("reads.bounced")
    if follower or bounced:
        lines.append(
            f"  follower reads:    {_num(follower)}  bounced {_num(bounced)}"
            f"  (serve rate {_pct(follower, follower + bounced)})"
        )

    # ---- group operations (2PC) -----------------------------------------
    lines.append("")
    lines.append("group operations (2PC over Paxos groups)")
    txn_spans = tracer.spans_of("txn.op")
    if not txn_spans:
        lines.append("  none in this run")
    kinds = sorted({s.attrs.get("spec", "?") for s in txn_spans})
    for kind in kinds:
        of_kind = [s for s in txn_spans if s.attrs.get("spec") == kind]
        committed = [s for s in of_kind if s.attrs.get("outcome") == "committed"]
        durations = _span_durations(committed)
        lines.append(
            f"  {kind:<12} {_num(len(of_kind))} started, {_num(len(committed))} committed"
            + (f", commit p50 {_ms(percentile(durations, 50))}" if durations else "")
        )
        for phase in ("txn.prepare", "txn.commit", "txn.notify"):
            phase_durations = [
                c.duration
                for s in of_kind
                for c in tracer.children_of(s)
                if c.kind == phase and not c.open
            ]
            if phase_durations:
                lines.append(
                    f"      {phase.split('.')[1]:<10} p50 {_ms(percentile(phase_durations, 50))}"
                    f"  p99 {_ms(percentile(phase_durations, 99))}"
                    f"  ({_num(len(phase_durations))} phases)"
                )
    freezes = _span_durations(tracer.spans_of("group.freeze"))
    if freezes:
        lines.append(
            f"  freeze windows:    {_num(len(freezes))}  p50 {_ms(percentile(freezes, 50))}"
            f"  max {_ms(max(freezes))}"
        )

    # ---- simulator -------------------------------------------------------
    lines.append("")
    lines.append("simulator")
    lines.append(f"  events processed:  {_num(m.counter('sim.events'))}")
    lines.append(f"  spans recorded:    {_num(len(tracer.spans))}  (open {_num(tracer.open_spans)})")
    return "\n".join(lines)

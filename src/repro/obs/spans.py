"""The span taxonomy: every span kind the instrumented layers emit.

Instrumentation refers to these constants (never string literals) so the
taxonomy stays closed: a test asserts that every kind listed here is
documented in docs/OBSERVABILITY.md, and grep for a constant finds every
emit site.  Names are ``<layer>.<what>``; see the documentation for each
span's attributes and lifecycle.
"""

from __future__ import annotations

# One client operation (get/put/delete/cas) end to end, routing and
# retries included.  Emitted by repro.dht.client.
CLIENT_OP = "client.op"

# One leader campaign: Prepare broadcast to win/loss/abandonment.
# Emitted by repro.consensus.replica.
PAXOS_ELECTION = "paxos.election"

# One Paxos accept round for one slot: Accept broadcast until the slot
# is chosen (or leadership is lost).  Emitted by repro.consensus.replica.
PAXOS_SLOT = "paxos.slot"

# The window in which a group is locked by a prepared transaction:
# txn_prepare applying to the matching commit/abort applying.  Emitted
# by repro.group.replica on every member.
GROUP_FREEZE = "group.freeze"

# One whole group operation (split/merge/migrate/repartition) as seen by
# its coordinator driver.  Emitted by repro.txn.coordinator.
TXN_OP = "txn.op"

# 2PC phase 1: all prepares proposed/sent until every vote is in.
TXN_PREPARE = "txn.prepare"

# 2PC commit point: the txn_commit record chosen in the coordinator
# group's log.
TXN_COMMIT = "txn.commit"

# 2PC phase 2: best-effort commit notifications to remote participants.
TXN_NOTIFY = "txn.notify"

# One Get served locally at a follower under a live read grant
# (PaxosConfig.follower_reads).  Emitted by repro.group.replica; bounced
# follower reads emit only the reads.bounced counter, no span.
GROUP_FOLLOWER_READ = "group.follower_read"

ALL_SPAN_KINDS = (
    CLIENT_OP,
    PAXOS_ELECTION,
    PAXOS_SLOT,
    GROUP_FREEZE,
    TXN_OP,
    TXN_PREPARE,
    TXN_COMMIT,
    TXN_NOTIFY,
    GROUP_FOLLOWER_READ,
)

"""The tracer: structured spans keyed on simulated time.

A :class:`Tracer` is bound to each :class:`~repro.sim.loop.Simulator`
constructed while it is installed (see :mod:`repro.obs.runtime`); the
simulator hands it a clock so spans are stamped with *virtual* time.
Experiments that build several simulators sequentially (sweeps) reuse
one tracer: each binding bumps the ``run`` index recorded on spans, so
a trace distinguishes "t=5.0 in the third deployment" from "t=5.0 in
the first".

Design rules that keep tracing free of side effects:

- A tracer never schedules events, sends messages, or consumes any
  simulator RNG stream — it only appends to Python lists.  Identical
  seeds therefore produce byte-identical traces, and installing a
  tracer cannot change any experiment's results.
- Span ids are a per-tracer sequence, assigned at :meth:`begin` in
  event-execution order, which is itself deterministic.
- Parent links are explicit (the instrumentation passes the parent
  span); there is no implicit "current span" stack, because simulator
  code interleaves hundreds of logical operations on one thread.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.sim.loop import Simulator


class Span:
    """One traced interval: ``kind`` from ``start`` until ``end``.

    ``end`` is None while the span is open (and stays None for spans
    still open at export time — e.g. a group frozen when the simulation
    stopped).  ``attrs`` is a flat dict of JSON-serializable values;
    :meth:`Tracer.finish` merges outcome attributes into it.
    """

    __slots__ = ("span_id", "parent_id", "kind", "run", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        kind: str,
        run: int,
        start: float,
        attrs: dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.run = run
        self.start = start
        self.end: float | None = None
        self.attrs = attrs

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (NaN while open)."""
        if self.end is None:
            return float("nan")
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"{self.duration:.6f}s"
        return f"<Span #{self.span_id} {self.kind} {state}>"


class Tracer:
    """Records spans and metrics for one traced run (or sweep of runs).

    Truthiness is always True; instrumented code holds either a Tracer
    or ``None`` and guards every emit site with ``if tracer is not
    None`` (or ``if tracer:``), which is the disabled-mode fast path.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.metrics = MetricsRegistry()
        self.run = -1  # index of the current simulator binding
        self._clock: Callable[[], float] | None = None
        self._next_span_id = 1
        self._open = 0

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, sim: "Simulator") -> None:
        """Adopt ``sim``'s virtual clock; called by ``Simulator.__init__``.

        Each bind starts a new ``run`` so spans from successive
        deployments in one experiment remain distinguishable.
        """
        self._clock = lambda: sim._now
        self.run += 1

    @property
    def now(self) -> float:
        """Current virtual time of the most recently bound simulator."""
        if self._clock is None:
            return 0.0
        return self._clock()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def begin(self, kind: str, parent: Span | None = None, **attrs: Any) -> Span:
        """Open a span of ``kind`` at the current virtual time."""
        span = Span(
            span_id=self._next_span_id,
            parent_id=parent.span_id if parent is not None else None,
            kind=kind,
            run=self.run,
            start=self.now,
            attrs=attrs,
        )
        self._next_span_id += 1
        self._open += 1
        self.spans.append(span)
        return span

    def finish(self, span: Span, **attrs: Any) -> None:
        """Close ``span`` at the current virtual time, merging ``attrs``.

        Closing an already-closed span is an error: it would mean two
        code paths both believed they owned the span's lifecycle.
        """
        if span.end is not None:
            raise RuntimeError(f"span {span!r} finished twice")
        span.end = self.now
        self._open -= 1
        if attrs:
            span.attrs.update(attrs)

    # ------------------------------------------------------------------
    # Network accounting
    # ------------------------------------------------------------------
    def note_send(self, msg: Any) -> None:
        """Count one network send, attributed to the protocol payload type.

        Transport envelopes (``.body``) and group frames (``.inner``) are
        unwrapped duck-typed so counts name the protocol message
        (``Accept``, ``ClientOpReq``) rather than the wrapper; RPC
        responses/errors carry arbitrary payloads and are bucketed as
        ``RpcResponse``/``RpcError``.
        """
        metrics = self.metrics
        metrics.inc("net.sent")
        kind = getattr(msg, "kind", None)
        if kind == "resp":
            name = "RpcResponse"
        elif kind == "err":
            name = "RpcError"
        else:
            body = getattr(msg, "body", msg)
            inner = getattr(body, "inner", None)
            name = type(body if inner is None else inner).__name__
        metrics.inc("net.msg." + name)

    @property
    def open_spans(self) -> int:
        """Number of spans begun but not yet finished."""
        return self._open

    def spans_of(self, kind: str) -> list[Span]:
        """All spans of one kind, in begin order."""
        return [s for s in self.spans if s.kind == kind]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

"""Ambient tracer installation.

Experiments construct their simulators deep inside builders, so the
tracer cannot be threaded through every call signature without
polluting the whole harness API.  Instead a process-global *current
tracer* is consulted exactly once per :class:`~repro.sim.loop.Simulator`
construction: install a tracer, build/run the experiment, clear it.

With nothing installed (the default), ``Simulator.tracer`` is ``None``
and every instrumented call site reduces to a single attribute load
plus a falsy branch — the disabled-mode overhead documented in
docs/OBSERVABILITY.md.

This module deliberately imports nothing from the simulator packages,
so ``repro.sim`` can import it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer

_current: "Tracer | None" = None


def install_tracer(tracer: "Tracer") -> None:
    """Make ``tracer`` ambient: every Simulator built next binds to it."""
    global _current
    _current = tracer


def clear_tracer() -> None:
    """Remove the ambient tracer (newly built simulators trace nothing)."""
    global _current
    _current = None


def current_tracer() -> "Tracer | None":
    """The ambient tracer, or None when tracing is off."""
    return _current


@contextmanager
def tracing(tracer: "Tracer") -> Iterator["Tracer"]:
    """``with tracing(Tracer()) as t:`` — install for the block, then clear.

    Restores whatever was installed before, so traced blocks nest.
    """
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous

"""ASCII charts for experiment results — figures for the terminal.

The paper's evaluation is mostly line/bar figures; these helpers render
an :class:`~repro.harness.results.ExperimentResult` series as a quick
bar chart so `python -m repro run E14 --chart p50_ms` shows the shape
without leaving the shell.
"""

from __future__ import annotations

from repro.harness.results import ExperimentResult

BLOCKS = " ▏▎▍▌▋▊▉█"


def bar(value: float, maximum: float, width: int = 40) -> str:
    """A unicode bar of `width` cells proportional to value/maximum."""
    if maximum <= 0 or value <= 0:
        return ""
    cells = value / maximum * width
    full = int(cells)
    frac = int((cells - full) * 8)
    out = "█" * full
    if frac > 0 and full < width:
        out += BLOCKS[frac]
    return out


def render_chart(
    result: ExperimentResult,
    y: str,
    x: str | None = None,
    group_by: str | None = None,
    width: int = 40,
) -> str:
    """Bar chart of column ``y`` labelled by ``x`` (default: first column).

    ``group_by`` prefixes each label with another column's value so
    multi-series tables (e.g. backend x lifetime) stay readable.
    """
    if y not in result.columns:
        raise ValueError(f"unknown column {y!r}; have {result.columns}")
    x = x or result.columns[0]
    values = []
    labels = []
    for row in result.rows:
        value = row.get(y)
        if not isinstance(value, (int, float)) or value != value:  # skip NaN
            continue
        label = str(row.get(x, ""))
        if group_by is not None:
            label = f"{row.get(group_by, '')}/{label}"
        labels.append(label)
        values.append(float(value))
    if not values:
        return f"(no numeric data in column {y!r})"
    maximum = max(values)
    label_width = max(len(l) for l in labels)
    lines = [f"{result.experiment}: {y}"]
    for label, value in zip(labels, values):
        lines.append(f"{label.rjust(label_width)} | {bar(value, maximum, width)} {_fmt(value)}")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.3g}"

"""Metric extraction from client operation records."""

from __future__ import annotations

from repro.analysis import check_history
from repro.analysis.stats import mean, percentile


def workload_metrics(records: list, window: tuple[float, float] | None = None) -> dict:
    """Availability / latency / consistency summary of a record list.

    ``window`` restricts to operations invoked inside [start, end) so
    warmup and drain phases don't pollute steady-state numbers.
    """
    all_records = records
    if window is not None:
        lo, hi = window
        records = [r for r in records if lo <= r.invoke_time < hi]
    completed = [r for r in records if r.completed]
    # "successful" means the system answered within the op timeout; a
    # not_found answer is a success for availability purposes.
    availability = len(completed) / len(records) if records else float("nan")
    latencies = [r.latency for r in completed]
    get_latencies = [r.latency for r in completed if r.op == "get"]
    put_latencies = [r.latency for r in completed if r.op == "put"]
    # Consistency is judged over in-window reads against the *full*
    # write history (a windowed read may legally return an older write).
    check = check_history(all_records, window=window)
    return {
        "ops": len(records),
        "completed": len(completed),
        "availability": availability,
        "latency_mean": mean(latencies),
        "latency_p50": percentile(latencies, 50),
        "latency_p99": percentile(latencies, 99),
        "latency_p999": percentile(latencies, 99.9),
        "get_p50": percentile(get_latencies, 50),
        "get_p99": percentile(get_latencies, 99),
        "put_p50": percentile(put_latencies, 50),
        "put_p99": percentile(put_latencies, 99),
        "reads_checked": check.total_reads,
        "violations": len(check.violations),
        "violation_fraction": check.violation_fraction,
        "mean_hops": mean([r.hops for r in completed]) if completed else float("nan"),
    }

"""Deployment builders shared by experiments, benchmarks, and examples."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.chord import ChordClient, ChordConfig, ChordSystem
from repro.consensus.replica import PaxosConfig
from repro.dht.client import ClientConfig, ScatterClient
from repro.dht.scatter import ScatterConfig
from repro.dht.system import ScatterSystem
from repro.policies import ScatterPolicy
from repro.sim.latency import LatencyModel, LogNormalLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork

# Timing profile used across experiments: fast enough that a simulated
# minute exercises many protocol rounds, slow enough that heartbeat
# traffic doesn't dominate event counts.
EXPERIMENT_PAXOS = PaxosConfig(
    heartbeat_interval=0.15,
    election_timeout=0.7,
    lease_duration=0.5,
    retry_interval=0.4,
    compact_threshold=400,
)


def experiment_scatter_config(**overrides) -> ScatterConfig:
    defaults = dict(
        paxos=EXPERIMENT_PAXOS,
        maintenance_interval=1.0,
        dead_timeout=3.0,
        txn_rpc_timeout=1.5,
        txn_recovery_timeout=6.0,
        txn_cooldown=2.0,
        gossip_interval=3.0,
        retired_linger=30.0,
        join_retry=0.5,
    )
    defaults.update(overrides)
    return ScatterConfig(**defaults)


@dataclass
class DeploymentParams:
    """One deployment's shape, shared between the two backends."""

    n_nodes: int = 30
    n_groups: int = 10
    n_clients: int = 4
    seed: int = 1
    latency: LatencyModel = field(default_factory=lambda: LogNormalLatency(0.004, 0.4))
    drop_prob: float = 0.0
    warmup: float = 3.0


@dataclass
class ScatterDeployment:
    sim: Simulator
    net: SimNetwork
    system: ScatterSystem
    clients: list[ScatterClient]


@dataclass
class ChordDeployment:
    sim: Simulator
    net: SimNetwork
    system: ChordSystem
    clients: list[ChordClient]


def build_scatter_deployment(
    params: DeploymentParams,
    policy: ScatterPolicy | None = None,
    config: ScatterConfig | None = None,
    client_config: ClientConfig | None = None,
) -> ScatterDeployment:
    sim = Simulator(seed=params.seed)
    net = SimNetwork(sim, latency=params.latency, drop_prob=params.drop_prob)
    policy = policy or ScatterPolicy(target_size=3, split_size=7, merge_size=1)
    system = ScatterSystem.build(
        sim,
        net,
        n_nodes=params.n_nodes,
        n_groups=params.n_groups,
        config=config or experiment_scatter_config(),
        policy=policy,
    )
    clients = [
        ScatterClient(f"client{i}", sim, net, seed_provider=system.alive_node_ids,
                      config=client_config)
        for i in range(params.n_clients)
    ]
    sim.run_for(params.warmup)
    return ScatterDeployment(sim, net, system, clients)


def build_chord_deployment(
    params: DeploymentParams, config: ChordConfig | None = None
) -> ChordDeployment:
    sim = Simulator(seed=params.seed)
    net = SimNetwork(sim, latency=params.latency, drop_prob=params.drop_prob)
    system = ChordSystem.build(sim, net, n_nodes=params.n_nodes, config=config)
    clients = [
        ChordClient(f"client{i}", sim, net, seed_provider=system.alive_node_ids)
        for i in range(params.n_clients)
    ]
    sim.run_for(params.warmup)
    return ChordDeployment(sim, net, system, clients)

"""Experiment entry points E1–E20 (see DESIGN.md for the index).

Every function returns an :class:`ExperimentResult` whose rows are the
series the corresponding figure/table in the paper plots.  ``quick=True``
(the default, used by the benchmark suite) runs a scaled-down version;
``quick=False`` runs closer to paper scale and is what EXPERIMENTS.md
records.
"""

from __future__ import annotations

import math
import random
import time

from repro.analysis.liveness import GroupQuorumWatch, LivenessWatchdog
from repro.analysis.stats import mean, percentile
from repro.baseline.chord import ChordConfig
from repro.consensus.replica import PaxosConfig
from repro.dht.client import ClientConfig
from repro.faults import FaultTarget, build_scenario, get_scenario
from repro.harness.builders import (
    DeploymentParams,
    build_chord_deployment,
    build_scatter_deployment,
    experiment_scatter_config,
)
from repro.harness.metrics import workload_metrics
from repro.harness.results import ExperimentResult
from repro.policies import ScatterPolicy
from repro.sim.latency import WanLatencyMatrix
from repro.storage.disk import StorageConfig
from repro.txn.classic import ClassicCoordinator, ClassicParticipant
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.sim.latency import ConstantLatency
from repro.workloads import ChurnProcess, UniformKeys, ZipfKeys, exponential_lifetime
from repro.workloads.chirp import ChirpWorkload
from repro.workloads.driver import ClosedLoopWorkload

# Policy used for churn experiments.  Group size is the resilience knob
# (E7): ~5 members lets a group absorb a death and repair (remove +
# replacement join) before a second death can cost it its majority, even
# at the paper's harshest median lifetime of ~100 s.
CHURN_POLICY_KWARGS = dict(target_size=5, split_size=11, merge_size=3)


def _churn_run(
    backend: str,
    median_lifetime: float | None,
    duration: float,
    params: DeploymentParams,
    read_fraction: float = 0.5,
    n_keys: int = 40,
) -> dict:
    """One deployment under churn + closed-loop workload; returns metrics."""
    if backend == "scatter":
        deployment = build_scatter_deployment(params, policy=ScatterPolicy(**CHURN_POLICY_KWARGS))
    else:
        deployment = build_chord_deployment(params)
    sim, system, clients = deployment.sim, deployment.system, deployment.clients
    workload = ClosedLoopWorkload(
        sim, clients, UniformKeys(n_keys), read_fraction=read_fraction, think_time=0.05
    )
    workload.start()
    sim.run_for(5.0)  # populate some keys before churn begins
    churn = None
    if median_lifetime is not None:
        churn = ChurnProcess(sim, system, exponential_lifetime(median_lifetime))
        churn.start()
    start = sim.now
    sim.run_for(duration)
    if churn is not None:
        churn.stop()
    workload.stop()
    sim.run_for(2.0)
    metrics = workload_metrics(workload.all_records(), window=(start, start + duration))
    metrics["departures"] = churn.departures if churn else 0
    return metrics


def _nemesis_run(
    backend: str,
    scenario: str,
    duration: float,
    params: DeploymentParams,
    read_fraction: float = 0.5,
    n_keys: int = 40,
    watchdog_window: float = 3.0,
    recovery_cap: float = 20.0,
) -> dict:
    """One deployment under a named nemesis scenario; returns metrics.

    Shared by E16, the CLI ``nemesis`` subcommand, and tests, so fault
    schedules are defined once in :mod:`repro.faults.scenarios`.
    Recovery time is measured from the final heal (nemesis stop) to the
    first client operation completing afterwards, capped at
    ``recovery_cap`` seconds.
    """
    if backend == "scatter":
        # Disk-fault scenarios need disks to act on; every other scenario
        # runs storage-off so E16 stays on the zero-perturbation path.
        config = None
        spec = get_scenario(scenario)
        if spec.needs_storage:
            config = experiment_scatter_config(storage=StorageConfig())
        policy_kwargs = dict(CHURN_POLICY_KWARGS)
        if spec.needs_repair:
            policy_kwargs["repair"] = True
        deployment = build_scatter_deployment(
            params, policy=ScatterPolicy(**policy_kwargs), config=config
        )
    else:
        chord_config = ChordConfig(hardened=True) if get_scenario(scenario).needs_repair else None
        deployment = build_chord_deployment(params, config=chord_config)
    sim, system, clients = deployment.sim, deployment.system, deployment.clients
    workload = ClosedLoopWorkload(
        sim, clients, UniformKeys(n_keys), read_fraction=read_fraction, think_time=0.05
    )
    workload.start()
    sim.run_for(5.0)  # populate keys and reach steady state before faults

    def completed_ops() -> int:
        return sum(1 for r in workload.all_records() if r.completed)

    suite = build_scenario(scenario, sim, FaultTarget.for_system(system))
    watchdog = LivenessWatchdog(sim, completed_ops, window=watchdog_window)
    # Permanent-loss scenarios also get a per-group quorum watch so the
    # run can distinguish dead groups (permanently below quorum, with a
    # first-below timestamp) from transient dips.  Gated on needs_repair
    # so legacy scenarios (E16's rows) keep a byte-identical event
    # stream.
    quorum_watch = None
    if backend == "scatter" and get_scenario(scenario).needs_repair:
        quorum_watch = GroupQuorumWatch(sim, _group_quorum_probe(system))
    start = sim.now
    watchdog.start()
    if quorum_watch is not None:
        quorum_watch.start()
    suite.start()
    sim.run_for(duration)
    suite.stop()  # halts the schedule and heals all active faults
    fault_end = sim.now
    before_recovery = completed_ops()
    recovery = 0.0
    while recovery < recovery_cap and completed_ops() == before_recovery:
        sim.run_for(0.25)
        recovery += 0.25
    watchdog.stop()
    workload.stop()
    sim.run_for(2.0)
    metrics = workload_metrics(workload.all_records(), window=(start, fault_end))
    metrics["scenario"] = scenario
    metrics["fault_events"] = sum(
        1 for e in suite.events if e.action not in ("start", "stop")
    )
    metrics["stalls"] = watchdog.stall_count
    metrics["max_stall_s"] = watchdog.max_stall
    metrics["recovery_s"] = recovery
    metrics["recovered"] = completed_ops() > before_recovery
    if quorum_watch is not None:
        quorum_watch.stop()
        dead = quorum_watch.dead_groups()
        metrics["dead_groups"] = len(dead)
        metrics["first_death_s"] = min(dead.values()) - start if dead else None
    return metrics


def _group_quorum_probe(system):
    """Probe for :class:`GroupQuorumWatch`: ``{gid: (voting, members)}``.

    Voting counts live, attending, non-amnesiac replicas (an amnesiac
    disk-wipe survivor attends but cannot vote); membership size is the
    largest roster any attending replica reports for the group.
    """
    from repro.group.replica import GroupStatus

    def probe() -> dict[str, tuple[int, int]]:
        counts: dict[str, tuple[int, int]] = {}
        for name in sorted(system.nodes):
            node = system.nodes[name]
            if not node.alive:
                continue
            for gid, replica in node.groups.items():
                if replica.paxos.retired or replica.status is GroupStatus.RETIRED:
                    continue
                voting, members = counts.get(gid, (0, 0))
                if not replica.paxos.amnesiac:
                    voting += 1
                counts[gid] = (voting, max(members, len(replica.paxos.members)))
        return counts

    return probe


def _lifetimes(quick: bool) -> list[float]:
    return [100.0, 300.0] if quick else [60.0, 100.0, 180.0, 300.0, 600.0, 1000.0]


def _churn_params(quick: bool, seed: int) -> DeploymentParams:
    if quick:
        return DeploymentParams(n_nodes=20, n_groups=4, n_clients=3, seed=seed)
    return DeploymentParams(n_nodes=60, n_groups=12, n_clients=6, seed=seed)


# ---------------------------------------------------------------------------
# E1: vanilla-DHT inconsistency under churn (motivation figure)
# ---------------------------------------------------------------------------
def run_e01(quick: bool = True, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E1",
        title="E1: inconsistent lookups in a Chord-style DHT vs churn",
        columns=["median_lifetime_s", "ops", "availability", "violations", "violation_pct"],
        notes="violations = linearizability breaches among completed reads",
    )
    duration = 60.0 if quick else 240.0
    for lifetime in _lifetimes(quick):
        metrics = _churn_run("chord", lifetime, duration, _churn_params(quick, seed))
        result.add(
            median_lifetime_s=lifetime,
            ops=metrics["ops"],
            availability=metrics["availability"],
            violations=metrics["violations"],
            violation_pct=100 * metrics["violation_fraction"],
        )
    return result


# ---------------------------------------------------------------------------
# E2: Scatter vs Chord consistency under churn
# ---------------------------------------------------------------------------
def run_e02(quick: bool = True, seed: int = 2) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E2",
        title="E2: linearizability violations, Scatter vs Chord, under churn",
        columns=["backend", "median_lifetime_s", "reads_checked", "violations", "violation_pct"],
        notes="Scatter must stay at zero across the sweep",
    )
    duration = 60.0 if quick else 240.0
    for backend in ("scatter", "chord"):
        for lifetime in _lifetimes(quick):
            metrics = _churn_run(backend, lifetime, duration, _churn_params(quick, seed))
            result.add(
                backend=backend,
                median_lifetime_s=lifetime,
                reads_checked=metrics["reads_checked"],
                violations=metrics["violations"],
                violation_pct=100 * metrics["violation_fraction"],
            )
    return result


# ---------------------------------------------------------------------------
# E3: availability under churn
# ---------------------------------------------------------------------------
def run_e03(quick: bool = True, seed: int = 3) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E3",
        title="E3: operation availability vs churn (fraction completing in time)",
        columns=["backend", "median_lifetime_s", "ops", "availability", "departures"],
    )
    duration = 60.0 if quick else 240.0
    lifetimes = [None] + _lifetimes(quick)
    for backend in ("scatter", "chord"):
        for lifetime in lifetimes:
            metrics = _churn_run(backend, lifetime, duration, _churn_params(quick, seed))
            result.add(
                backend=backend,
                median_lifetime_s=lifetime if lifetime is not None else "none",
                ops=metrics["ops"],
                availability=metrics["availability"],
                departures=metrics["departures"],
            )
    return result


# ---------------------------------------------------------------------------
# E4: operation latency vs churn (Scatter)
# ---------------------------------------------------------------------------
def run_e04(quick: bool = True, seed: int = 4) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E4",
        title="E4: Scatter client latency vs churn",
        columns=["median_lifetime_s", "get_p50_ms", "put_p50_ms", "p99_ms"],
    )
    duration = 60.0 if quick else 240.0
    for lifetime in [None] + _lifetimes(quick):
        metrics = _churn_run("scatter", lifetime, duration, _churn_params(quick, seed))
        result.add(
            median_lifetime_s=lifetime if lifetime is not None else "none",
            get_p50_ms=1000 * metrics["get_p50"],
            put_p50_ms=1000 * metrics["put_p50"],
            p99_ms=1000 * metrics["latency_p99"],
        )
    return result


# ---------------------------------------------------------------------------
# E5: group operation cost
# ---------------------------------------------------------------------------
def run_e05(quick: bool = True, seed: int = 5) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E5",
        title="E5: latency of group operations (split / merge / migrate / repartition / join)",
        columns=["operation", "samples", "mean_ms", "p50_ms", "p99_ms"],
        notes="time from initiation to transaction commit (join: to membership)",
    )
    repeats = 4 if quick else 12
    samples: dict[str, list[float]] = {
        "split": [], "merge": [], "migrate": [], "repartition": [], "join": []
    }
    manual = ScatterPolicy(target_size=4, split_size=999, merge_size=0)
    for rep in range(repeats):
        params = DeploymentParams(n_nodes=12, n_groups=2, n_clients=0, seed=seed * 100 + rep)
        deployment = build_scatter_deployment(params, policy=manual)
        sim, system = deployment.sim, deployment.system

        def timed_commit(fut, window=20.0):
            """Run until the op resolves; return commit latency or None."""
            t0 = sim.now
            stamp: dict[str, float] = {}
            fut.add_callback(lambda _f: stamp.setdefault("t", sim.now))
            sim.run_for(window)
            if fut.done and fut.exception is None and fut.result() == "committed":
                return stamp["t"] - t0
            return None

        # Split g0 (6 members) into two groups of 3.
        leader = system.leader_of("g0")
        latency = timed_commit(leader.host.start_split(leader))
        if latency is not None:
            samples["split"].append(latency)
        # Migrate one member between two groups.
        gids = sorted(system.active_groups())
        a = system.leader_of(gids[0])
        b = system.active_groups()[gids[1]]
        mover = [m for m in a.members if m != a.paxos.replica_id][0]
        latency = timed_commit(a.host.start_migrate(a, mover, b.info()))
        if latency is not None:
            samples["migrate"].append(latency)
        # Repartition a boundary by an eighth of a range.
        a = system.leader_of(sorted(system.active_groups())[0])
        if a.successor is not None:
            boundary = (a.range.lo + (a.range.size() * 7) // 8) % (1 << 32)
            latency = timed_commit(a.host.start_repartition(a, boundary))
            if latency is not None:
                samples["repartition"].append(latency)
        # Join a brand-new node (latency to voting membership).
        t0 = sim.now
        node = system.add_node()
        joined: dict[str, float] = {}

        def probe_join():
            for replica in node.groups.values():
                if node.node_id in replica.paxos.members:
                    joined.setdefault("t", sim.now)
                    return
            sim.schedule(0.1, probe_join)

        sim.schedule(0.1, probe_join)
        sim.run_for(20.0)
        if "t" in joined:
            samples["join"].append(joined["t"] - t0)
        # Merge two adjacent groups back together.
        a = system.leader_of(sorted(system.active_groups())[0])
        latency = timed_commit(a.host.start_merge(a))
        if latency is not None:
            samples["merge"].append(latency)
    for op in ("split", "merge", "migrate", "repartition", "join"):
        values = samples[op]
        result.add(
            operation=op,
            samples=len(values),
            mean_ms=1000 * mean(values) if values else float("nan"),
            p50_ms=1000 * percentile(values, 50) if values else float("nan"),
            p99_ms=1000 * percentile(values, 99) if values else float("nan"),
        )
    return result


# ---------------------------------------------------------------------------
# E6: throughput scaling with system size
# ---------------------------------------------------------------------------
def run_e06(quick: bool = True, seed: int = 6) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E6",
        title="E6: aggregate throughput vs system size (no churn)",
        columns=[
            "nodes", "groups", "clients", "ops_per_s", "p50_ms", "msgs_per_op",
            "sim_events",
        ],
        notes=(
            "closed-loop clients scale with nodes; simulated time; "
            "msgs_per_op counts all protocol traffic (heartbeats included); "
            "sim_events is the deterministic event count per measurement window"
        ),
    )
    # Full mode reaches 240 nodes / 80 groups — the regime the paper's
    # scalability claim is about, made tractable by the simulator
    # hot-path optimizations (see repro.perf / BENCH_SIM.json).
    sizes = [12, 24, 48] if quick else [12, 24, 48, 96, 192, 240]
    duration = 30.0 if quick else 60.0
    total_events = 0
    total_wall = 0.0
    for n in sizes:
        wall_start = time.perf_counter()
        params = DeploymentParams(
            n_nodes=n, n_groups=n // 3, n_clients=max(2, n // 6), seed=seed
        )
        deployment = build_scatter_deployment(params)
        sim, clients = deployment.sim, deployment.clients
        workload = ClosedLoopWorkload(
            sim, clients, UniformKeys(8 * n), read_fraction=0.5, think_time=0.0
        )
        workload.start()
        sim.run_for(3.0)
        start = sim.now
        msgs_before = deployment.net.stats.sent
        events_before = sim.events_processed
        sim.run_for(duration)
        msgs_during = deployment.net.stats.sent - msgs_before
        events_during = sim.events_processed - events_before
        workload.stop()
        sim.run_for(1.0)
        metrics = workload_metrics(workload.all_records(), window=(start, start + duration))
        result.add(
            nodes=n,
            groups=n // 3,
            clients=params.n_clients,
            ops_per_s=metrics["completed"] / duration,
            p50_ms=1000 * metrics["latency_p50"],
            msgs_per_op=msgs_during / max(1, metrics["completed"]),
            sim_events=events_during,
        )
        total_events += sim.events_processed
        total_wall += time.perf_counter() - wall_start
    # Wall-clock speed goes in `perf`, never in rows: rows must stay
    # byte-identical for a fixed (configuration, seed).
    result.perf = {
        "events_per_s_wall": round(total_events / total_wall, 1) if total_wall else 0.0,
        "total_sim_events": total_events,
        "wall_s": round(total_wall, 2),
    }
    return result


# ---------------------------------------------------------------------------
# E7: group size vs probability of group failure under churn
# ---------------------------------------------------------------------------
def run_e07(quick: bool = True, seed: int = 7) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E7",
        title="E7: probability a group loses a majority before repair, vs group size",
        columns=["group_size", "median_lifetime_s", "p_analytic", "p_simulated"],
        notes="repair window = failure detection + replacement join (4 s here)",
    )
    repair_window = 4.0
    horizon = 2000.0 if quick else 10000.0
    trials = 300 if quick else 2000
    rng = random.Random(seed)
    for size in (1, 3, 5, 7):
        for lifetime in (100.0, 1000.0):
            # Analytic: majority of the k members die within one repair
            # window.  With exponential lifetimes, P(die in w) is
            # memoryless: p = 1 - exp(-ln2 * w / L).
            p_one = 1 - math.exp(-math.log(2) * repair_window / lifetime)
            need = size // 2 + 1
            p_group = sum(
                math.comb(size, j) * p_one**j * (1 - p_one) ** (size - j)
                for j in range(need, size + 1)
            )
            # Over the horizon the group survives ~horizon/w windows.
            windows = horizon / repair_window
            p_analytic = 1 - (1 - p_group) ** windows
            p_simulated = _simulate_group_failure(
                rng, size, lifetime, repair_window, horizon, trials
            )
            result.add(
                group_size=size,
                median_lifetime_s=lifetime,
                p_analytic=p_analytic,
                p_simulated=p_simulated,
            )
    return result


def _simulate_group_failure(
    rng: random.Random,
    size: int,
    median_lifetime: float,
    repair_window: float,
    horizon: float,
    trials: int,
) -> float:
    """Monte-Carlo: members die with exponential lifetimes; each death is
    repaired ``repair_window`` later unless a majority is already dead."""
    rate = math.log(2) / median_lifetime
    need = size // 2 + 1
    failures = 0
    for _ in range(trials):
        # Event-driven per group: track death times of current members.
        deaths = sorted(rng.expovariate(rate) for _ in range(size))
        now = 0.0
        dead = 0
        events = [(t, "death") for t in deaths]
        failed = False
        while events:
            events.sort()
            t, kind = events.pop(0)
            if t > horizon:
                break
            now = t
            if kind == "death":
                dead += 1
                if dead >= need:
                    failed = True
                    break
                events.append((now + repair_window, "repair"))
            else:
                if dead > 0:
                    dead -= 1
                    events.append((now + rng.expovariate(rate), "death"))
        if failed:
            failures += 1
    return failures / trials


# ---------------------------------------------------------------------------
# E8: load-balance policy (split-point choice)
# ---------------------------------------------------------------------------
def run_e08(quick: bool = True, seed: int = 8) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E8",
        title="E8: split balance and load spread, midpoint vs load-median split keys",
        columns=[
            "split_key_mode", "splits", "hot_half_share_pct", "groups_after",
            "load_cv_pct",
        ],
        notes=(
            "hot_half_share = parent load landing in the hotter half at the "
            "split (50% is ideal); load_cv = stddev/mean of per-group load "
            "after the splits under a Zipf(1.0) workload"
        ),
    )
    duration = 24.0 if quick else 60.0
    for mode in ("midpoint", "load_median"):
        policy = ScatterPolicy(
            target_size=3, split_size=999, merge_size=0, split_key_mode=mode
        )
        params = DeploymentParams(n_nodes=16, n_groups=4, n_clients=4, seed=seed)
        deployment = build_scatter_deployment(params, policy=policy)
        sim, system, clients = deployment.sim, deployment.system, deployment.clients
        keys = ZipfKeys(200, theta=1.0)
        workload = ClosedLoopWorkload(sim, clients, keys, read_fraction=0.7, think_time=0.01)
        workload.start()
        sim.run_for(duration / 2)  # accumulate per-key load statistics
        # Split every group using the mode's split key; record how evenly
        # the observed load divides at the chosen key.
        hot_shares = []
        splits = 0
        for gid in sorted(system.active_groups()):
            leader = system.leader_of(gid)
            if leader is None or len(leader.members) < 2:
                continue
            split_key = policy.choose_split_key(leader)
            if split_key == leader.range.lo or not leader.range.contains(split_key):
                continue
            left_arc, _right_arc = leader.range.split_at(split_key)
            total = sum(leader.load.values())
            if total == 0:
                continue
            left_load = sum(c for k, c in leader.load.items() if left_arc.contains(k))
            hot_shares.append(max(left_load, total - left_load) / total)
            # Sequential: simultaneous splits lock their common neighbor
            # participants and mutually abort.
            leader.host.start_split(leader, split_key=split_key)
            sim.run_for(6.0)
            splits += 1
        for g in system.active_groups().values():
            g.load.clear()
        sim.run_for(duration / 2)
        workload.stop()
        sim.run_for(1.0)
        loads = [sum(g.load.values()) for g in system.active_groups().values()]
        avg = mean(loads) if loads else float("nan")
        cv = (
            100 * math.sqrt(mean([(l - avg) ** 2 for l in loads])) / avg
            if loads and avg
            else float("nan")
        )
        result.add(
            split_key_mode=mode,
            splits=splits,
            hot_half_share_pct=100 * mean(hot_shares) if hot_shares else float("nan"),
            groups_after=len(loads),
            load_cv_pct=cv,
        )
    return result


# ---------------------------------------------------------------------------
# E9: latency-aware leader placement
# ---------------------------------------------------------------------------
def run_e09(quick: bool = True, seed: int = 9) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E9",
        title="E9: client op latency, random vs latency-aware leader placement (WAN)",
        columns=["leader_mode", "commit_p50_ms", "put_p50_ms", "put_p99_ms", "get_p50_ms"],
        notes=(
            "clustered WAN latency; commit = leader propose->apply, the "
            "policy's direct target; client latency additionally includes "
            "the client-to-leader hop"
        ),
    )
    duration = 40.0 if quick else 120.0
    for mode in ("static", "latency"):
        policy = ScatterPolicy(
            target_size=5, split_size=99, merge_size=0, leader_mode=mode
        )
        params = DeploymentParams(
            n_nodes=20,
            n_groups=4,
            n_clients=4,
            seed=seed,
            latency=WanLatencyMatrix(seed=seed, span=0.1, floor=0.003, sites=5),
        )
        deployment = build_scatter_deployment(
            params, policy=policy, client_config=ClientConfig(rpc_timeout=1.5, op_timeout=10.0)
        )
        sim, clients = deployment.sim, deployment.clients
        workload = ClosedLoopWorkload(
            sim, clients, UniformKeys(60), read_fraction=0.5, think_time=0.05
        )
        sim.run_for(10.0)  # give the latency policy time to move leaders
        workload.start()
        start = sim.now
        sim.run_for(duration)
        workload.stop()
        sim.run_for(2.0)
        metrics = workload_metrics(workload.all_records(), window=(start, start + duration))
        commit_latencies = [
            sample
            for node in deployment.system.nodes.values()
            for replica in node.groups.values()
            for sample in replica.commit_latencies
        ]
        result.add(
            leader_mode=mode,
            commit_p50_ms=1000 * percentile(commit_latencies, 50),
            put_p50_ms=1000 * metrics["put_p50"],
            put_p99_ms=1000 * percentile(
                [r.latency for r in workload.all_records() if r.completed and r.op == "put"], 99
            ),
            get_p50_ms=1000 * metrics["get_p50"],
        )
    return result


# ---------------------------------------------------------------------------
# E10: Chirp on Scatter vs the Chord baseline
# ---------------------------------------------------------------------------
def run_e10(quick: bool = True, seed: int = 10) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E10",
        title="E10: Chirp (Twitter clone) on Scatter vs Chord baseline",
        columns=[
            "backend", "fetches", "posts", "fetch_p50_ms", "fetch_p99_ms",
            "fetch_fail_pct", "fetches_per_s",
        ],
    )
    duration = 40.0 if quick else 120.0
    n_users = 12 if quick else 40
    for backend in ("scatter", "chord"):
        params = DeploymentParams(n_nodes=18, n_groups=6, n_clients=4, seed=seed)
        if backend == "scatter":
            deployment = build_scatter_deployment(params)
        else:
            deployment = build_chord_deployment(params)
        sim, clients = deployment.sim, deployment.clients
        workload = ChirpWorkload(
            sim, clients, n_users=n_users, follows_per_user=4, post_fraction=0.15,
            think_time=0.2,
        )
        setup = workload.setup()
        sim.run_for(20.0)
        workload.start()
        sim.run_for(duration)
        workload.stop()
        sim.run_for(2.0)
        stats = workload.combined_stats()
        attempts = stats.fetches + stats.failed_fetches
        result.add(
            backend=backend,
            fetches=stats.fetches,
            posts=stats.posts,
            fetch_p50_ms=1000 * percentile(stats.fetch_latencies, 50),
            fetch_p99_ms=1000 * percentile(stats.fetch_latencies, 99),
            fetch_fail_pct=100 * stats.failed_fetches / attempts if attempts else 0.0,
            fetches_per_s=stats.fetches / duration,
        )
    return result


# ---------------------------------------------------------------------------
# E11: leader leases ablation (local reads vs log reads)
# ---------------------------------------------------------------------------
def run_e11(quick: bool = True, seed: int = 11) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E11",
        title="E11: read latency with and without leader leases",
        columns=["lease_reads", "get_p50_ms", "get_p99_ms", "put_p50_ms", "ops_per_s"],
        notes="without leases every read replicates through the Paxos log",
    )
    duration = 30.0 if quick else 90.0
    for lease_reads in (True, False):
        paxos = PaxosConfig(
            heartbeat_interval=0.25,
            election_timeout=1.2,
            lease_duration=0.9,
            retry_interval=0.5,
            lease_reads=lease_reads,
        )
        params = DeploymentParams(n_nodes=12, n_groups=4, n_clients=4, seed=seed)
        deployment = build_scatter_deployment(
            params, config=experiment_scatter_config(paxos=paxos)
        )
        sim, clients = deployment.sim, deployment.clients
        workload = ClosedLoopWorkload(
            sim, clients, UniformKeys(40), read_fraction=0.8, think_time=0.0
        )
        workload.start()
        sim.run_for(3.0)
        start = sim.now
        sim.run_for(duration)
        workload.stop()
        sim.run_for(1.0)
        metrics = workload_metrics(workload.all_records(), window=(start, start + duration))
        gets = [
            r.latency
            for r in workload.all_records()
            if r.completed and r.op == "get" and start <= r.invoke_time < start + duration
        ]
        result.add(
            lease_reads=lease_reads,
            get_p50_ms=1000 * percentile(gets, 50),
            get_p99_ms=1000 * percentile(gets, 99),
            put_p50_ms=1000 * metrics["put_p50"],
            ops_per_s=metrics["completed"] / duration,
        )
    return result


# ---------------------------------------------------------------------------
# E12: non-blocking transactions ablation
# ---------------------------------------------------------------------------
def run_e12(quick: bool = True, seed: int = 12) -> ExperimentResult:
    from repro.group.replica import GroupStatus

    result = ExperimentResult(
        experiment="E12",
        title="E12: coordinator death mid-transaction — blocked time",
        columns=["design", "trials", "resolved", "mean_block_s", "max_block_s"],
        notes="classic 2PC participants never resolve (capped at the 60 s observation window)",
    )
    trials = 3 if quick else 10
    observation = 60.0

    # --- Scatter: replicated coordinator ---
    block_times = []
    resolved = 0
    for t in range(trials):
        params = DeploymentParams(n_nodes=9, n_groups=3, n_clients=0, seed=seed * 10 + t)
        manual = ScatterPolicy(target_size=3, split_size=999, merge_size=0)
        deployment = build_scatter_deployment(params, policy=manual)
        sim, system = deployment.sim, deployment.system
        leader = system.leader_of("g1")
        coordinator_node = leader.paxos.replica_id
        leader.host.start_merge(leader)
        # Kill mid-prepare: participants hold locks, the outcome is
        # undecided, and only the coordinator group's continuity can
        # resolve it — exactly the case that blocks classic 2PC.
        sim.run_for(0.08)
        kill_time = sim.now
        system.kill_node(coordinator_node)
        release_time = None
        deadline = sim.now + observation
        while sim.now < deadline:
            sim.run_for(0.5)
            locked = [
                g for g in system.active_groups().values()
                if g.active_txn is not None or g.status is GroupStatus.FROZEN
            ]
            if not locked:
                release_time = sim.now
                break
        if release_time is not None:
            resolved += 1
            block_times.append(release_time - kill_time)
        else:
            block_times.append(observation)
    result.add(
        design="scatter (2PC over Paxos groups)",
        trials=trials,
        resolved=resolved,
        mean_block_s=mean(block_times),
        max_block_s=max(block_times),
    )

    # --- Classic 2PC: unreplicated coordinator ---
    block_times = []
    resolved = 0
    for t in range(trials):
        sim = Simulator(seed=seed * 100 + t)
        net = SimNetwork(sim, latency=ConstantLatency(0.005))
        coordinator = ClassicCoordinator("coord", sim, net)
        participants = [ClassicParticipant(f"p{i}", sim, net) for i in range(3)]
        coordinator.run_txn("t", [p.node_id for p in participants])
        sim.run_for(0.008)
        coordinator.crash()
        sim.run_for(observation)
        blocked = [p for p in participants if p.locked_txn is not None]
        if blocked:
            block_times.append(max(p.blocked_for for p in blocked))
        else:
            resolved += 1
            block_times.append(0.0)
    result.add(
        design="classic 2PC (single coordinator)",
        trials=trials,
        resolved=resolved,
        mean_block_s=mean(block_times),
        max_block_s=max(block_times) if block_times else 0.0,
    )
    return result



# ---------------------------------------------------------------------------
# E13 (bonus ablation): routing hops vs ring size, with and without gossip
# ---------------------------------------------------------------------------
def run_e13(quick: bool = True, seed: int = 13) -> ExperimentResult:
    from repro.dht.client import ScatterClient
    from repro.workloads.keys import UniformKeys as _UK

    result = ExperimentResult(
        experiment="E13",
        title="E13: cold-client lookup hops vs number of groups (gossip ablation)",
        columns=["groups", "gossip", "mean_hops", "p99_hops", "mean_latency_ms"],
        notes=(
            "each lookup starts from a cold client at a random node; gossip "
            "fills node routing caches, standing in for finger maintenance"
        ),
    )
    group_counts = [4, 16] if quick else [4, 8, 16, 32, 64]
    lookups = 40 if quick else 120
    for n_groups in group_counts:
        for gossip in (True, False):
            config = experiment_scatter_config(
                gossip_interval=3.0 if gossip else 1e9
            )
            params = DeploymentParams(
                n_nodes=3 * n_groups, n_groups=n_groups, n_clients=0, seed=seed
            )
            deployment = build_scatter_deployment(params, config=config)
            sim, net, system = deployment.sim, deployment.net, deployment.system
            sim.run_for(20.0)  # let gossip (if any) converge
            keys = _UK(lookups * 4)
            rng = sim.rng("e13")
            hops = []
            latencies = []
            for i in range(lookups):
                client = ScatterClient(
                    f"cold{n_groups}-{gossip}-{i}", sim, net,
                    seed_provider=system.alive_node_ids,
                )
                future = client.get(keys.sample(rng))
                sim.run_for(10.0)
                record = client.records[0]
                if record.completed:
                    hops.append(record.hops)
                    latencies.append(record.latency)
            result.add(
                groups=n_groups,
                gossip=gossip,
                mean_hops=mean(hops),
                p99_hops=percentile(hops, 99),
                mean_latency_ms=1000 * mean(latencies),
            )
    return result



# ---------------------------------------------------------------------------
# E14 (bonus): latency-throughput curve under increasing offered load
# ---------------------------------------------------------------------------
def run_e14(quick: bool = True, seed: int = 14) -> ExperimentResult:
    from repro.dht.client import ScatterClient

    result = ExperimentResult(
        experiment="E14",
        title="E14: latency vs throughput as offered load grows (fixed 12-node system)",
        columns=["clients", "ops_per_s", "p50_ms", "p99_ms"],
        notes=(
            "closed-loop clients against 4 groups with a 5 ms per-op CPU "
            "service time: throughput plateaus near the leaders' aggregate "
            "capacity (~4 x 200 ops/s) while latency climbs — the classic "
            "saturation curve"
        ),
    )
    client_counts = [1, 4, 12, 24] if quick else [1, 2, 4, 8, 12, 16, 24, 32]
    duration = 12.0 if quick else 30.0
    for n_clients in client_counts:
        config = experiment_scatter_config()
        config.op_service_time = 0.005
        params = DeploymentParams(n_nodes=12, n_groups=4, n_clients=0, seed=seed)
        deployment = build_scatter_deployment(params, config=config)
        sim, net, system = deployment.sim, deployment.net, deployment.system
        clients = [
            ScatterClient(f"load{i}", sim, net, seed_provider=system.alive_node_ids)
            for i in range(n_clients)
        ]
        workload = ClosedLoopWorkload(
            sim, clients, UniformKeys(100), read_fraction=0.5, think_time=0.0
        )
        workload.start()
        sim.run_for(3.0)
        start = sim.now
        sim.run_for(duration)
        workload.stop()
        sim.run_for(1.0)
        metrics = workload_metrics(workload.all_records(), window=(start, start + duration))
        result.add(
            clients=n_clients,
            ops_per_s=metrics["completed"] / duration,
            p50_ms=1000 * metrics["latency_p50"],
            p99_ms=1000 * metrics["latency_p99"],
        )
    return result



# ---------------------------------------------------------------------------
# E15 (bonus): write batching ablation
# ---------------------------------------------------------------------------
def run_e15(quick: bool = True, seed: int = 15) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E15",
        title="E15: Paxos write batching under concurrent load",
        columns=["batch", "ops_per_s", "msgs_per_op", "put_p50_ms"],
        notes="write-heavy closed loop; batching coalesces concurrent puts into one slot",
    )
    duration = 20.0 if quick else 60.0
    n_clients = 12 if quick else 24
    for batch in (False, True):
        paxos = PaxosConfig(
            heartbeat_interval=0.15,
            election_timeout=0.7,
            lease_duration=0.5,
            retry_interval=0.4,
            compact_threshold=400,
            batch=batch,
            batch_window=0.003,
            batch_max=16,
        )
        params = DeploymentParams(n_nodes=9, n_groups=3, n_clients=n_clients, seed=seed)
        deployment = build_scatter_deployment(
            params, config=experiment_scatter_config(paxos=paxos)
        )
        sim, net, clients = deployment.sim, deployment.net, deployment.clients
        workload = ClosedLoopWorkload(
            sim, clients, UniformKeys(60), read_fraction=0.1, think_time=0.0
        )
        workload.start()
        sim.run_for(3.0)
        start = sim.now
        msgs_before = net.stats.sent
        sim.run_for(duration)
        msgs = net.stats.sent - msgs_before
        workload.stop()
        sim.run_for(1.0)
        metrics = workload_metrics(workload.all_records(), window=(start, start + duration))
        result.add(
            batch=batch,
            ops_per_s=metrics["completed"] / duration,
            msgs_per_op=msgs / max(1, metrics["completed"]),
            put_p50_ms=1000 * metrics["put_p50"],
        )
    return result


# ---------------------------------------------------------------------------
# E16: gray failures vs clean crashes (nemesis scenarios)
# ---------------------------------------------------------------------------
def run_e16(quick: bool = True, seed: int = 16) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E16",
        title="E16: availability and recovery under gray failures vs clean crashes",
        columns=[
            "backend", "scenario", "ops", "availability", "violations",
            "fault_events", "stalls", "max_stall_s", "recovery_s",
        ],
        notes=(
            "nemesis scenarios from repro.faults; recovery_s = heal to "
            "first completed op (20 s cap); gray links hurt more than "
            "clean crashes because failure detectors see silence, not "
            "slowness"
        ),
    )
    duration = 40.0 if quick else 120.0
    scenarios = ["clean_crash", "gray_failure", "asymmetric_partition"]
    if not quick:
        scenarios += ["dup_delivery", "chaos"]
    for backend in ("scatter", "chord"):
        for scenario in scenarios:
            metrics = _nemesis_run(backend, scenario, duration, _churn_params(quick, seed))
            result.add(
                backend=backend,
                scenario=scenario,
                ops=metrics["ops"],
                availability=metrics["availability"],
                violations=metrics["violations"],
                fault_events=metrics["fault_events"],
                stalls=metrics["stalls"],
                max_stall_s=metrics["max_stall_s"],
                recovery_s=metrics["recovery_s"],
            )
    return result


# ---------------------------------------------------------------------------
# E17: crash recovery vs snapshot threshold (durable storage model)
# ---------------------------------------------------------------------------
def run_e17(quick: bool = True, seed: int = 17) -> ExperimentResult:
    """Recovery cost and availability dip under a restart storm.

    Runs the same Scatter deployment with the durable-storage model on
    and a crash/restart storm, sweeping the snapshot (compaction)
    threshold.  0 disables compaction, so every recovery replays the
    full WAL; small thresholds keep replay short at the price of more
    snapshot writes.  The replay-length columns come straight from the
    per-region disk counters.
    """
    result = ExperimentResult(
        experiment="E17",
        title="E17: crash recovery cost vs snapshot threshold (durable storage)",
        columns=[
            "compact_threshold", "ops", "availability", "recoveries",
            "mean_replay", "max_replay", "snapshot_pct",
            "stalls", "max_stall_s", "recovery_s",
        ],
        notes=(
            "durable-storage model on; crash/restart storm for the whole "
            "window; mean/max_replay = WAL records replayed per recovery; "
            "snapshot_pct = recoveries that started from a snapshot; "
            "threshold 0 = compaction off (replay grows with uptime)"
        ),
    )
    from repro.faults.nemesis import CrashRestartStorm
    from repro.storage.disk import StorageConfig

    duration = 30.0 if quick else 90.0
    thresholds = (0, 64, 256, 1024) if quick else (0, 32, 64, 128, 256, 512, 1024)
    recovery_cap = 20.0
    for threshold in thresholds:
        paxos = PaxosConfig(
            heartbeat_interval=0.15,
            election_timeout=0.7,
            lease_duration=0.5,
            retry_interval=0.4,
            compact_threshold=threshold,
        )
        params = DeploymentParams(n_nodes=12, n_groups=4, n_clients=3, seed=seed)
        deployment = build_scatter_deployment(
            params,
            policy=ScatterPolicy(**CHURN_POLICY_KWARGS),
            config=experiment_scatter_config(paxos=paxos, storage=StorageConfig()),
        )
        sim, system, clients = deployment.sim, deployment.system, deployment.clients
        workload = ClosedLoopWorkload(
            sim, clients, UniformKeys(40), read_fraction=0.5, think_time=0.05
        )
        workload.start()
        sim.run_for(5.0)

        def completed_ops() -> int:
            return sum(1 for r in workload.all_records() if r.completed)

        storm = CrashRestartStorm(
            sim,
            FaultTarget.for_system(system),
            interval=2.0,
            downtime=(0.5, 2.5),
            max_down=1,
        )
        watchdog = LivenessWatchdog(sim, completed_ops, window=3.0)
        start = sim.now
        watchdog.start()
        storm.start()
        sim.run_for(duration)
        storm.stop()
        fault_end = sim.now
        before_recovery = completed_ops()
        recovery = 0.0
        while recovery < recovery_cap and completed_ops() == before_recovery:
            sim.run_for(0.25)
            recovery += 0.25
        watchdog.stop()
        workload.stop()
        sim.run_for(2.0)

        regions = [
            region
            for node in system.nodes.values()
            if node.disk is not None
            for region in node.disk.regions.values()
        ]
        recoveries = sum(r.recoveries for r in regions)
        replay_total = sum(r.replayed_total for r in regions)
        snapshot_recoveries = sum(r.snapshot_recoveries for r in regions)
        metrics = workload_metrics(workload.all_records(), window=(start, fault_end))
        result.add(
            compact_threshold=threshold,
            ops=metrics["ops"],
            availability=metrics["availability"],
            recoveries=recoveries,
            mean_replay=replay_total / max(1, recoveries),
            max_replay=max((r.max_replayed for r in regions), default=0),
            snapshot_pct=100.0 * snapshot_recoveries / max(1, recoveries),
            stalls=watchdog.stall_count,
            max_stall_s=watchdog.max_stall,
            recovery_s=recovery,
        )
    return result


# ---------------------------------------------------------------------------
# E18: data survival under permanent node loss (self-healing vs baselines)
# ---------------------------------------------------------------------------
def _settle_future(sim: Simulator, future, cap: float = 12.0):
    """Run the sim until ``future`` resolves (or ``cap`` sim-seconds pass)."""
    deadline = sim.now + cap
    while not future.done and sim.now < deadline:
        sim.run_for(0.25)
    if not future.done or future.exception is not None:
        return None
    return future.result()


def run_e18(quick: bool = True, seed: int = 20) -> ExperimentResult:
    """Data survival when nodes leave *permanently* and never come back.

    The transient-churn experiments (E2–E4) restart departed nodes;
    here every loss is a crashed machine with a wiped disk, so the only
    thing standing between a key and oblivion is active
    re-replication.  A fresh node joins at the same rate nodes die —
    permanent churn with stable capacity, the regime an operator
    actually runs — so losing data means losing the *re-replication
    race*, not merely running out of machines.  Three variants face
    the same schedule: Scatter with the resilience policy's repair
    loop (pull-in migrates / merges through the Paxos log), the Chord
    baseline hardened per Zave's rectify/failover rules with
    Leslie-style replica maintenance, and the naive Chord baseline.
    Every key is written with a known value before the storm; after
    the losses stop and the survivors settle, each key is read back —
    a read that does not return the pre-storm value counts the key as
    lost.  Each row aggregates several seeds so one lucky (or cursed)
    victim sequence cannot carry the verdict.
    """
    result = ExperimentResult(
        experiment="E18",
        title="E18: data survival under permanent node loss (self-healing vs baselines)",
        columns=[
            "backend", "loss_interval_s", "seeds", "losses", "joins", "ops",
            "availability", "keys_lost", "keys_total", "dead_groups",
        ],
        notes=(
            "every loss is permanent (crash + disk wipe, no restart) and a "
            "fresh node joins at the same rate; keys_lost = keys whose "
            "post-storm read missed the pre-storm value, summed over the "
            "seeds in the row; dead_groups = scatter groups permanently "
            "below quorum (GroupQuorumWatch verdict; '-' for chord, which "
            "has no groups)"
        ),
    )
    from repro.faults.nemesis import NodeLossStorm

    duration = 40.0
    intervals = (3.0,) if quick else (4.0, 3.0, 2.0)
    n_seeds = 3 if quick else 5
    n_keys = 40
    keyspace = UniformKeys(n_keys)
    # The survival set lives under its own prefix so the availability
    # workload (which also writes) can never refresh or overwrite it —
    # a surviving key survived replication, not luck.
    survival = UniformKeys(n_keys, prefix="surv")
    for backend in ("scatter+repair", "chord+zave", "chord"):
        for interval in intervals:
            losses = joins = ops = ok_ops = lost = 0
            dead_groups: int | str = 0
            for trial_seed in range(seed, seed + n_seeds):
                params = DeploymentParams(
                    n_nodes=24, n_groups=5, n_clients=3, seed=trial_seed
                )
                if backend == "scatter+repair":
                    # Repair cadence tuned to the churn it faces — the
                    # same courtesy the Chord baseline gets for free
                    # (stabilize every 0.5 s, full replica scrub every
                    # 2 s).  The stock config detects death in 3 s and
                    # waits 6 s of suspicion before repairing; at one
                    # permanent loss every few seconds that chain loses
                    # the race by construction, so the operator-tuned
                    # deployment detects in 1.5 s and repairs after 2.5 s.
                    deployment = build_scatter_deployment(
                        params,
                        policy=ScatterPolicy(**CHURN_POLICY_KWARGS, repair=True),
                        config=experiment_scatter_config(
                            maintenance_interval=0.5,
                            dead_timeout=1.5,
                            repair_suspicion=2.5,
                            txn_cooldown=1.0,
                            gossip_interval=2.0,
                        ),
                    )
                else:
                    deployment = build_chord_deployment(
                        params, config=ChordConfig(hardened=(backend == "chord+zave"))
                    )
                sim, system, clients = (
                    deployment.sim, deployment.system, deployment.clients,
                )

                # Seed every survival key with a known value before any loss.
                for i in range(n_keys):
                    _settle_future(sim, clients[0].put(survival.key(i), f"v{i}"))

                workload = ClosedLoopWorkload(
                    sim, clients, keyspace, read_fraction=0.5, think_time=0.05
                )
                workload.start()
                sim.run_for(3.0)

                quorum_watch = None
                if backend == "scatter+repair":
                    quorum_watch = GroupQuorumWatch(sim, _group_quorum_probe(system))
                    quorum_watch.start()
                storm = NodeLossStorm(
                    sim,
                    FaultTarget.for_system(system),
                    interval=interval,
                    max_losses=18,
                    min_alive=8,
                )
                start = sim.now
                storm.start()
                # Replacement capacity arrives at the loss rate, offset so
                # a join never lands on the same instant as a kill.
                storm_end = sim.now + duration
                trial_joins = 0

                def replenish():
                    nonlocal trial_joins
                    if sim.now < storm_end:
                        system.add_node()
                        trial_joins += 1
                        sim.schedule(interval, replenish)

                sim.schedule(interval * 1.5, replenish)
                sim.run_for(duration)
                storm.stop()
                fault_end = sim.now
                sim.run_for(20.0)  # let repair / stabilization settle
                workload.stop()
                if quorum_watch is not None:
                    quorum_watch.stop()

                for i in range(n_keys):
                    res = _settle_future(sim, clients[1].get(survival.key(i)))
                    if res is None or not res.ok or res.value != f"v{i}":
                        lost += 1
                metrics = workload_metrics(
                    workload.all_records(), window=(start, fault_end)
                )
                losses += sum(1 for e in storm.events if e.action == "node_loss")
                joins += trial_joins
                ops += metrics["ops"]
                ok_ops += round(metrics["availability"] * metrics["ops"])
                if quorum_watch is not None:
                    dead_groups += len(quorum_watch.dead_groups())
                else:
                    dead_groups = "-"
            result.add(
                backend=backend,
                loss_interval_s=interval,
                seeds=n_seeds,
                losses=losses,
                joins=joins,
                ops=ops,
                availability=ok_ops / max(1, ops),
                keys_lost=lost,
                keys_total=n_keys * n_seeds,
                dead_groups=dead_groups,
            )
    return result


# ---------------------------------------------------------------------------
# E19: write-path saturation — batching x pipelining x group commit
# ---------------------------------------------------------------------------
def _total_fsyncs(system) -> int:
    """Sum of completed fsyncs across every region of every node disk."""
    total = 0
    for node in system.nodes.values():
        disk = getattr(node, "disk", None)
        if disk is not None:
            total += sum(region.fsyncs for region in disk.regions.values())
    return total


def run_e19(quick: bool = True, seed: int = 19) -> ExperimentResult:
    """Saturation sweep of the full write-path throughput stack.

    The cost model makes per-message and per-fsync constants the
    bottleneck (msg_service_time on the CPU queue, fsync_latency on the
    disk), which is exactly what slot batching, accept coalescing, and
    WAL group commit amortize.  Every cell runs the linearizability
    checker; the throughput win must come at an unchanged consistency
    bar.
    """
    result = ExperimentResult(
        experiment="E19",
        title="E19: write-path saturation — batch size x pipeline depth x fsync coalescing",
        columns=[
            "batch", "pipe", "coalesce_ms", "ops_per_s", "p50_ms", "p99_ms",
            "p999_ms", "msgs_per_op", "fsyncs_per_op", "violations",
        ],
        notes=(
            "write-heavy closed loop (10% reads) against 3 groups with "
            "1 ms CPU per group message and 2 ms fsyncs: the baseline pays "
            "per-slot messages and per-ack fsyncs; batch=N packs N puts "
            "into one slot, pipe=D keeps D slots in flight (with accept "
            "coalescing packing their Accepts per peer), coalesce_ms folds "
            "a window of WAL appends into one group-commit fsync"
        ),
    )
    # (batch_max, pipeline_depth, accept_coalescing, fsync_coalesce ms).
    # batch 0 = batching off; pipe 0 = unbounded in-flight slots.
    cells = [
        (0, 0, False, 0.0),   # defaults: the seed write path
        (16, 0, False, 0.0),  # slot batching only
        (0, 8, True, 0.0),    # pipelining + accept coalescing only
        (16, 8, True, 0.0),   # full stack minus group commit
        (16, 8, True, 2.0),   # full stack
    ]
    if not quick:
        cells += [
            (4, 0, False, 0.0),
            (16, 4, True, 0.0),
            (16, 8, True, 1.0),
            (16, 16, True, 2.0),
        ]
    duration = 12.0 if quick else 30.0
    n_clients = 48 if quick else 64
    for batch_max, pipe, coalesce, coalesce_ms in cells:
        paxos = PaxosConfig(
            heartbeat_interval=0.15,
            election_timeout=0.7,
            lease_duration=0.5,
            retry_interval=0.4,
            compact_threshold=400,
            batch=batch_max > 0,
            batch_window=0.003,
            batch_max=batch_max or 16,
            pipeline_depth=pipe,
            accept_coalescing=coalesce,
        )
        config = experiment_scatter_config(
            paxos=paxos,
            storage=StorageConfig(fsync_coalesce=coalesce_ms / 1000.0),
        )
        config.op_service_time = 0.0002
        config.msg_service_time = 0.001
        params = DeploymentParams(n_nodes=9, n_groups=3, n_clients=n_clients, seed=seed)
        deployment = build_scatter_deployment(params, config=config)
        sim, net, system = deployment.sim, deployment.net, deployment.system
        workload = ClosedLoopWorkload(
            sim, deployment.clients, UniformKeys(60), read_fraction=0.1, think_time=0.0
        )
        workload.start()
        sim.run_for(3.0)
        start = sim.now
        msgs_before = net.stats.sent
        fsyncs_before = _total_fsyncs(system)
        sim.run_for(duration)
        msgs = net.stats.sent - msgs_before
        fsyncs = _total_fsyncs(system) - fsyncs_before
        workload.stop()
        sim.run_for(1.0)
        metrics = workload_metrics(workload.all_records(), window=(start, start + duration))
        completed = max(1, metrics["completed"])
        result.add(
            batch=batch_max,
            pipe=pipe,
            coalesce_ms=coalesce_ms,
            ops_per_s=metrics["completed"] / duration,
            p50_ms=1000 * metrics["latency_p50"],
            p99_ms=1000 * metrics["latency_p99"],
            p999_ms=1000 * metrics["latency_p999"],
            msgs_per_op=msgs / completed,
            fsyncs_per_op=fsyncs / completed,
            violations=metrics["violations"],
        )
    return result


def run_e20(quick: bool = True, seed: int = 20) -> ExperimentResult:
    """Read scale-out: follower reads vs leader-only, by replica count.

    One group whose size is the swept variable, a read-heavy closed
    loop, and a per-operation CPU cost at the serving node: leader-only
    reads saturate one CPU no matter how many replicas the group has,
    while follower reads (round-robin routing) spread Gets across all
    of them.  Every cell runs the linearizability checker — the scaling
    must come at an unchanged consistency bar.
    """
    result = ExperimentResult(
        experiment="E20",
        title="E20: read throughput vs replica count — follower reads vs leader-only",
        columns=[
            "replicas", "follower_reads", "ops_per_s", "reads_per_s",
            "read_x", "p50_ms", "p99_ms", "violations",
        ],
        notes=(
            "single group, 90% reads, closed loop, 2 ms CPU per op at the "
            "serving node: leader-only Gets queue on one CPU; with "
            "follower_reads on and round_robin routing they spread across "
            "all replicas.  read_x is read throughput relative to the "
            "leader-only cell at the same replica count (writes still "
            "serialize through the leader either way)"
        ),
    )
    replica_counts = [1, 3, 5] if quick else [1, 3, 5, 7]
    duration = 8.0 if quick else 20.0
    n_clients = 24 if quick else 48
    baseline_reads: dict[int, float] = {}
    for replicas in replica_counts:
        for follower_reads in (False, True):
            paxos = PaxosConfig(
                heartbeat_interval=0.15,
                election_timeout=0.7,
                lease_duration=0.5,
                retry_interval=0.4,
                compact_threshold=400,
                follower_reads=follower_reads,
            )
            config = experiment_scatter_config(paxos=paxos)
            config.op_service_time = 0.002
            policy = ScatterPolicy(
                target_size=replicas,
                split_size=2 * replicas + 1,
                merge_size=max(1, replicas - 2),
            )
            params = DeploymentParams(
                n_nodes=replicas, n_groups=1, n_clients=n_clients, seed=seed
            )
            deployment = build_scatter_deployment(
                params,
                policy=policy,
                config=config,
                client_config=ClientConfig(
                    read_routing="round_robin" if follower_reads else "leader"
                ),
            )
            sim = deployment.sim
            workload = ClosedLoopWorkload(
                sim, deployment.clients, UniformKeys(40), read_fraction=0.9, think_time=0.0
            )
            workload.start()
            sim.run_for(3.0)
            start = sim.now
            sim.run_for(duration)
            workload.stop()
            sim.run_for(1.0)
            records = workload.all_records()
            metrics = workload_metrics(records, window=(start, start + duration))
            reads_per_s = (
                sum(
                    1
                    for r in records
                    if r.op == "get" and r.completed and start <= r.response_time <= start + duration
                )
                / duration
            )
            if not follower_reads:
                baseline_reads[replicas] = max(reads_per_s, 1e-9)
            result.add(
                replicas=replicas,
                follower_reads=follower_reads,
                ops_per_s=metrics["completed"] / duration,
                reads_per_s=reads_per_s,
                read_x=reads_per_s / baseline_reads[replicas],
                p50_ms=1000 * metrics["latency_p50"],
                p99_ms=1000 * metrics["latency_p99"],
                violations=metrics["violations"],
            )
    return result


# ---------------------------------------------------------------------------
# E21: large-ring scale-out (thousands of nodes in one simulated deployment)
# ---------------------------------------------------------------------------
def run_e21(quick: bool = True, seed: int = 21) -> ExperimentResult:
    """Throughput and routing quality as the ring grows to paper scale.

    E6 stops at 240 nodes; this experiment rides the simulator's
    constant-cost event path (direct-dispatch delivery, message-entry
    pooling) and the clients' precomputed bisect routing tables
    (``ClientConfig.route_table``) to thousands of nodes in a single
    deployment — the regime Scatter's scalability story is actually
    about.  Client caches are sized to hold the whole ring, so a warm
    client resolves any key in O(log groups) locally and one hop
    remotely; ``hops_per_op`` staying ~1 across the sweep is the
    routing-scalability claim, flat ``p50`` is the latency claim, and
    near-linear ``ops_per_s`` (client count grows with the ring) is the
    throughput claim.
    """
    result = ExperimentResult(
        experiment="E21",
        title="E21: large-ring scale-out — throughput and routing at thousands of nodes",
        columns=[
            "nodes", "groups", "clients", "ops_per_s", "p50_ms",
            "hops_per_op", "msgs_per_op", "sim_events",
        ],
        notes=(
            "whole-ring client caches with precomputed routing tables "
            "(ClientConfig.route_table); closed-loop clients scale with "
            "nodes; hops_per_op ~ 1 means routing stays O(1) network "
            "hops as the ring grows; sim_events is the deterministic "
            "event count per measurement window"
        ),
    )
    sizes = [120, 240] if quick else [500, 1000, 2000]
    duration = 6.0 if quick else 30.0
    total_events = 0
    total_wall = 0.0
    for n in sizes:
        wall_start = time.perf_counter()
        n_groups = n // 3
        params = DeploymentParams(
            n_nodes=n, n_groups=n_groups, n_clients=max(2, n // 50), seed=seed
        )
        deployment = build_scatter_deployment(
            params,
            client_config=ClientConfig(route_table=True, cache_size=n_groups + 16),
        )
        sim, clients = deployment.sim, deployment.clients
        workload = ClosedLoopWorkload(
            sim, clients, UniformKeys(8 * n), read_fraction=0.9, think_time=0.0
        )
        workload.start()
        sim.run_for(2.0)  # warm the client caches before measuring
        start = sim.now
        msgs_before = deployment.net.stats.sent
        events_before = sim.events_processed
        sim.run_for(duration)
        msgs_during = deployment.net.stats.sent - msgs_before
        events_during = sim.events_processed - events_before
        workload.stop()
        sim.run_for(1.0)
        records = workload.all_records()
        metrics = workload_metrics(records, window=(start, start + duration))
        hops = [
            r.hops
            for r in records
            if r.completed and start <= r.invoke_time < start + duration
        ]
        result.add(
            nodes=n,
            groups=n_groups,
            clients=params.n_clients,
            ops_per_s=metrics["completed"] / duration,
            p50_ms=1000 * metrics["latency_p50"],
            hops_per_op=mean(hops) if hops else float("nan"),
            msgs_per_op=msgs_during / max(1, metrics["completed"]),
            sim_events=events_during,
        )
        total_events += sim.events_processed
        total_wall += time.perf_counter() - wall_start
    result.perf = {
        "events_per_s_wall": round(total_events / total_wall, 1) if total_wall else 0.0,
        "total_sim_events": total_events,
        "wall_s": round(total_wall, 2),
    }
    return result


EXPERIMENT_TITLES = {
    "E1": "inconsistent lookups in a Chord-style DHT vs churn (motivation)",
    "E2": "linearizability violations, Scatter vs Chord, under churn (headline)",
    "E3": "operation availability vs churn",
    "E4": "Scatter client latency vs churn",
    "E5": "latency of group operations (split/merge/migrate/repartition/join)",
    "E6": "aggregate throughput vs system size",
    "E7": "group failure probability vs group size (resilience knob)",
    "E8": "load balance: midpoint vs load-median split keys",
    "E9": "latency policy: random vs latency-aware leader placement",
    "E10": "Chirp (Twitter clone) on Scatter vs Chord",
    "E11": "ablation: leader leases vs log reads",
    "E12": "ablation: non-blocking 2PC vs classic 2PC",
    "E13": "bonus: cold lookup hops vs ring size (gossip ablation)",
    "E14": "bonus: latency-throughput saturation curve",
    "E15": "bonus: Paxos write batching ablation",
    "E16": "availability and recovery under gray failures vs clean crashes",
    "E17": "crash recovery cost vs snapshot threshold (durable storage)",
    "E18": "data survival under permanent node loss (self-healing vs baselines)",
    "E19": "write-path saturation: batching x pipelining x fsync coalescing",
    "E20": "read scale-out: follower reads vs leader-only, by replica count",
    "E21": "large-ring scale-out: throughput and routing at thousands of nodes",
}

def _with_wall_clock(fn):
    """Registry wrapper: every experiment reports wall-clock time in perf.

    ``perf`` is excluded from result comparisons (see harness.results),
    so stamping it never perturbs determinism checks; experiments that
    populate their own perf keys (E6) keep them — we only fill wall_s
    if the experiment didn't.
    """
    import functools

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        result.perf.setdefault("wall_s", round(time.perf_counter() - started, 2))
        return result

    return wrapper


ALL_EXPERIMENTS = {
    name: _with_wall_clock(fn)
    for name, fn in {
        "E1": run_e01,
        "E2": run_e02,
        "E3": run_e03,
        "E4": run_e04,
        "E5": run_e05,
        "E6": run_e06,
        "E7": run_e07,
        "E8": run_e08,
        "E9": run_e09,
        "E10": run_e10,
        "E11": run_e11,
        "E12": run_e12,
        "E13": run_e13,
        "E14": run_e14,
        "E15": run_e15,
        "E16": run_e16,
        "E17": run_e17,
        "E18": run_e18,
        "E19": run_e19,
        "E20": run_e20,
        "E21": run_e21,
    }.items()
}


def run_traced(name: str, tracer=None, quick: bool = True, seed: int | None = None):
    """Run one experiment with ``repro.obs`` tracing enabled.

    Installs ``tracer`` (a fresh one when None) ambiently for the
    duration of the run, so every simulator the experiment builds binds
    to it, then returns ``(result, tracer)``.  Any experiment can opt
    in this way — the experiment functions themselves need no tracing
    parameter.  Tracing never perturbs results: the returned result is
    identical to an untraced run with the same arguments.
    """
    from repro.obs import Tracer, tracing

    key = name.upper()
    if key not in ALL_EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}")
    if tracer is None:
        tracer = Tracer()
    kwargs: dict = {"quick": quick}
    if seed is not None:
        kwargs["seed"] = seed
    with tracing(tracer):
        result = ALL_EXPERIMENTS[key](**kwargs)
    return result, tracer

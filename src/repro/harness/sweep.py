"""Parallel sweep runner: shard (experiment, seed) cells across processes.

A *sweep* runs one experiment over many seeds (or many experiments at
their default seeds) and merges the per-cell tables into a single
:class:`ExperimentResult`.  The cells are embarrassingly parallel — each
one builds its own simulator from ``(experiment, seed)`` and nothing
else — so the runner shards them across worker processes with
:class:`~concurrent.futures.ProcessPoolExecutor`.

The contract that makes this safe to use for paper tables:

* **Byte-identical merges.**  The merged result is assembled from the
  per-cell rows in cell-index order, never completion order, so
  ``run_sweep(..., workers=8).merged.table()`` is byte-for-byte the
  string ``run_sweep(..., workers=1)`` produces.  Worker count and OS
  scheduling can change *when* a cell runs, never *what* it computes or
  *where* its rows land.  ``tests/test_sweep_determinism.py`` holds this
  line.

* **Deterministic seed derivation.**  When the caller asks for *n*
  derived seeds instead of passing them explicitly, each cell's seed is
  a pure function of ``(master_seed, experiment, cell_index)`` via the
  process-independent FNV hash used for simulator RNG streams — no
  worker identity, no scheduling order, no wall clock.  Distinct cells
  get distinct seeds (64-bit FNV; the property test hammers this).

* **Spawn, not fork.**  Workers use the ``spawn`` start method so each
  cell runs in a pristine interpreter: no inherited module state, no
  accidentally-shared caches, and identical behavior on platforms where
  fork is unavailable or unsafe.

Wall-clock numbers (per-cell and total) ride in ``merged.perf`` — the
rendered footer — and are excluded from :meth:`ExperimentResult.table`,
exactly like single-experiment perf footers.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.harness.results import ExperimentResult
from repro.sim.loop import _stable_hash


def derive_seed(master_seed: int, experiment: str, index: int) -> int:
    """Deterministic per-cell seed: pure in (master, experiment, index).

    Uses the same process-independent FNV-1a hash the simulator uses for
    named RNG streams, so a sweep is fully described by its master seed
    and grid — re-running it anywhere reproduces every cell.  The full
    64-bit range keeps distinct cells collision-free in practice.
    """
    return _stable_hash(f"sweep:{master_seed}:{experiment}:{index}")


def cell_fingerprint(table: str) -> str:
    """Stable 64-bit digest of a cell's deterministic table text.

    Every RNG draw an experiment makes feeds its rows, so two runs with
    identical fingerprints consumed identical random streams — this is
    the cheap cross-process equality check the determinism suite (and
    the ``--fingerprints`` CLI flag) compares.
    """
    return f"{_stable_hash(table):016x}"


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: an experiment at one seed.

    ``seed=None`` means "the experiment's registered default" — used
    when sharding whole experiments (``run_full_experiments.py``)
    rather than seeds of a single experiment.
    """

    experiment: str
    seed: int | None
    quick: bool = True


@dataclass
class CellResult:
    """What comes back from one cell, pickled across the process gap."""

    index: int
    cell: SweepCell
    columns: list[str]
    rows: list[dict]
    title: str
    notes: str
    table: str
    rendered: str
    perf: dict
    fingerprint: str


@dataclass
class SweepResult:
    experiment: str
    workers: int
    cells: list[CellResult] = field(default_factory=list)
    merged: ExperimentResult | None = None

    def fingerprints(self) -> list[tuple[int | None, str]]:
        """(seed, fingerprint) per cell, in cell order."""
        return [(c.cell.seed, c.fingerprint) for c in self.cells]


def _run_cell(payload: tuple[int, SweepCell]) -> CellResult:
    """Worker entry point: run one cell and ship its result home.

    Top-level (picklable) and self-contained: a spawned interpreter
    imports this module, runs the experiment, and returns plain data.
    """
    index, cell = payload
    from repro.harness.experiments import ALL_EXPERIMENTS

    fn = ALL_EXPERIMENTS[cell.experiment]
    kwargs: dict = {"quick": cell.quick}
    if cell.seed is not None:
        kwargs["seed"] = cell.seed
    result = fn(**kwargs)
    table = result.table()
    return CellResult(
        index=index,
        cell=cell,
        columns=list(result.columns),
        rows=list(result.rows),
        title=result.title,
        notes=result.notes,
        table=table,
        rendered=result.render(),
        perf=dict(result.perf),
        fingerprint=cell_fingerprint(table),
    )


def _ensure_child_pythonpath() -> None:
    """Make sure spawned workers can ``import repro``.

    Spawn starts a fresh interpreter that inherits the environment but
    not ``sys.path`` mutations (conftest path inserts, ``pip install
    -e``-less source trees).  Prepending this source root to PYTHONPATH
    covers every launch style; a no-op when it is already there.
    """
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if src_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([src_root, *parts])


def map_cells(cells: list[SweepCell], workers: int) -> list[CellResult]:
    """Run every cell, serially or across processes; results in cell order.

    ``workers <= 1`` runs in-process with no multiprocessing machinery
    at all — the reference execution the parallel path must match.
    ``Executor.map`` returns results in submission order regardless of
    completion order, which is what keeps merges order-deterministic.
    """
    indexed = list(enumerate(cells))
    if workers <= 1:
        return [_run_cell(item) for item in indexed]
    import multiprocessing as mp

    _ensure_child_pythonpath()
    ctx = mp.get_context("spawn")
    n = min(workers, len(indexed)) or 1
    with ProcessPoolExecutor(max_workers=n, mp_context=ctx) as pool:
        return list(pool.map(_run_cell, indexed))


def run_sweep(
    experiment: str,
    seeds: list[int],
    quick: bool = True,
    workers: int = 1,
) -> SweepResult:
    """Run ``experiment`` once per seed and merge the tables.

    The merged result prefixes every row with its ``seed`` column and
    concatenates cells in seed-list order.  Its :meth:`~repro.harness.
    results.ExperimentResult.table` output is independent of
    ``workers`` — that is the whole point.
    """
    cells = [SweepCell(experiment=experiment, seed=s, quick=quick) for s in seeds]
    results = map_cells(cells, workers)
    merged = ExperimentResult(
        experiment=experiment,
        title=f"{experiment} sweep over {len(seeds)} seeds",
        columns=["seed"] + (results[0].columns if results else []),
        notes=results[0].notes if results else "",
    )
    for cell_result in results:
        for row in cell_result.rows:
            merged.add(seed=cell_result.cell.seed, **row)
    merged.perf = {
        "workers": workers,
        "cells": len(cells),
        "cell_wall_s": round(
            sum(c.perf.get("wall_s", 0.0) for c in results), 2
        ),
    }
    return SweepResult(experiment=experiment, workers=workers, cells=results, merged=merged)


def run_experiments_parallel(
    names: list[str], quick: bool, workers: int
) -> list[CellResult]:
    """Shard whole experiments (at their default seeds) across workers.

    The ``run_full_experiments.py --workers N`` path: each experiment is
    one cell; results come back in ``names`` order with the rendered
    table (perf footer included) ready to write to disk.
    """
    cells = [SweepCell(experiment=name, seed=None, quick=quick) for name in names]
    return map_cells(cells, workers)

"""Experiment harness: builders, metric collection, and the experiment
entry points (E1–E20) that regenerate the paper's tables and figures."""

from repro.harness.results import ExperimentResult, format_table
from repro.harness.builders import (
    DeploymentParams,
    build_chord_deployment,
    build_scatter_deployment,
)
from repro.harness.metrics import workload_metrics

__all__ = [
    "DeploymentParams",
    "ExperimentResult",
    "build_chord_deployment",
    "build_scatter_deployment",
    "format_table",
    "workload_metrics",
]

"""Result containers and plain-text table rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """Rows regenerating one of the paper's tables or figures.

    ``rows`` are deterministic in (configuration, seed) — the
    determinism tests compare them byte-for-byte.  Wall-clock
    measurements (simulator events/sec and friends) therefore live in
    ``perf``, which is rendered but never compared.
    """

    experiment: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""
    perf: dict = field(default_factory=dict)

    def add(self, **row) -> None:
        self.rows.append(row)

    def column(self, name: str) -> list:
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        table = self.table()
        if self.perf:
            parts = ", ".join(f"{k}={_fmt(v)}" for k, v in self.perf.items())
            table += f"\nwall-clock: {parts}"
        return table

    def table(self) -> str:
        """The deterministic part of :meth:`render` — no perf footer.

        This is the string the sweep determinism suite compares
        byte-for-byte between serial and parallel runs (wall-clock can
        never agree, so it stays out).
        """
        return format_table(self.title, self.columns, self.rows, self.notes)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def format_table(title: str, columns: list[str], rows: list[dict], notes: str = "") -> str:
    """Fixed-width table, like the paper's result listings."""
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(columns[i]), max((len(r[i]) for r in cells), default=0))
        for i in range(len(columns))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    if notes:
        lines.append("")
        lines.append(f"note: {notes}")
    return "\n".join(lines)

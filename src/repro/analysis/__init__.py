"""Consistency checking, liveness watchdog, and statistics over histories."""

from repro.analysis.linearizability import (
    CheckResult,
    check_history,
    check_key_history,
    wing_gong_check,
)
from repro.analysis.liveness import (
    GroupQuorumWatch,
    LivenessWatchdog,
    QuorumVerdict,
    Stall,
)
from repro.analysis.stats import cdf_points, mean, percentile, summarize_latencies

__all__ = [
    "CheckResult",
    "GroupQuorumWatch",
    "LivenessWatchdog",
    "QuorumVerdict",
    "Stall",
    "cdf_points",
    "check_history",
    "check_key_history",
    "mean",
    "percentile",
    "summarize_latencies",
    "wing_gong_check",
]

"""Liveness watchdog: detect progress stalls in a running simulation.

Safety checks (linearizability, agreement) pass trivially on a system
that has wedged — no operations, no violations.  The watchdog closes
that hole: it samples a monotonic *progress probe* (completed client
ops, summed commit indexes, applied-log length, ...) on a timer and
records every window of simulated time longer than ``window`` in which
the probe did not advance.  Fault tests can then assert *recovery* —
"the system stalled during the partition but resumed within N seconds
of the heal" — instead of safety alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.loop import Simulator


@dataclass(frozen=True)
class Stall:
    """One interval with no observed progress.

    ``start`` is the time of the last progress before the stall;
    ``end`` is when progress was next observed (or the watchdog
    stopped).  ``open`` marks a stall still unresolved at stop time.
    """

    start: float
    end: float
    open: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


class LivenessWatchdog:
    """Samples a progress probe and records stalls.

    ``probe`` must be monotonically non-decreasing (a counter).  The
    watchdog polls every ``check_interval`` (default ``window / 4``),
    so stall boundaries are accurate to one poll interval.
    """

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        window: float = 5.0,
        check_interval: float | None = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.probe = probe
        self.window = window
        self.check_interval = check_interval if check_interval is not None else window / 4
        self.stalls: list[Stall] = []
        self.running = False
        self._last_value: float | None = None
        self._last_progress = 0.0
        self._in_stall = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._last_value = self.probe()
        self._last_progress = self.sim.now
        self._in_stall = False
        self.sim.schedule(self.check_interval, self._tick)

    def stop(self) -> None:
        """Stop sampling; an unresolved stall is recorded as open."""
        if not self.running:
            return
        self.running = False
        self._check_now()
        if self._in_stall:
            self.stalls.append(Stall(self._last_progress, self.sim.now, open=True))
            self._in_stall = False

    def _tick(self) -> None:
        if not self.running:
            return
        self._check_now()
        self.sim.schedule(self.check_interval, self._tick)

    def _check_now(self) -> None:
        value = self.probe()
        now = self.sim.now
        if self._last_value is None or value > self._last_value:
            if self._in_stall:
                self.stalls.append(Stall(self._last_progress, now))
                self._in_stall = False
            self._last_value = value
            self._last_progress = now
        elif not self._in_stall and now - self._last_progress >= self.window:
            self._in_stall = True

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def stalled_now(self) -> bool:
        return self._in_stall

    @property
    def stall_count(self) -> int:
        return len(self.stalls)

    @property
    def max_stall(self) -> float:
        return max((s.duration for s in self.stalls), default=0.0)

    @property
    def total_stalled(self) -> float:
        return sum(s.duration for s in self.stalls)

    @property
    def unrecovered(self) -> bool:
        """Did the run end inside a stall (no recovery observed)?"""
        return any(s.open for s in self.stalls)

    def assert_recovered(self) -> None:
        """Raise AssertionError if the final stall never resolved."""
        if self.unrecovered:
            last = self.stalls[-1]
            raise AssertionError(
                f"liveness: no progress since t={last.start:.3f} "
                f"({last.duration:.3f}s stalled at stop)"
            )

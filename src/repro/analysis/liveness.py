"""Liveness watchdog: detect progress stalls in a running simulation.

Safety checks (linearizability, agreement) pass trivially on a system
that has wedged — no operations, no violations.  The watchdog closes
that hole: it samples a monotonic *progress probe* (completed client
ops, summed commit indexes, applied-log length, ...) on a timer and
records every window of simulated time longer than ``window`` in which
the probe did not advance.  Fault tests can then assert *recovery* —
"the system stalled during the partition but resumed within N seconds
of the heal" — instead of safety alone.

:class:`GroupQuorumWatch` renders the companion verdict for *groups*:
a consensus group that has permanently lost quorum (a majority of its
members are gone or amnesiac) can never elect a leader again, so it
will stall forever by design — repair cannot touch it, and the
``replication-floor`` invariant deliberately skips it.  The watch
samples per-group voting strength and distinguishes "permanently below
quorum since t=X" (dead) from "dipped below quorum and recovered"
(transient), reporting the first-below-quorum timestamp for each dead
group.  Like the watchdog, it is probe-driven and knows nothing about
any particular system type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.loop import Simulator


@dataclass(frozen=True)
class Stall:
    """One interval with no observed progress.

    ``start`` is the time of the last progress before the stall;
    ``end`` is when progress was next observed (or the watchdog
    stopped).  ``open`` marks a stall still unresolved at stop time.
    """

    start: float
    end: float
    open: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


class LivenessWatchdog:
    """Samples a progress probe and records stalls.

    ``probe`` must be monotonically non-decreasing (a counter).  The
    watchdog polls every ``check_interval`` (default ``window / 4``),
    so stall boundaries are accurate to one poll interval.
    """

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        window: float = 5.0,
        check_interval: float | None = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.probe = probe
        self.window = window
        self.check_interval = check_interval if check_interval is not None else window / 4
        self.stalls: list[Stall] = []
        self.running = False
        self._last_value: float | None = None
        self._last_progress = 0.0
        self._in_stall = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._last_value = self.probe()
        self._last_progress = self.sim.now
        self._in_stall = False
        self.sim.schedule(self.check_interval, self._tick)

    def stop(self) -> None:
        """Stop sampling; an unresolved stall is recorded as open."""
        if not self.running:
            return
        self.running = False
        self._check_now()
        if self._in_stall:
            self.stalls.append(Stall(self._last_progress, self.sim.now, open=True))
            self._in_stall = False

    def _tick(self) -> None:
        if not self.running:
            return
        self._check_now()
        self.sim.schedule(self.check_interval, self._tick)

    def _check_now(self) -> None:
        value = self.probe()
        now = self.sim.now
        if self._last_value is None or value > self._last_value:
            if self._in_stall:
                self.stalls.append(Stall(self._last_progress, now))
                self._in_stall = False
            self._last_value = value
            self._last_progress = now
        elif not self._in_stall and now - self._last_progress >= self.window:
            self._in_stall = True

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def stalled_now(self) -> bool:
        return self._in_stall

    @property
    def stall_count(self) -> int:
        return len(self.stalls)

    @property
    def max_stall(self) -> float:
        return max((s.duration for s in self.stalls), default=0.0)

    @property
    def total_stalled(self) -> float:
        return sum(s.duration for s in self.stalls)

    @property
    def unrecovered(self) -> bool:
        """Did the run end inside a stall (no recovery observed)?"""
        return any(s.open for s in self.stalls)

    def assert_recovered(self) -> None:
        """Raise AssertionError if the final stall never resolved."""
        if self.unrecovered:
            last = self.stalls[-1]
            raise AssertionError(
                f"liveness: no progress since t={last.start:.3f} "
                f"({last.duration:.3f}s stalled at stop)"
            )


@dataclass(frozen=True)
class QuorumVerdict:
    """Terminal quorum health of one consensus group.

    ``verdict`` is ``"dead"`` (below quorum at stop — permanently, since
    a group without quorum cannot act to regain it), ``"transient"``
    (dipped below quorum at some point but held it at stop), or
    ``"healthy"`` (never observed below quorum).  ``first_below`` is
    the start of the below-quorum window that was still open at stop
    (dead groups only); ``dips`` counts recovered below-quorum windows.
    """

    gid: str
    verdict: str
    first_below: float | None
    dips: int


class GroupQuorumWatch:
    """Samples per-group voting strength and issues quorum verdicts.

    ``probe`` returns ``{gid: (voting, members)}`` — live replicas able
    to vote vs. the group's configured membership size — for every
    group that currently exists.  A group that disappears between
    samples was retired legitimately (merged away) and is dropped from
    the report; death is only ever declared for a group still present
    at the final sample.  Poll accuracy is one ``check_interval``.
    """

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], dict[str, tuple[int, int]]],
        check_interval: float = 1.0,
    ) -> None:
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.sim = sim
        self.probe = probe
        self.check_interval = check_interval
        self.running = False
        self._below_since: dict[str, float] = {}
        self._dips: dict[str, int] = {}
        self._last_sample: dict[str, tuple[int, int]] = {}

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._sample()
        self.sim.schedule(self.check_interval, self._tick)

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self._sample()

    def _tick(self) -> None:
        if not self.running:
            return
        self._sample()
        self.sim.schedule(self.check_interval, self._tick)

    def _sample(self) -> None:
        sample = self.probe()
        now = self.sim.now
        for gid in list(self._below_since):
            if gid not in sample:
                # Retired between samples — a merged-away group is not
                # a dead one, and its dip history dies with it.
                del self._below_since[gid]
                self._dips.pop(gid, None)
        for gid, (voting, members) in sample.items():
            below = voting < members // 2 + 1
            if below:
                self._below_since.setdefault(gid, now)
            elif gid in self._below_since:
                del self._below_since[gid]
                self._dips[gid] = self._dips.get(gid, 0) + 1
        self._last_sample = sample

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def verdicts(self) -> dict[str, QuorumVerdict]:
        """Verdict per group present at the final sample."""
        out: dict[str, QuorumVerdict] = {}
        for gid in sorted(self._last_sample):
            first = self._below_since.get(gid)
            dips = self._dips.get(gid, 0)
            if first is not None:
                verdict = "dead"
            elif dips:
                verdict = "transient"
            else:
                verdict = "healthy"
            out[gid] = QuorumVerdict(gid, verdict, first, dips)
        return out

    def dead_groups(self) -> dict[str, float]:
        """``{gid: first_below_quorum_time}`` for groups dead at stop."""
        return {
            gid: v.first_below
            for gid, v in self.verdicts().items()
            if v.verdict == "dead"
        }

"""Linearizability checking over per-key register histories.

Two checkers are provided:

- :func:`check_key_history` — a fast *sound* checker exploiting unique
  write values.  It flags the violation classes the paper's experiments
  count (stale reads, lost acked writes, phantom reads) and never
  reports a false positive; a pathological interleaving could slip past
  it, so it is a lower bound on violations — the right polarity for the
  claim "Scatter has zero violations".
- :func:`wing_gong_check` — an exhaustive Wing & Gong style search,
  exponential in history size, used on small histories (tests, spot
  checks) and to validate the fast checker.

Histories come from client :class:`~repro.dht.client.OpRecord` lists.
An operation that timed out is *pending*: it may or may not have taken
effect, so its write value is legal to read but never required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

NOT_FOUND = "__not_found__"


@dataclass
class _Write:
    value: object
    invoke: float
    response: float
    acked: bool  # completed ok; pending (timeout) writes are not acked


@dataclass
class _Read:
    value: object  # NOT_FOUND for a miss
    invoke: float
    response: float


@dataclass
class Violation:
    key: int
    kind: str
    detail: str
    time: float


@dataclass
class CheckResult:
    total_reads: int = 0
    total_writes: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def violation_fraction(self) -> float:
        if self.total_reads == 0:
            return 0.0
        return len(self.violations) / self.total_reads


def _partition(records: Iterable) -> tuple[list[_Write], list[_Read]]:
    writes: list[_Write] = []
    reads: list[_Read] = []
    for r in records:
        if r.op == "put":
            # A put with no result yet (still in flight when the run
            # ended) or a timed-out put may nevertheless have been
            # applied server-side: keep it as a pending (unacked,
            # unbounded-end) write so a later read of its value is a
            # legal reads-from, not a phantom.
            acked = r.completed and r.result is not None and r.result.ok
            # An unacked write's effect is unbounded in time: the server
            # may apply it after the client's timeout response arrived.
            end = r.response_time if acked and r.response_time >= 0 else float("inf")
            writes.append(_Write(r.value, r.invoke_time, end, acked))
        elif r.op == "get":
            if not r.completed or r.result is None:
                continue  # a timed-out or unresolved read constrains nothing
            value = r.result.value if r.result.ok else NOT_FOUND
            reads.append(_Read(value, r.invoke_time, r.response_time))
    return writes, reads


def check_key_history(
    key: int, records: list, window: tuple[float, float] | None = None
) -> CheckResult:
    """Fast sound checker for one key's history (unique write values).

    ``window`` restricts which *reads* are judged (and counted); writes
    are always taken from the full history — a read inside the window may
    legitimately return a value written before it.
    """
    writes, reads = _partition(records)
    if window is not None:
        lo, hi = window
        reads = [r for r in reads if lo <= r.invoke < hi]
    result = CheckResult(total_reads=len(reads), total_writes=len(writes))
    by_value = {w.value: w for w in writes}

    for read in reads:
        if read.value == NOT_FOUND:
            # A miss is illegal once some acked write finished before the
            # read began (nothing deletes keys in checker workloads).
            culprit = next(
                (w for w in writes if w.acked and w.response < read.invoke), None
            )
            if culprit is not None:
                result.violations.append(
                    Violation(key, "lost_write", f"miss after write {culprit.value!r}", read.invoke)
                )
            continue
        source = by_value.get(read.value)
        if source is None:
            result.violations.append(
                Violation(key, "phantom_read", f"value {read.value!r} never written", read.invoke)
            )
            continue
        if source.invoke > read.response:
            result.violations.append(
                Violation(key, "future_read", f"read {read.value!r} before its write began", read.invoke)
            )
            continue
        # Stale read: some other acked write finished before the read
        # began AND began after the source write finished — so the
        # register definitely held a newer value throughout the read.
        for other in writes:
            if other is source or not other.acked:
                continue
            if other.response < read.invoke and other.invoke > source.response:
                result.violations.append(
                    Violation(
                        key,
                        "stale_read",
                        f"read {read.value!r} but {other.value!r} strictly newer",
                        read.invoke,
                    )
                )
                break
    return result


def check_history(records: list, window: tuple[float, float] | None = None) -> CheckResult:
    """Group records by key and check each key independently."""
    by_key: dict[int, list] = {}
    for r in records:
        by_key.setdefault(r.key, []).append(r)
    combined = CheckResult()
    for key, recs in sorted(by_key.items()):
        single = check_key_history(key, recs, window=window)
        combined.total_reads += single.total_reads
        combined.total_writes += single.total_writes
        combined.violations.extend(single.violations)
    return combined


# ---------------------------------------------------------------------------
# Exhaustive checker (small histories)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Op:
    """An operation for the exhaustive checker."""

    kind: str  # "read" | "write"
    value: object
    invoke: float
    response: float  # inf for pending ops


def wing_gong_check(ops: list[Op], initial: object = NOT_FOUND, max_ops: int = 18) -> bool:
    """Exhaustive register linearizability check (Wing & Gong search).

    Returns True iff a legal linearization exists.  Pending operations
    (response == inf) may linearize anywhere after their invocation or
    not at all.  Exponential: refuses histories above ``max_ops``.
    """
    if len(ops) > max_ops:
        raise ValueError(f"history too large for exhaustive check ({len(ops)} > {max_ops})")
    ops = sorted(ops, key=lambda o: (o.invoke, o.response))
    n = len(ops)
    pending = [o.response == float("inf") for o in ops]

    seen: set[tuple[frozenset, object]] = set()

    def minimal_response(remaining: frozenset) -> float:
        return min(
            (ops[i].response for i in remaining if not pending[i]), default=float("inf")
        )

    def search(remaining: frozenset, state: object) -> bool:
        if all(pending[i] for i in remaining):
            return True  # every leftover op may simply never take effect
        marker = (remaining, state)
        if marker in seen:
            return False
        seen.add(marker)
        bound = minimal_response(remaining)
        for i in sorted(remaining):
            op = ops[i]
            if op.invoke > bound:
                break  # ops invoked after the earliest pending response can wait
            if op.kind == "read":
                if op.value != state:
                    continue
                if search(remaining - {i}, state):
                    return True
            else:
                if search(remaining - {i}, op.value):
                    return True
        return False

    return search(frozenset(range(n)), initial)

"""Small statistics helpers for experiment reporting."""

from __future__ import annotations

from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return float("nan")
    return sum(values) / len(values)


def percentile(values: Sequence[float], p: float) -> float:
    """p in [0, 100]; linear interpolation between order statistics."""
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def cdf_points(values: Sequence[float], n_points: int = 20) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF."""
    ordered = sorted(values)
    if not ordered:
        return []
    points = []
    for i in range(1, n_points + 1):
        frac = i / n_points
        idx = min(int(frac * len(ordered)) - 1, len(ordered) - 1)
        idx = max(idx, 0)
        points.append((ordered[idx], frac))
    return points


def summarize_latencies(latencies: Iterable[float]) -> dict[str, float]:
    values = [v for v in latencies if v >= 0]
    return {
        "count": len(values),
        "mean": mean(values),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "p99": percentile(values, 99),
    }

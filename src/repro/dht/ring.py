"""Circular key space shared by Scatter and the Chord baseline.

Keys are integers in [0, 2^32).  A :class:`KeyRange` is a half-open arc
[lo, hi) that may wrap around zero; the arc with lo == hi is, by
convention, the *full* ring (a single group owning everything — the
state of a freshly bootstrapped system).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

KEY_BITS = 32
KEY_SPACE = 1 << KEY_BITS


def hash_key(name: str) -> int:
    """Map a user-visible string key onto the ring (stable across runs)."""
    digest = hashlib.sha1(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % KEY_SPACE


def ring_distance(a: int, b: int) -> int:
    """Clockwise distance from a to b."""
    return (b - a) % KEY_SPACE


@dataclass(frozen=True)
class KeyRange:
    """Half-open arc [lo, hi) on the ring; lo == hi means the full ring."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo < KEY_SPACE and 0 <= self.hi < KEY_SPACE):
            raise ValueError(f"range endpoints out of key space: {self}")
        if self.lo == self.hi and self.lo != 0:
            # Canonicalize: every full-ring arc is represented as (0, 0)
            # so equality and hashing behave.
            object.__setattr__(self, "lo", 0)
            object.__setattr__(self, "hi", 0)

    @staticmethod
    def full() -> "KeyRange":
        return KeyRange(0, 0)

    @property
    def is_full(self) -> bool:
        return self.lo == self.hi

    @property
    def wraps(self) -> bool:
        return self.lo > self.hi

    def contains(self, key: int) -> bool:
        key %= KEY_SPACE
        if self.is_full:
            return True
        if self.wraps:
            return key >= self.lo or key < self.hi
        return self.lo <= key < self.hi

    def size(self) -> int:
        if self.is_full:
            return KEY_SPACE
        return ring_distance(self.lo, self.hi)

    def midpoint(self) -> int:
        """The key halfway along the arc (used by naive splits)."""
        return (self.lo + self.size() // 2) % KEY_SPACE

    def split_at(self, key: int) -> tuple["KeyRange", "KeyRange"]:
        """Split into [lo, key) and [key, hi); key must lie strictly inside."""
        key %= KEY_SPACE
        if key == self.lo or not self.contains(key):
            raise ValueError(f"split point {key} not strictly inside {self}")
        return KeyRange(self.lo, key), KeyRange(key, self.hi)

    def merge(self, other: "KeyRange") -> "KeyRange":
        """Join with the adjacent arc that starts where this one ends."""
        if self.is_full or other.is_full:
            raise ValueError("cannot merge a full range")
        if self.hi != other.lo:
            raise ValueError(f"{self} and {other} are not adjacent")
        if other.hi == self.lo:
            return KeyRange.full()
        merged = KeyRange(self.lo, other.hi)
        if merged.size() != self.size() + other.size():
            raise ValueError(f"{self} + {other} overlap")
        return merged

    def intervals(self) -> list[tuple[int, int]]:
        """Non-wrapping [lo, hi) integer intervals covering this arc.

        Lets flat stores (which order keys linearly) enumerate an arc
        that wraps around zero.
        """
        if self.is_full:
            return [(0, KEY_SPACE)]
        if self.wraps:
            return [(self.lo, KEY_SPACE), (0, self.hi)]
        return [(self.lo, self.hi)]

    def __str__(self) -> str:
        return f"[{self.lo:#010x}, {self.hi:#010x})"

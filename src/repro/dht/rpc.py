"""Generator helpers for talking to a group (leader discovery, retries)."""

from __future__ import annotations

from typing import Any, Callable

from repro.group.info import GroupInfo
from repro.net.futures import RpcError, RpcTimeout
from repro.net.node import Node


class GroupUnreachable(Exception):
    """No member of the target group produced a usable response."""


def group_request(
    node: Node,
    info: GroupInfo,
    make_msg: Callable[[], Any],
    timeout: float,
    max_attempts: int = 6,
):
    """Generator: RPC a group's leader, following hints and failures.

    Tries the cached ``leader_hint`` first, then other members.  A
    response whose ``status`` is ``not_leader`` redirects to the carried
    hint.  Yields futures (for use under ``spawn``); returns the first
    substantive response.  Raises :class:`GroupUnreachable` when every
    attempt times out or errors.
    """
    ordered = [info.leader_hint] + [m for m in info.members if m != info.leader_hint]
    queue = list(dict.fromkeys(ordered))
    tried: set[str] = set()
    attempts = 0
    while queue and attempts < max_attempts:
        dst = queue.pop(0)
        if dst in tried:
            continue
        tried.add(dst)
        attempts += 1
        try:
            resp = yield node.request(dst, make_msg(), timeout=timeout)
        except (RpcTimeout, RpcError):
            continue
        status = getattr(resp, "status", None)
        hint = getattr(resp, "leader_hint", None)
        if status == "not_leader":
            if hint is not None and hint not in tried:
                queue.insert(0, hint)
            continue
        return resp
    raise GroupUnreachable(f"group {info.gid} unreachable after {attempts} attempts")

"""The Scatter node: hosts group replicas, routes, joins, self-maintains."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.consensus.commands import Command
from repro.consensus.replica import NotLeader, PaxosConfig, ProposalLost
from repro.dht.messages import (
    ClientOpReq,
    ClientOpResp,
    GossipReq,
    GossipResp,
    GroupJoinReq,
    GroupJoinResp,
    GroupLeaveReq,
    GroupMsg,
    GroupNeighborsReq,
    GroupNeighborsResp,
    JoinLookupReq,
    JoinLookupResp,
    TxnAbortReq,
    TxnCommitReq,
    TxnPrepareReq,
    TxnResp,
    TxnStatusReq,
    TxnStatusResp,
    WelcomeMsg,
)
from repro.dht.ring import ring_distance
from repro.dht.rpc import GroupUnreachable, group_request
from repro.group.commands import TxnAbortCmd, TxnCommitCmd
from repro.group.info import GroupGenesis, GroupInfo
from repro.group.replica import GroupReplica, GroupStatus
from repro.net.futures import Future, RpcError, RpcTimeout, spawn
from repro.net.node import Node
from repro.policies import ScatterPolicy
from repro.sim.events import EventHandle
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.storage.disk import NodeDisk, ReplicaStorage, StorageConfig
from repro.txn.spec import (
    GroupPlan,
    MergeSpec,
    MigrateSpec,
    RepartitionSpec,
    SplitSpec,
    TxnDecision,
    TxnSpec,
    new_txn_id,
)


@dataclass
class ScatterConfig:
    """Timing and sizing knobs for a Scatter deployment."""

    paxos: PaxosConfig = field(default_factory=PaxosConfig)
    maintenance_interval: float = 1.0
    dead_timeout: float = 3.0
    txn_rpc_timeout: float = 2.0
    txn_recovery_timeout: float = 8.0
    txn_cooldown: float = 3.0
    gossip_interval: float = 4.0
    retired_linger: float = 45.0
    # A non-leader replica with no leader contact for this long asks
    # around for its group's fate; a "moved" answer retires it locally
    # (the group completed a split/merge while this node was cut off).
    orphan_timeout: float = 10.0
    # Suspicion horizon for *repair* (policy.repair): a member unreachable
    # this long is treated as permanently lost when computing the group's
    # live replication level.  Longer than dead_timeout so transient
    # crashes are removed-and-rejoined without triggering a repair.
    repair_suspicion: float = 6.0
    join_retry: float = 1.0
    routing_cache_size: int = 64
    # CPU service time a node spends per client operation (seconds).
    # Zero disables the queueing model; a positive value makes nodes
    # saturate under offered load, giving the classic latency-throughput
    # curve (experiment E14).
    op_service_time: float = 0.0
    # CPU service time per inbound *group* (Paxos) message, through the
    # same per-node CPU queue as op_service_time.  Models deployments
    # where per-message constant costs (syscalls, dispatch, serialization)
    # dominate the write path — exactly what accept coalescing and batch
    # commands amortize.  Zero (default) keeps message handling free.
    msg_service_time: float = 0.0
    # Durable-storage model (repro.storage).  None keeps the historical
    # fiction (restart recovers the replica object perfectly and no disk
    # events exist); a StorageConfig gives every node a simulated disk
    # with WAL + snapshots, power-failure crash semantics, and real
    # recovery on restart.
    storage: "StorageConfig | None" = None


class _GroupTransport:
    """Frames a replica's Paxos traffic with its group id."""

    def __init__(self, node: "ScatterNode", gid: str) -> None:
        self._node = node
        self._gid = gid

    @property
    def now(self) -> float:
        return self._node.sim.now

    @property
    def tracer(self) -> Any:
        return self._node.sim.tracer

    def send(self, dst: str, msg: Any) -> None:
        self._node.send(dst, GroupMsg(self._gid, msg))

    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        return self._node.set_timer(delay, fn, *args)

    def rng(self) -> random.Random:
        return self._node.sim.rng(f"paxos:{self._node.node_id}:{self._gid}")


class ScatterNode(Node):
    """A physical Scatter node.

    Hosts one :class:`GroupReplica` per group it belongs to (normally
    one; transiently more around group operations), answers client and
    overlay RPCs, and runs the maintenance loop that embodies the
    configured :class:`ScatterPolicy`.
    """

    def __init__(
        self,
        node_id: str,
        sim: Simulator,
        net: SimNetwork,
        config: ScatterConfig | None = None,
        policy: ScatterPolicy | None = None,
    ) -> None:
        super().__init__(node_id, sim, net)
        self.config = config or ScatterConfig()
        self.policy = policy or ScatterPolicy()
        if self.config.storage is not None:
            self.disk = NodeDisk(node_id, self.config.storage, tracer=sim.tracer)
        self.groups: dict[str, GroupReplica] = {}
        self.forwarding: dict[str, tuple[GroupInfo, ...]] = {}
        self.txn_outcomes: dict[str, tuple[TxnDecision, dict]] = {}
        self.cache: dict[str, GroupInfo] = {}
        self.coordinating: set[str] = set()
        self._retired_at: dict[str, float] = {}
        self._last_txn_attempt: dict[str, float] = {}
        # gid -> sim time the group's live membership first fell below
        # the repair floor (only populated when policy.repair is on).
        self._below_floor_since: dict[str, float] = {}
        self._gid_counter = 0
        self._rng = sim.rng(f"scatter:{node_id}")
        self.stats_txns: dict[str, int] = {}
        self._svc_free_at = 0.0  # CPU queue head for the service model

        self.on(GroupMsg, self._on_group_msg)
        self.on(ClientOpReq, self._on_client_op)
        self.on(JoinLookupReq, self._on_join_lookup)
        self.on(GroupJoinReq, self._on_group_join)
        self.on(GroupLeaveReq, self._on_group_leave)
        self.on(WelcomeMsg, self._on_welcome)
        self.on(TxnPrepareReq, self._on_txn_prepare)
        self.on(TxnCommitReq, self._on_txn_commit)
        self.on(TxnAbortReq, self._on_txn_abort)
        self.on(TxnStatusReq, self._on_txn_status)
        self.on(GroupNeighborsReq, self._on_group_neighbors)
        self.on(GossipReq, self._on_gossip)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin maintenance and gossip (call once the node is in place)."""
        jitter = self._rng.uniform(0.0, self.config.maintenance_interval)
        self.set_timer(jitter, self._maintenance_tick)
        self.set_timer(self._rng.uniform(0.0, self.config.gossip_interval), self._gossip_tick)

    def on_restart(self) -> None:
        for replica in self.groups.values():
            replica.paxos.on_host_restart()
        self.start()

    def start_join(self, seed: str) -> Future:
        """Join the overlay through ``seed``; resolves with the group id."""
        return spawn(self.sim, self._join_proc(seed))

    # ------------------------------------------------------------------
    # GroupHost protocol (called by replicas during apply)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def group_transport(self, gid: str) -> _GroupTransport:
        return _GroupTransport(self, gid)

    def replica_storage(self, gid: str) -> ReplicaStorage | None:
        """Durable region for ``gid`` on this node's disk (None = no disk)."""
        if self.disk is None:
            return None
        return self.disk.storage_for(gid)

    def create_group(self, genesis: GroupGenesis) -> None:
        if genesis.gid in self.groups or genesis.gid in self.forwarding:
            return
        self.groups[genesis.gid] = GroupReplica(self, genesis, self.config.paxos)

    def on_group_retired(self, gid: str, forwarding: tuple[GroupInfo, ...]) -> None:
        self.forwarding[gid] = forwarding
        self._retired_at[gid] = self.sim.now
        self.cache.pop(gid, None)

    def record_txn_outcome(self, txn_id: str, decision: TxnDecision, data: dict) -> None:
        self.txn_outcomes.setdefault(txn_id, (decision, data))

    def after_migrate_commit(self, spec: MigrateSpec, gid: str) -> None:
        # Decouple from the apply path; the follow-up is a fresh proposal.
        self.set_timer(0.0, self._migrate_followup, spec, gid)

    def _migrate_followup(self, spec: MigrateSpec, gid: str) -> None:
        replica = self.groups.get(gid)
        if replica is None or not replica.is_leader:
            return
        if gid == spec.from_gid and spec.node in replica.paxos.members:
            replica.paxos.propose(Command.config("remove", spec.node))
        elif gid == spec.to_gid and spec.node not in replica.paxos.members:
            future = replica.paxos.propose(Command.config("add", spec.node))
            future.add_callback(lambda f: self._send_welcome(f, gid, spec.node))

    def _send_welcome(self, future: Future, gid: str, node: str) -> None:
        replica = self.groups.get(gid)
        if future.exception is None and replica is not None:
            self.send(node, WelcomeMsg(genesis=replica.genesis))

    # ------------------------------------------------------------------
    # Knowledge of the overlay
    # ------------------------------------------------------------------
    def known_groups(self) -> list[GroupInfo]:
        """Best current knowledge: hosted groups, their neighbors, cache."""
        infos: dict[str, GroupInfo] = {}
        for replica in self.groups.values():
            if replica.status is GroupStatus.RETIRED:
                continue
            infos[replica.gid] = replica.info()
            for neighbor in (replica.predecessor, replica.successor):
                if neighbor is not None and neighbor.gid not in infos:
                    infos.setdefault(neighbor.gid, neighbor)
        for gid, info in self.cache.items():
            infos.setdefault(gid, info)
        return [info for gid, info in infos.items() if gid not in self.forwarding]

    def learn(self, info: GroupInfo) -> None:
        """Absorb routing knowledge (bounded cache, forwarding-aware)."""
        if info.gid in self.groups or info.gid in self.forwarding:
            return
        cached = self.cache.get(info.gid)
        if cached is not None and cached.epoch > info.epoch:
            return  # keep the fresher view
        if cached is None and len(self.cache) >= self.config.routing_cache_size:
            self.cache.pop(next(iter(self.cache)))
        self.cache[info.gid] = info

    # ------------------------------------------------------------------
    # Message handlers: Paxos plumbing
    # ------------------------------------------------------------------
    def _on_group_msg(self, src: str, msg: GroupMsg) -> None:
        if self.config.msg_service_time > 0:
            # Same CPU queue as op_service_time: each group message costs
            # msg_service_time of node CPU before it is handled, so a
            # chatty write path saturates the node and coalescing pays.
            start = max(self.sim.now, self._svc_free_at)
            self._svc_free_at = start + self.config.msg_service_time
            self.set_timer(self._svc_free_at - self.sim.now, self._handle_group_msg, src, msg)
            return
        self._handle_group_msg(src, msg)

    def _handle_group_msg(self, src: str, msg: GroupMsg) -> None:
        replica = self.groups.get(msg.gid)
        if replica is not None:
            replica.paxos.on_message(src, msg.inner)

    # ------------------------------------------------------------------
    # Message handlers: client operations
    # ------------------------------------------------------------------
    def _on_client_op(self, src: str, msg: ClientOpReq) -> Any:
        if self.config.op_service_time > 0:
            # M/D/1-style CPU queue: each operation occupies the node for
            # op_service_time; requests queue behind earlier ones.
            start = max(self.sim.now, self._svc_free_at)
            self._svc_free_at = start + self.config.op_service_time
            delay = self._svc_free_at - self.sim.now
            out = Future()
            self.set_timer(delay, self._serve_client_op, src, msg, out)
            return out
        return self._serve_client_op_now(src, msg)

    def _serve_client_op(self, src: str, msg: ClientOpReq, out: Future) -> None:
        result = self._serve_client_op_now(src, msg)
        if isinstance(result, Future):
            result.add_callback(lambda f: out.set_result(f.result()) if f.exception is None else out.set_exception(f.exception))
        else:
            out.set_result(result)

    def _serve_client_op_now(self, src: str, msg: ClientOpReq) -> Any:
        key = msg.op.key
        # Active groups take precedence: after a split, the retired group
        # and its replacement both contain the key on this host.
        hosted = sorted(
            (r for r in self.groups.values() if r.range.contains(key)),
            key=lambda r: r.status is GroupStatus.RETIRED,
        )
        for replica in hosted:
            if replica.status is GroupStatus.RETIRED:
                if msg.ttl > 0 and replica.forwarding:
                    best = next(
                        (g for g in replica.forwarding if g.range.contains(key)),
                        replica.forwarding[0],
                    )
                    return self._forward_client_op(msg, best)
                return ClientOpResp(status="moved", groups=replica.forwarding)
            if replica.status is GroupStatus.FROZEN:
                return ClientOpResp(status="busy")
            if not replica.is_leader:
                # Scale-out read path: a follower with a live read grant
                # serves the Get from its applied store state
                # (PaxosConfig.follower_reads); otherwise bounce the
                # client to the leader as before.
                local = replica.follower_read(msg.op)
                if local is not None:
                    return _map_future(local, self._client_result_to_resp)
                return ClientOpResp(
                    status="not_leader",
                    leader_hint=replica.paxos.leader_hint,
                    groups=(replica.info(),),
                )
            return _map_future(
                replica.client_op(msg.op, msg.dedup),
                self._client_result_to_resp,
            )
        # Retired groups linger in self.groups; if none matched, redirect
        # (iterative) or forward on the client's behalf (recursive).
        candidates = self._redirect_candidates(key)
        if not candidates:
            return ClientOpResp(status="lost")
        if msg.ttl > 0:
            return self._forward_client_op(msg, candidates[0])
        return ClientOpResp(status="redirect", groups=tuple(candidates[:5]))

    def _forward_client_op(self, msg: ClientOpReq, target: GroupInfo) -> Future:
        """Recursive routing: relay toward the owner and pass back the answer."""
        downstream = ClientOpReq(op=msg.op, dedup=msg.dedup, ttl=msg.ttl - 1)
        future = self.request(
            target.leader_hint, downstream, timeout=self.config.txn_rpc_timeout
        )
        out = Future()

        def relay(f: Future) -> None:
            if f.exception is not None:
                out.set_result(ClientOpResp(status="busy"))
            else:
                out.set_result(f.result())

        future.add_callback(relay)
        return out

    def _client_result_to_resp(self, future: Future) -> ClientOpResp:
        exc = future.exception
        if exc is None:
            return ClientOpResp(status="ok", result=future.result())
        if isinstance(exc, NotLeader):
            return ClientOpResp(status="not_leader", leader_hint=exc.leader_hint)
        return ClientOpResp(status="busy")  # ProposalLost etc: client retries

    def _redirect_candidates(self, key: int) -> list[GroupInfo]:
        """Known groups ordered by how close their start precedes ``key``."""
        infos = self._routing_groups()
        containing = [g for g in infos if g.range.contains(key)]
        if containing:
            return containing
        return sorted(infos, key=lambda g: ring_distance(g.range.lo, key))

    # ------------------------------------------------------------------
    # Message handlers: join / leave
    # ------------------------------------------------------------------
    def _on_join_lookup(self, src: str, msg: JoinLookupReq) -> JoinLookupResp:
        target = self.policy.choose_join_target(self._routing_groups(), self._rng)
        return JoinLookupResp(target=target)

    def _on_group_join(self, src: str, msg: GroupJoinReq) -> Any:
        replica = self.groups.get(msg.gid)
        if replica is None:
            fwd = self.forwarding.get(msg.gid)
            if fwd:
                return GroupJoinResp(status="moved", groups=fwd)
            return GroupJoinResp(status="unknown_group")
        if replica.status is GroupStatus.RETIRED:
            return GroupJoinResp(status="moved", groups=replica.forwarding)
        if not replica.is_leader:
            return GroupJoinResp(status="not_leader", leader_hint=replica.paxos.leader_hint)
        if replica.active_txn is not None:
            return GroupJoinResp(status="busy")
        if src in replica.paxos.members:
            return GroupJoinResp(status="ok", genesis=replica.genesis)
        future = replica.paxos.propose(Command.config("add", src))
        return _map_future(
            future,
            lambda f: GroupJoinResp(status="ok", genesis=replica.genesis)
            if f.exception is None
            else GroupJoinResp(status="busy"),
        )

    def _on_group_leave(self, src: str, msg: GroupLeaveReq) -> Any:
        replica = self.groups.get(msg.gid)
        if replica is None or replica.status is GroupStatus.RETIRED:
            return GroupJoinResp(status="unknown_group")
        if not replica.is_leader:
            return GroupJoinResp(status="not_leader", leader_hint=replica.paxos.leader_hint)
        if replica.active_txn is not None:
            return GroupJoinResp(status="busy")
        if src not in replica.paxos.members:
            return GroupJoinResp(status="ok")
        future = replica.paxos.propose(Command.config("remove", src))
        return _map_future(
            future,
            lambda f: GroupJoinResp(status="ok")
            if f.exception is None
            else GroupJoinResp(status="busy"),
        )

    def _on_welcome(self, src: str, msg: WelcomeMsg) -> None:
        self.create_group(msg.genesis)

    def _join_proc(self, seed: str):
        """Process: locate a group via the seed, join it, host its replica."""
        while self.alive and not self.groups:
            try:
                lookup = yield self.request(seed, JoinLookupReq(), timeout=self.config.join_retry)
            except (RpcTimeout, RpcError):
                yield _sleep(self.sim, self.config.join_retry)
                continue
            target = lookup.target
            attempts = 0
            while target is not None and attempts < 8 and not self.groups:
                attempts += 1
                try:
                    resp = yield from group_request(
                        self,
                        target,
                        lambda: GroupJoinReq(gid=target.gid),
                        timeout=self.config.txn_rpc_timeout,
                    )
                except GroupUnreachable:
                    break
                if resp.status == "ok" and resp.genesis is not None:
                    self.create_group(resp.genesis)
                    return resp.genesis.gid
                if resp.status == "moved" and resp.groups:
                    target = resp.groups[0]
                    continue
                yield _sleep(self.sim, self.config.join_retry)
            yield _sleep(self.sim, self.config.join_retry)
        if self.groups:
            return next(iter(self.groups))
        return None

    # ------------------------------------------------------------------
    # Message handlers: transactions
    # ------------------------------------------------------------------
    def _txn_target(self, gid: str) -> GroupReplica | TxnResp:
        replica = self.groups.get(gid)
        if replica is None:
            return TxnResp(status="unknown_group")
        if not replica.is_leader:
            return TxnResp(status="not_leader", leader_hint=replica.paxos.leader_hint)
        return replica

    def _on_txn_prepare(self, src: str, msg: TxnPrepareReq) -> Any:
        target = self._txn_target(msg.gid)
        if isinstance(target, TxnResp):
            return target
        future = target.paxos.propose(Command(kind="txn_prepare", payload=msg.spec))
        return _map_future(future, _txn_apply_to_resp)

    def _on_txn_commit(self, src: str, msg: TxnCommitReq) -> Any:
        target = self._txn_target(msg.gid)
        if isinstance(target, TxnResp):
            return target
        if msg.spec.txn_id in target.completed_txns:
            return TxnResp(status="dup")
        future = target.paxos.propose(
            Command(kind="txn_commit", payload=TxnCommitCmd(spec=msg.spec, data=msg.data))
        )
        return _map_future(future, _txn_apply_to_resp)

    def _on_txn_abort(self, src: str, msg: TxnAbortReq) -> Any:
        target = self._txn_target(msg.gid)
        if isinstance(target, TxnResp):
            return target
        if msg.spec.txn_id in target.completed_txns:
            return TxnResp(status="dup")
        future = target.paxos.propose(
            Command(kind="txn_abort", payload=TxnAbortCmd(spec=msg.spec))
        )
        return _map_future(future, _txn_apply_to_resp)

    def _on_txn_status(self, src: str, msg: TxnStatusReq) -> TxnStatusResp:
        spec = msg.spec
        outcome = self.txn_outcomes.get(spec.txn_id)
        if outcome is not None:
            decision, data = outcome
            return TxnStatusResp(status=decision.value, data=data)
        # If we lead the coordinator group and nobody is driving this
        # transaction any more, decide abort so participants can unlock.
        replica = self.groups.get(spec.coordinator_gid)
        if (
            replica is not None
            and replica.is_leader
            and replica.active_txn is not None
            and replica.active_txn.txn_id == spec.txn_id
            and spec.coordinator_gid not in self.coordinating
        ):
            replica.paxos.propose(Command(kind="txn_abort", payload=TxnAbortCmd(spec=spec)))
        return TxnStatusResp(status="unknown")


    def _on_group_neighbors(self, src: str, msg: GroupNeighborsReq) -> GroupNeighborsResp:
        replica = self.groups.get(msg.gid)
        if replica is None:
            fwd = self.forwarding.get(msg.gid)
            if fwd:
                return GroupNeighborsResp(status="moved", groups=fwd)
            return GroupNeighborsResp(status="unknown_group")
        if replica.status is GroupStatus.RETIRED:
            return GroupNeighborsResp(status="moved", groups=replica.forwarding)
        if not replica.is_leader:
            return GroupNeighborsResp(status="not_leader", leader_hint=replica.paxos.leader_hint)
        if replica.active_txn is not None or replica.status is GroupStatus.FROZEN:
            return GroupNeighborsResp(status="busy")
        return GroupNeighborsResp(
            status="ok",
            info=replica.info(),
            predecessor=replica.predecessor,
            successor=replica.successor,
        )

    # ------------------------------------------------------------------
    # Gossip (finger maintenance)
    # ------------------------------------------------------------------
    def _on_gossip(self, src: str, msg: GossipReq) -> GossipResp:
        infos = self._routing_groups()
        self._rng.shuffle(infos)
        return GossipResp(infos=tuple(infos[:8]))

    def _gossip_tick(self) -> None:
        peers = sorted(
            {m for info in self.known_groups() for m in info.members} - {self.node_id}
        )
        if peers:
            peer = self._rng.choice(peers)
            future = self.request(peer, GossipReq(), timeout=1.0)
            future.add_callback(self._absorb_gossip)
        self.set_timer(self.config.gossip_interval, self._gossip_tick)

    def _absorb_gossip(self, future: Future) -> None:
        if future.exception is not None or not self.alive:
            return
        for info in future.result().infos:
            self.learn(info)

    # ------------------------------------------------------------------
    # Maintenance loop
    # ------------------------------------------------------------------
    def _maintenance_tick(self) -> None:
        for gid in list(self.groups):
            replica = self.groups.get(gid)
            if replica is not None:
                self._maintain_group(replica)
        self.set_timer(
            self.config.maintenance_interval * self._rng.uniform(0.8, 1.2),
            self._maintenance_tick,
        )

    def _maintain_group(self, replica: GroupReplica) -> None:
        gid = replica.gid
        if replica.status is not GroupStatus.RETIRED and gid in self.forwarding:
            # Zombie: this node recorded the group's retirement (the
            # forwarding entry was written when the split/merge commit
            # applied) but the replica resurrected from a pre-retirement
            # disk image after a crash.  Without this check an all-
            # zombie group can answer clients for a range the ring has
            # reassigned — its own members are the only peers orphan
            # resolution would ask, and they are zombies too.
            replica.status = GroupStatus.RETIRED
            replica.forwarding = self.forwarding[gid]
            self._retired_at.setdefault(gid, self.sim.now)
            return
        if replica.status is GroupStatus.RETIRED:
            if self.sim.now - self._retired_at.get(gid, self.sim.now) > self.config.retired_linger:
                replica.paxos.retire()
                del self.groups[gid]
            return
        if replica.paxos.retired:
            # We were removed from the group's membership: drop our replica.
            del self.groups[gid]
            return
        if not replica.is_leader:
            self._maybe_resolve_orphan(replica)
            return
        if replica.active_txn is not None:
            self._maybe_recover_txn(replica)
            return
        if self._remove_dead_member(replica):
            return
        if self.sim.now - self._last_txn_attempt.get(gid, -1e9) < self.config.txn_cooldown:
            return
        if gid in self.coordinating:
            return
        if self._maybe_repair(replica):
            return
        if self.policy.wants_split(replica) and len(replica.members) >= 2:
            self._last_txn_attempt[gid] = self.sim.now
            self.start_split(replica)
        elif self.policy.wants_merge(replica):
            self._last_txn_attempt[gid] = self.sim.now
            self.start_merge(replica)
        else:
            migration = self.policy.choose_migration(
                replica, self.known_groups(), self._rng
            )
            if migration is not None:
                member, destination = migration
                self._last_txn_attempt[gid] = self.sim.now
                self.start_migrate(replica, member, destination)
            else:
                self._maybe_transfer_leadership(replica)

    def _maybe_resolve_orphan(self, replica: GroupReplica) -> None:
        """A long-leaderless replica may have missed its group's retirement.

        Ask a peer; if the group moved on, retire our replica so we stop
        answering clients from a stale range (and so this host can be
        garbage collected or rejoin elsewhere).
        """
        paxos = replica.paxos
        idle = self.sim.now - paxos.last_leader_contact
        if idle < self.config.orphan_timeout:
            return
        peers = [m for m in paxos.members if m != self.node_id]
        if not peers:
            return
        peer = self._rng.choice(peers)
        future = self.request(
            peer, GroupNeighborsReq(gid=replica.gid), timeout=self.config.txn_rpc_timeout
        )

        def on_answer(f: Future) -> None:
            if not self.alive or f.exception is not None:
                return
            resp = f.result()
            if resp.status == "moved" and replica.status is not GroupStatus.RETIRED:
                replica.status = GroupStatus.RETIRED
                replica.forwarding = resp.groups
                self.on_group_retired(replica.gid, resp.groups)
                for info in resp.groups:
                    self.learn(info)

        future.add_callback(on_answer)

    def _remove_dead_member(self, replica: GroupReplica) -> bool:
        suspected = replica.paxos.suspected_members(self.config.dead_timeout)
        if not suspected or len(replica.paxos.members) <= 1:
            return False
        replica.paxos.propose(Command.config("remove", suspected[0]))
        return True

    def _maybe_repair(self, replica: GroupReplica) -> bool:
        """Self-healing: restore a group's live replication to the floor.

        The leader counts members unreachable past the repair-suspicion
        horizon as lost.  When the survivors fall below the policy's
        repair floor it pulls a spare node in from the healthiest donor
        group (a migrate *coordinated by the fragile group*, so the
        repair serializes through this group's Paxos log and cannot race
        its own splits/merges); with no donor anywhere, it merges with
        its successor instead.  Returns True when a repair was launched
        this tick.  A no-op unless ``policy.repair`` — the disabled path
        touches no state, draws no randomness, sends nothing.
        """
        if not self.policy.repair:
            return False
        gid = replica.gid
        floor = self.policy.effective_repair_floor()
        suspected = set(replica.paxos.suspected_members(self.config.repair_suspicion))
        healthy = [m for m in replica.members if m not in suspected]
        tracer = self.sim.tracer
        if len(healthy) >= floor:
            since = self._below_floor_since.pop(gid, None)
            if since is not None and tracer is not None:
                tracer.metrics.observe("repair.restore_seconds", self.sim.now - since)
            return False
        if gid not in self._below_floor_since:
            self._below_floor_since[gid] = self.sim.now
            if tracer is not None:
                tracer.metrics.inc("repair.below_floor")
        donation = self.policy.choose_repair_donor(replica, self._freshest_groups())
        if donation is not None:
            node, donor = donation
            self._last_txn_attempt[gid] = self.sim.now
            if tracer is not None:
                tracer.metrics.inc("repair.triggered")
                tracer.metrics.inc("repair.migrate")
            self.start_repair_migrate(replica, node, donor)
            return True
        succ = replica.successor
        if succ is not None and succ.gid != gid:
            self._last_txn_attempt[gid] = self.sim.now
            if tracer is not None:
                tracer.metrics.inc("repair.triggered")
                tracer.metrics.inc("repair.merge")
            self.start_merge(replica)
            return True
        return False

    def _freshest_groups(self) -> list[GroupInfo]:
        """``known_groups`` but preferring newer-epoch cache entries.

        Routing usually tolerates stale neighbor pointers (a wrong hop
        just forwards), so ``known_groups`` lets them shadow the cache.
        The repair donor chooser cannot: a stale pointer that overstates
        a donor's membership would be re-picked every tick.
        """
        infos = {info.gid: info for info in self.known_groups()}
        for gid, info in self.cache.items():
            cur = infos.get(gid)
            if cur is not None and gid not in self.groups and info.epoch > cur.epoch:
                infos[gid] = info
        return list(infos.values())

    def _routing_groups(self) -> list[GroupInfo]:
        """The group view served to clients, joiners, and gossip peers.

        Repair-enabled deployments can turn over a group's *entire*
        membership (every original member permanently lost, every seat
        refilled by pull-in migrates).  A stale neighbor pointer then
        names only dead nodes, and because ``known_groups`` lets it
        shadow the fresher gossip cache, the stale view re-propagates
        forever: a healthy group becomes unroutable even though all its
        replicas hold the data.  Repair deployments therefore serve the
        epoch-freshest view.  Without repair a pointer can never outlive
        the whole membership, so the classic view is kept byte-for-byte
        (the zero-perturbation guarantee for the baseline experiments).
        """
        if self.policy.repair:
            return self._freshest_groups()
        return self.known_groups()

    def _maybe_transfer_leadership(self, replica: GroupReplica) -> None:
        expected = lambda a, b: self.net.latency.expected(a, b)
        better = self.policy.choose_leader(replica, expected)
        if better is not None:
            replica.paxos.transfer_leadership(better)

    def _maybe_recover_txn(self, replica: GroupReplica) -> None:
        spec = replica.active_txn
        if spec is None:
            return
        age = self.sim.now - replica.frozen_since
        if age < self.config.txn_recovery_timeout:
            return
        if spec.coordinator_gid == replica.gid:
            if replica.gid not in self.coordinating:
                # The driver died with the lock held: decide abort.
                replica.paxos.propose(
                    Command(kind="txn_abort", payload=TxnAbortCmd(spec=spec))
                )
            return
        spawn(self.sim, self._recover_participant(replica, spec))

    def _recover_participant(self, replica: GroupReplica, spec: TxnSpec):
        """Ask the coordinator group for the outcome and enact it."""
        for member in spec.coordinator_members:
            if not self.alive or replica.active_txn is not spec:
                return
            try:
                resp = yield self.request(
                    member, TxnStatusReq(spec=spec), timeout=self.config.txn_rpc_timeout
                )
            except (RpcTimeout, RpcError):
                continue
            if resp.status == TxnDecision.COMMITTED.value:
                replica.paxos.propose(
                    Command(kind="txn_commit", payload=TxnCommitCmd(spec=spec, data=resp.data))
                )
                return
            if resp.status == TxnDecision.ABORTED.value:
                replica.paxos.propose(
                    Command(kind="txn_abort", payload=TxnAbortCmd(spec=spec))
                )
                return
            # "unknown": the query itself nudges the coordinator to decide;
            # we will retry on the next maintenance tick.
            return

    # ------------------------------------------------------------------
    # Group operation initiation (coordinator side)
    # ------------------------------------------------------------------
    def start_split(self, replica: GroupReplica, split_key: int | None = None) -> Future:
        from repro.txn.coordinator import run_group_operation

        key = split_key if split_key is not None else self.policy.choose_split_key(replica)
        if key == replica.range.lo or not replica.range.contains(key):
            return _failed_future(ValueError(f"bad split key {key}"))
        members = replica.members
        partitionable = members
        if self.policy.repair:
            # Don't deal a suspected-lost member into a child group: a
            # two-member child whose other half is gone can never elect
            # a leader again, and no repair can reach a leaderless group.
            lost = set(replica.paxos.suspected_members(self.config.repair_suspicion))
            live = [m for m in members if m not in lost]
            if len(live) >= 2:
                partitionable = live
        left_members, right_members = self.policy.partition_members(partitionable, self._rng)
        if not left_members or not right_members:
            return _failed_future(ValueError("not enough members to split"))
        left_range, right_range = replica.range.split_at(key)
        spec = SplitSpec(
            txn_id=new_txn_id(self.node_id),
            coordinator_gid=replica.gid,
            coordinator_members=tuple(members),
            gid=replica.gid,
            split_key=key,
            left=GroupPlan(self._new_gid(), left_range, left_members, left_members[0]),
            right=GroupPlan(self._new_gid(), right_range, right_members, right_members[0]),
            pred_gid=replica.predecessor.gid if replica.predecessor else None,
            succ_gid=replica.successor.gid if replica.successor else None,
        )
        infos = {}
        if replica.predecessor is not None:
            infos[replica.predecessor.gid] = replica.predecessor
        if replica.successor is not None:
            infos[replica.successor.gid] = replica.successor
        self._count_txn("split")
        return run_group_operation(self, replica, spec, infos)

    def start_merge(self, replica: GroupReplica) -> Future:
        """Merge this group (as left) with its successor group.

        The coordinator first fetches the successor's fresh info and
        adjacency so the spec is built from a current view; a stale view
        would be caught by the participants' prepare validation anyway,
        but the fetch makes merges succeed on the first try.
        """
        return spawn(self.sim, self._merge_proc(replica))

    def _merge_proc(self, replica: GroupReplica):
        from repro.txn.coordinator import run_group_operation

        succ = replica.successor
        if succ is None or succ.gid == replica.gid:
            raise ValueError("no distinct successor to merge with")
        try:
            resp = yield from group_request(
                self,
                succ,
                lambda: GroupNeighborsReq(gid=succ.gid),
                timeout=self.config.txn_rpc_timeout,
            )
        except GroupUnreachable as exc:
            raise ValueError(f"successor unreachable: {exc}") from exc
        if resp.status != "ok" or resp.info is None:
            raise ValueError(f"successor not mergeable: {resp.status}")
        partner = resp.info
        merged_range = replica.range.merge(partner.range)
        members = tuple(sorted(set(replica.members) | set(partner.members)))
        spec = MergeSpec(
            txn_id=new_txn_id(self.node_id),
            coordinator_gid=replica.gid,
            coordinator_members=tuple(replica.members),
            left_gid=replica.gid,
            right_gid=partner.gid,
            merged=GroupPlan(self._new_gid(), merged_range, members, self.node_id),
            outer_pred_info=self._resolve_outer(replica.predecessor, replica.gid, partner.gid),
            outer_succ_info=self._resolve_outer(resp.successor, replica.gid, partner.gid),
        )
        infos = {replica.gid: replica.info(), partner.gid: partner}
        if spec.outer_pred_info is not None:
            infos[spec.outer_pred_info.gid] = spec.outer_pred_info
        if spec.outer_succ_info is not None:
            infos[spec.outer_succ_info.gid] = spec.outer_succ_info
        self._count_txn("merge")
        result = yield run_group_operation(self, replica, spec, infos)
        return result

    def _resolve_outer(
        self, info: GroupInfo | None, left_gid: str, right_gid: str
    ) -> GroupInfo | None:
        """Outer neighbors collapse to None in a one/two-group ring."""
        if info is None or info.gid in (left_gid, right_gid):
            return None
        return info

    def start_migrate(self, replica: GroupReplica, node: str, to: GroupInfo) -> Future:
        from repro.txn.coordinator import run_group_operation

        spec = MigrateSpec(
            txn_id=new_txn_id(self.node_id),
            coordinator_gid=replica.gid,
            coordinator_members=tuple(replica.members),
            node=node,
            from_gid=replica.gid,
            to_gid=to.gid,
        )
        self._count_txn("migrate")
        return run_group_operation(self, replica, spec, {to.gid: to})

    def start_repair_migrate(self, replica: GroupReplica, node: str, donor: GroupInfo) -> Future:
        """Pull ``node`` in *from* ``donor`` to reinforce this group.

        The mirror image of :meth:`start_migrate`: the fragile group is
        the destination *and* the coordinator, so the repair occupies a
        slot in its own Paxos log and the usual prepare validation
        (busy/frozen/stale refusals) serializes it against any
        concurrent split, merge, or competing repair.
        """
        return spawn(self.sim, self._repair_migrate_proc(replica, node, donor))

    def _repair_migrate_proc(self, replica: GroupReplica, node: str, donor: GroupInfo):
        from repro.txn.coordinator import run_group_operation

        # The cached GroupInfo that nominated the spare may predate a
        # split or migrate in the donor; a spec naming a non-member is
        # refused by every donor replica, forever.  Refresh membership
        # from the donor's leader first and re-pick the spare.
        try:
            resp = yield from group_request(
                self,
                donor,
                lambda: GroupNeighborsReq(gid=donor.gid),
                timeout=self.config.txn_rpc_timeout,
            )
        except GroupUnreachable as exc:
            raise ValueError(f"donor unreachable: {exc}") from exc
        if resp.status != "ok" or resp.info is None:
            raise ValueError(f"donor not usable: {resp.status}")
        fresh = resp.info
        self.learn(fresh)
        floor = self.policy.effective_repair_floor()
        spares = sorted(set(fresh.members) - set(replica.members))
        if len(fresh.members) <= floor or not spares:
            # The cached view overstated the donor.  Fall back to the
            # merge path in this same attempt rather than waiting a
            # cooldown to re-discover the exhaustion.
            succ = replica.successor
            if succ is not None and succ.gid != replica.gid:
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.metrics.inc("repair.merge")
                result = yield self.start_merge(replica)
                return result
            raise ValueError("donor has no spare to give")
        if node not in spares:
            node = spares[0]
        spec = MigrateSpec(
            txn_id=new_txn_id(self.node_id),
            coordinator_gid=replica.gid,
            coordinator_members=tuple(replica.members),
            node=node,
            from_gid=fresh.gid,
            to_gid=replica.gid,
        )
        self._count_txn("repair_migrate")
        result = yield run_group_operation(self, replica, spec, {fresh.gid: fresh})
        return result

    def start_repartition(self, replica: GroupReplica, new_boundary: int) -> Future:
        """Move this group's boundary with its successor to ``new_boundary``."""
        from repro.txn.coordinator import run_group_operation

        succ = replica.successor
        if succ is None:
            return _failed_future(ValueError("no successor"))
        if replica.range.contains(new_boundary) and new_boundary != replica.range.lo:
            donor = replica.gid
        elif succ.range.contains(new_boundary):
            donor = succ.gid
        else:
            return _failed_future(ValueError("boundary outside both ranges"))
        spec = RepartitionSpec(
            txn_id=new_txn_id(self.node_id),
            coordinator_gid=replica.gid,
            coordinator_members=tuple(replica.members),
            left_gid=replica.gid,
            right_gid=succ.gid,
            new_boundary=new_boundary,
            donor_gid=donor,
        )
        self._count_txn("repartition")
        return run_group_operation(self, replica, spec, {succ.gid: succ})

    def _new_gid(self) -> str:
        self._gid_counter += 1
        return f"g{self._gid_counter}@{self.node_id}"

    def _count_txn(self, kind: str) -> None:
        self.stats_txns[kind] = self.stats_txns.get(kind, 0) + 1


# ----------------------------------------------------------------------
# Small helpers
# ----------------------------------------------------------------------
def _map_future(source: Future, fn: Callable[[Future], Any]) -> Future:
    """New future resolving with ``fn(source)`` once ``source`` is done."""
    out = Future()
    source.add_callback(lambda f: out.set_result(fn(f)))
    return out


def _txn_apply_to_resp(future: Future) -> TxnResp:
    exc = future.exception
    if exc is None:
        status, data = future.result()
        return TxnResp(status=status, data=data)
    if isinstance(exc, NotLeader):
        return TxnResp(status="not_leader", leader_hint=exc.leader_hint)
    return TxnResp(status="refused", data=str(exc))


def _failed_future(exc: Exception) -> Future:
    future = Future()
    future.set_exception(exc)
    return future


def _sleep(sim: Simulator, delay: float) -> Future:
    future = Future()
    sim.schedule(delay, future.set_result, None)
    return future

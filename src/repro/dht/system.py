"""Builder and harness-side view of a Scatter deployment."""

from __future__ import annotations

from repro.dht.ring import KEY_SPACE, KeyRange
from repro.dht.scatter import ScatterConfig, ScatterNode
from repro.group.info import GroupGenesis, GroupInfo
from repro.group.replica import GroupReplica, GroupStatus
from repro.policies import ScatterPolicy
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork


class ScatterSystem:
    """Builds and observes a simulated Scatter deployment.

    ``build`` pre-partitions the ring into ``n_groups`` groups of
    roughly equal membership — the steady state a long-running
    deployment converges to — so experiments need not replay the whole
    join history.  Nodes added later go through the real join protocol.
    """

    def __init__(
        self,
        sim: Simulator,
        net: SimNetwork,
        config: ScatterConfig | None = None,
        policy: ScatterPolicy | None = None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.config = config or ScatterConfig()
        self.policy = policy or ScatterPolicy()
        self.nodes: dict[str, ScatterNode] = {}
        self._node_counter = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def build(
        sim: Simulator,
        net: SimNetwork,
        n_nodes: int,
        n_groups: int,
        config: ScatterConfig | None = None,
        policy: ScatterPolicy | None = None,
    ) -> "ScatterSystem":
        if n_groups < 1 or n_nodes < n_groups:
            raise ValueError("need at least one node per group")
        system = ScatterSystem(sim, net, config, policy)
        names = [system._new_node_name() for _ in range(n_nodes)]
        for name in names:
            system.nodes[name] = ScatterNode(
                name, sim, net, config=system.config, policy=system.policy
            )

        # Contiguous arcs of equal size; members dealt out in blocks.
        arcs: list[KeyRange] = []
        for i in range(n_groups):
            lo = (i * KEY_SPACE) // n_groups
            hi = ((i + 1) * KEY_SPACE) // n_groups
            arcs.append(KeyRange(lo % KEY_SPACE, hi % KEY_SPACE))
        member_blocks: list[list[str]] = [[] for _ in range(n_groups)]
        for i, name in enumerate(names):
            member_blocks[i % n_groups].append(name)

        infos = []
        for i in range(n_groups):
            members = tuple(sorted(member_blocks[i]))
            infos.append(
                GroupInfo(gid=f"g{i}", range=arcs[i], members=members, leader_hint=members[0])
            )
        for i in range(n_groups):
            members = infos[i].members
            pred = infos[(i - 1) % n_groups] if n_groups > 1 else None
            succ = infos[(i + 1) % n_groups] if n_groups > 1 else None
            genesis = GroupGenesis(
                gid=infos[i].gid,
                range=arcs[i],
                members=members,
                initial_leader=members[0],
                predecessor=pred,
                successor=succ,
            )
            for member in members:
                system.nodes[member].create_group(genesis)
        for node in system.nodes.values():
            node.start()
        return system

    def _new_node_name(self) -> str:
        name = f"s{self._node_counter}"
        self._node_counter += 1
        return name

    # ------------------------------------------------------------------
    # Runtime membership (churn hooks)
    # ------------------------------------------------------------------
    def add_node(self, seed: str | None = None) -> ScatterNode:
        """Create a node and start its join through ``seed``."""
        name = self._new_node_name()
        node = ScatterNode(name, self.sim, self.net, config=self.config, policy=self.policy)
        self.nodes[name] = node
        node.start()
        if seed is None:
            seed = self._pick_seed(exclude=name)
        if seed is not None:
            node.start_join(seed)
        return node

    def _pick_seed(self, exclude: str) -> str | None:
        alive = [n for n in self.alive_node_ids() if n != exclude]
        if not alive:
            return None
        return self.sim.rng("seeds").choice(alive)

    def kill_node(self, node_id: str) -> None:
        """Permanent fail-stop departure (churn)."""
        node = self.nodes.get(node_id)
        if node is not None:
            node.shutdown()

    def alive_node_ids(self) -> list[str]:
        return sorted(
            name
            for name, node in self.nodes.items()
            if node.alive and any(
                g.status is not GroupStatus.RETIRED and not g.paxos.retired
                for g in node.groups.values()
            )
        )

    def all_alive_ids(self) -> list[str]:
        return sorted(name for name, node in self.nodes.items() if node.alive)

    # ------------------------------------------------------------------
    # Observation (harness-side; not part of the protocol)
    # ------------------------------------------------------------------
    def active_groups(self) -> dict[str, GroupReplica]:
        """One live replica per active group id (leader's if available)."""
        out: dict[str, GroupReplica] = {}
        for node in self.nodes.values():
            if not node.alive:
                continue
            for gid, replica in node.groups.items():
                if replica.status is GroupStatus.RETIRED or replica.paxos.retired:
                    continue
                current = out.get(gid)
                if current is None or (replica.is_leader and not current.is_leader):
                    out[gid] = replica
        return out

    def leader_of(self, gid: str) -> GroupReplica | None:
        for node in self.nodes.values():
            if not node.alive:
                continue
            replica = node.groups.get(gid)
            if replica is not None and replica.is_leader:
                return replica
        return None

    def group_count(self) -> int:
        return len(self.active_groups())

    def ring_is_consistent(self) -> bool:
        """Do the active groups partition the whole ring exactly?

        Harness invariant check: collects each active group's own view of
        its range and verifies the arcs tile the key space.
        """
        groups = self.active_groups()
        if not groups:
            return False
        arcs = sorted((g.range.lo, g.range.hi) for g in groups.values())
        if len(arcs) == 1:
            return groups[next(iter(groups))].range.is_full
        total = 0
        for i, (lo, hi) in enumerate(arcs):
            nxt_lo = arcs[(i + 1) % len(arcs)][0]
            if hi != nxt_lo:
                return False
            total += KeyRange(lo, hi).size()
        return total == KEY_SPACE

    def total_keys(self) -> int:
        return sum(len(g.store) for g in self.active_groups().values())

    def audit(self) -> list[str]:
        """Invariant audit; returns human-readable problems (empty = clean).

        Checks, over the live system state:

        1. active groups partition the ring (no gap, no overlap);
        2. adjacency pointers agree with the partition (each group's
           successor pointer names the group that actually starts at its
           upper boundary);
        3. every member of an active group hosts a live replica of it;
        4. no group is frozen without an active transaction.
        """
        problems: list[str] = []
        groups = self.active_groups()
        if not groups:
            return ["no active groups"]
        if not self.ring_is_consistent():
            problems.append("active group ranges do not partition the ring")
        by_lo = {g.range.lo: g for g in groups.values()}
        for gid, g in sorted(groups.items()):
            expected_succ = by_lo.get(g.range.hi % KEY_SPACE)
            if g.successor is not None and expected_succ is not None:
                if g.successor.gid != expected_succ.gid:
                    problems.append(
                        f"{gid}: successor pointer {g.successor.gid} but "
                        f"{expected_succ.gid} starts at its boundary"
                    )
            for member in g.members:
                node = self.nodes.get(member)
                if node is None or not node.alive:
                    continue  # dead member: failure detection's job
                replica = node.groups.get(gid)
                if replica is None:
                    problems.append(f"{gid}: member {member} hosts no replica")
            if g.status is GroupStatus.FROZEN and g.active_txn is None:
                problems.append(f"{gid}: frozen without an active transaction")
        return problems

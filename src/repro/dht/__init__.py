"""The Scatter overlay: a ring of Paxos groups.

- :mod:`repro.dht.ring` — circular key space, ranges with wraparound,
  and key hashing.
- :mod:`repro.dht.scatter` — the system builder and physical node type.
- :mod:`repro.dht.client` — client routing (get/put with retries).
"""

from repro.dht.ring import KEY_SPACE, KeyRange, hash_key, ring_distance

__all__ = ["KEY_SPACE", "KeyRange", "hash_key", "ring_distance"]

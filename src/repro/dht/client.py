"""Client-side routing for Scatter: iterative lookup with retries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dht.messages import ClientOpReq
from repro.dht.ring import hash_key, ring_distance
from repro.dht.route import RingTable
from repro.group.info import GroupInfo
from repro.net.futures import Future, RpcError, RpcTimeout, spawn
from repro.net.node import Node
from repro.net.retry import RetryPolicy, RetryState
from repro.obs.spans import CLIENT_OP
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.store.kvstore import KvOp, KvResult, OP_CAS, OP_DELETE, OP_GET, OP_PUT


@dataclass
class ClientConfig:
    rpc_timeout: float = 0.5
    op_timeout: float = 8.0
    busy_backoff: float = 0.25
    # Backoff after a failed RPC (timeout / remote error): exponential
    # with decorrelated jitter from retry_base toward retry_cap, reset on
    # any successful hop.  The busy/livelock pauses share the cap but
    # start from busy_backoff.
    retry_base: float = 0.04
    retry_cap: float = 1.5
    max_hops: int = 32
    cache_size: int = 128
    # "iterative": the client follows redirects itself (default).
    # "recursive": nodes forward on the client's behalf (app-on-overlay
    # deployments); recursion depth per request below.
    routing: str = "iterative"
    recursive_ttl: int = 8
    # Replica-aware read routing (the scale-out read path; pair with
    # PaxosConfig.follower_reads).  "leader" sends Gets to the leader
    # hint as always; "round_robin" rotates them across the cached
    # group members; "nearest" picks the member with the lowest
    # expected link latency.  A follower that cannot serve bounces
    # ``not_leader`` and the client falls back to the leader, so any
    # mode is safe with follower reads off — just one hop slower.
    read_routing: str = "leader"
    # Precomputed bisect routing table over the cache (repro.dht.route)
    # instead of the linear containment scan.  O(log groups) per op, so
    # large-ring deployments (E21) can run with cache_size covering the
    # whole ring.  Off by default: with overlapping stale arcs the table
    # may pick a different (equally valid) containing group than the
    # scan, so the historical path stays byte-identical.
    route_table: bool = False

    def __post_init__(self) -> None:
        if self.routing not in ("iterative", "recursive"):
            raise ValueError(f"bad routing mode {self.routing}")
        if self.read_routing not in ("leader", "round_robin", "nearest"):
            raise ValueError(f"bad read_routing mode {self.read_routing}")


@dataclass
class OpRecord:
    """One completed (or failed) client operation, for analysis."""

    op: str
    key: int
    value: object
    invoke_time: float
    response_time: float = -1.0
    result: KvResult | None = None
    hops: int = 0
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.result is not None and self.result.ok

    @property
    def completed(self) -> bool:
        return self.response_time >= 0 and self.result is not None and self.result.error != "timeout"

    @property
    def latency(self) -> float:
        return self.response_time - self.invoke_time


class ScatterClient(Node):
    """Issues linearizable get/put/delete/cas against the overlay.

    Routing is iterative: the client asks the best node it knows of,
    follows ``not_leader`` / ``moved`` / ``redirect`` replies, and backs
    off on ``busy``.  Mutations carry a (client, seq) dedup token so
    retries are exactly-once.  ``seed_provider`` stands in for the
    out-of-band bootstrap every DHT assumes (a well-known node list).
    """

    def __init__(
        self,
        client_id: str,
        sim: Simulator,
        net: SimNetwork,
        seed_provider: Callable[[], list[str]],
        config: ClientConfig | None = None,
    ) -> None:
        super().__init__(client_id, sim, net)
        self.seed_provider = seed_provider
        self.config = config or ClientConfig()
        self.cache: dict[str, GroupInfo] = {}
        # Lazily rebuilt RingTable over the cache (route_table mode);
        # None doubles as the dirty flag, cleared by _learn/evictions.
        self._route_table: RingTable | None = None
        self.records: list[OpRecord] = []
        self._seq = 0
        self._rng = sim.rng(f"client:{client_id}")
        self._rr_next = 0  # round-robin read cursor (deterministic, no RNG)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def get(self, key: str | int) -> Future:
        return self._run(KvOp(OP_GET, self._key(key)))

    def put(self, key: str | int, value: object) -> Future:
        return self._run(KvOp(OP_PUT, self._key(key), value))

    def delete(self, key: str | int) -> Future:
        return self._run(KvOp(OP_DELETE, self._key(key)))

    def cas(self, key: str | int, value: object, expected_version: int) -> Future:
        return self._run(KvOp(OP_CAS, self._key(key), value, expected_version))

    @staticmethod
    def _key(key: str | int) -> int:
        return hash_key(key) if isinstance(key, str) else key

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _run(self, op: KvOp) -> Future:
        self._seq += 1
        dedup = (self.node_id, self._seq)
        record = OpRecord(op=op.op, key=op.key, value=op.value, invoke_time=self.sim.now)
        self.records.append(record)
        future = spawn(self.sim, self._op_proc(op, dedup, record))
        tracer = self.sim.tracer
        if tracer is not None:
            span = tracer.begin(CLIENT_OP, op=op.op, key=op.key, client=self.node_id)

            def _finish(f: Future) -> None:
                m = tracer.metrics
                m.inc("client.ops")
                m.observe("client.hops", record.hops)
                m.observe("client.attempts", record.attempts)
                # Attempts that got no reply were RPC timeouts/errors.
                m.inc("client.rpc_failures", record.attempts - record.hops)
                error = None if f.exception is not None else getattr(f.result(), "error", None)
                tracer.finish(
                    span,
                    ok=f.exception is None and record.ok,
                    hops=record.hops,
                    attempts=record.attempts,
                    error=str(f.exception) if f.exception is not None else error,
                )

            future.add_callback(_finish)
        return future

    def _op_proc(self, op: KvOp, dedup, record: OpRecord):
        deadline = self.sim.now + self.config.op_timeout
        net_retry = RetryState(
            RetryPolicy(base=self.config.retry_base, cap=self.config.retry_cap), self._rng
        )
        busy_retry = RetryState(
            RetryPolicy(base=self.config.busy_backoff, cap=self.config.retry_cap), self._rng
        )
        info = self._best_info(op.key)
        target = info.leader_hint if info is not None else self._seed()
        backups: list[str] = list(info.members) if info is not None else []
        if op.op == OP_GET and info is not None:
            target = self._read_target(info) or target
        visits: dict[str, int] = {}
        while self.sim.now < deadline and record.hops < self.config.max_hops:
            if target is None:
                target = self._seed()
                if target is None:
                    break
            if visits.get(target, 0) >= 3:
                # Two nodes pointing at each other with stale views can
                # livelock an op; cap per-node visits and fall back to
                # untried members / fresh seeds.
                target = self._next_target(backups, exclude=target)
                if target is None or visits.get(target, 0) >= 3:
                    target = self._seed()
                    yield _sleep(self.sim, busy_retry.next())
                continue
            visits[target] = visits.get(target, 0) + 1
            record.attempts += 1
            ttl = self.config.recursive_ttl if self.config.routing == "recursive" else 0
            timeout = self.config.rpc_timeout * (1 + ttl)
            try:
                resp = yield self.request(
                    target, ClientOpReq(op=op, dedup=dedup, ttl=ttl), timeout=timeout
                )
            except (RpcTimeout, RpcError):
                # Decorrelated-jitter pause before the fallback target so
                # clients stalled on the same dead node spread out instead
                # of stampeding the next member in lockstep.
                target = self._next_target(backups, exclude=target)
                yield _sleep(self.sim, net_retry.next())
                continue
            record.hops += 1
            net_retry.reset()
            for group in resp.groups:
                self._learn(group)
            if resp.status == "ok":
                record.response_time = self.sim.now
                record.result = resp.result
                return resp.result
            if resp.status == "not_leader":
                target = resp.leader_hint or self._next_target(backups, exclude=target)
                continue
            if resp.status in ("moved", "redirect"):
                nxt = self._closest(resp.groups, op.key) or self._best_info(op.key)
                if nxt is not None:
                    asked = target
                    target, backups = nxt.leader_hint, list(nxt.members)
                    if target == asked:
                        # The responder redirected us back to itself:
                        # stale knowledge somewhere.  Try another member,
                        # and pause so fresher state can propagate.
                        target = self._next_target(backups, exclude=asked)
                        yield _sleep(self.sim, busy_retry.next())
                else:
                    target = self._seed()
                continue
            if resp.status == "busy":
                yield _sleep(self.sim, busy_retry.next())
                refreshed = self._best_info(op.key)
                if refreshed is not None:
                    target, backups = refreshed.leader_hint, list(refreshed.members)
                continue
            # "lost": this node knows nothing useful; re-seed.
            target = self._seed()
        record.response_time = self.sim.now
        record.result = KvResult(ok=False, error="timeout")
        return record.result

    def _read_target(self, info: GroupInfo) -> str | None:
        """Replica-aware read routing: which member to ask a Get first.

        ``leader`` (default) returns ``None`` — the caller uses the
        leader hint, byte-identical to the historical path.
        ``round_robin`` rotates Gets across the cached members;
        ``nearest`` picks the member with the lowest expected link
        latency (ties broken by id for determinism).  A member that
        cannot serve locally answers ``not_leader`` and the routing
        loop falls back to its leader hint.
        """
        mode = self.config.read_routing
        if mode == "leader" or not info.members:
            return None
        if mode == "round_robin":
            self._rr_next += 1
            return info.members[self._rr_next % len(info.members)]
        latency = self.net.latency
        return min(info.members, key=lambda m: (latency.expected(self.node_id, m), m))

    def _next_target(self, backups: list[str], exclude: str | None) -> str | None:
        while backups:
            candidate = backups.pop(0)
            if candidate != exclude:
                return candidate
        return self._seed()

    def _seed(self) -> str | None:
        seeds = self.seed_provider()
        if not seeds:
            return None
        return self._rng.choice(seeds)

    def _learn(self, info: GroupInfo) -> None:
        cached = self.cache.get(info.gid)
        if cached is not None and cached.epoch > info.epoch:
            return  # keep the fresher view
        if cached is None and len(self.cache) >= self.config.cache_size:
            self.cache.pop(next(iter(self.cache)))
        self.cache[info.gid] = info
        # Re-learning an identical view is the steady-state common case
        # (every reply carries groups); only an actual change dirties
        # the routing table, so large-ring runs rebuild it rarely.
        if cached != info:
            self._route_table = None

    def _best_info(self, key: int) -> GroupInfo | None:
        if self.config.route_table:
            if not self.cache:
                return None
            table = self._route_table
            if table is None:
                table = self._route_table = RingTable(self.cache.values())
            # The bisect pick is the group whose arc starts closest
            # behind the key — the containing group for a tiled view,
            # and exactly the min-ring_distance fallback otherwise.
            return table.lookup(key)
        containing = [g for g in self.cache.values() if g.range.contains(key)]
        if containing:
            return containing[0]
        if not self.cache:
            return None
        return min(self.cache.values(), key=lambda g: ring_distance(g.range.lo, key))

    def _closest(self, groups: tuple[GroupInfo, ...], key: int) -> GroupInfo | None:
        if not groups:
            return None
        containing = [g for g in groups if g.range.contains(key)]
        if containing:
            return containing[0]
        return min(groups, key=lambda g: ring_distance(g.range.lo, key))


def _sleep(sim: Simulator, delay: float) -> Future:
    future = Future()
    sim.schedule(delay, future.set_result, None)
    return future

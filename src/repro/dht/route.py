"""Precomputed ring routing tables for large deployments.

The historical lookup paths are linear: a client scans its whole cache
for a group whose arc contains the key, and a node sorts every known
group by ring distance before redirecting.  At the paper's scale
(dozens of groups) that is invisible; at the 2,000–10,000-node rings
the scale experiments run (E21), the per-operation scan *is* the hot
path — O(groups) ``KeyRange.contains`` calls per op.

:class:`RingTable` precomputes the successor structure once: group
infos sorted by arc start, with lookups via ``bisect`` — O(log n) per
key instead of O(n).  Tables are immutable snapshots; holders rebuild
on knowledge changes (see :class:`RouteCache`, which rebuilds lazily on
a dirty flag so bursts of updates cost one rebuild).

Semantics: for a *consistent* view (arcs tile the ring, no overlaps —
the steady state of a healthy deployment, and always true without
churn) ``lookup`` returns exactly the group whose arc contains the key,
i.e. the same group the linear scan finds.  With overlapping stale
views the linear scan returns whichever containing entry was cached
first while the table returns the containing entry whose arc starts
closest behind the key; either is a correct routing target (routing
treats every hint as a starting point, not truth), but the choice can
differ — which is why the table is opt-in (``ClientConfig.route_table``)
and the default path stays byte-identical to the historical one.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable

from repro.dht.ring import KEY_SPACE
from repro.group.info import GroupInfo


class RingTable:
    """Immutable bisect-ready snapshot of a set of group infos.

    Entries are sorted by ``range.lo`` (ties keep first-seen order, so
    rebuilding from the same iterable is stable).  ``lookup`` finds the
    group whose arc starts closest at-or-behind the key — for a
    consistent tiling, the unique containing group.
    """

    __slots__ = ("_los", "_infos")

    def __init__(self, infos: Iterable[GroupInfo]) -> None:
        ordered = sorted(enumerate(infos), key=lambda p: (p[1].range.lo, p[0]))
        self._infos: list[GroupInfo] = [info for _, info in ordered]
        self._los: list[int] = [info.range.lo for info in self._infos]

    def __len__(self) -> int:
        return len(self._infos)

    def __iter__(self):
        return iter(self._infos)

    def lookup(self, key: int) -> GroupInfo | None:
        """The group whose arc starts closest at-or-behind ``key``.

        Wraps: a key below every arc start belongs to the last arc (the
        one wrapping through zero).  Returns None for an empty table.
        ``lookup(k).range.contains(k)`` holds whenever the entries tile
        the ring; callers that must tolerate gaps check containment and
        fall back (see ``ScatterClient._best_info``).
        """
        if not self._los:
            return None
        return self._infos[bisect_right(self._los, key % KEY_SPACE) - 1]

    def successor_of(self, info: GroupInfo) -> GroupInfo | None:
        """The group whose arc starts at-or-after ``info``'s end (cyclic)."""
        if not self._los:
            return None
        idx = bisect_right(self._los, info.range.hi % KEY_SPACE)
        if idx > 0 and self._los[idx - 1] == info.range.hi % KEY_SPACE:
            idx -= 1
        return self._infos[idx % len(self._infos)]

    def ordered_from(self, key: int, limit: int | None = None) -> list[GroupInfo]:
        """Groups ordered clockwise by how close their start precedes ``key``.

        Equivalent to ``sorted(infos, key=lambda g: ring_distance(
        g.range.lo, key))`` reversed start-side: the first entry is the
        one starting closest behind the key, then onward around the
        ring — the redirect preference order.  ``limit`` truncates.
        """
        if not self._los:
            return []
        pivot = bisect_right(self._los, key % KEY_SPACE)
        # Slices wrap naturally: pivot == 0 makes the first slice the
        # whole list reversed (all starts lie clockwise of the key) and
        # the second slice empty.
        out = self._infos[pivot - 1 :: -1] + self._infos[: pivot - 1 : -1]
        return out[:limit] if limit is not None else out


class RouteCache:
    """A bounded gid-keyed info cache with a lazily rebuilt :class:`RingTable`.

    Drop-in for the dict caches in ``ScatterClient`` and
    ``ScatterNode``: mutations go through :meth:`learn` / :meth:`evict`
    (marking the table dirty); :meth:`table` rebuilds at most once per
    burst of mutations.  Iteration order of :meth:`infos` is insertion
    order, matching the dicts it replaces.
    """

    __slots__ = ("_by_gid", "_table", "capacity")

    def __init__(self, capacity: int) -> None:
        self._by_gid: dict[str, GroupInfo] = {}
        self._table: RingTable | None = None
        self.capacity = capacity

    def __len__(self) -> int:
        return len(self._by_gid)

    def __contains__(self, gid: str) -> bool:
        return gid in self._by_gid

    def get(self, gid: str) -> GroupInfo | None:
        return self._by_gid.get(gid)

    def infos(self) -> list[GroupInfo]:
        return list(self._by_gid.values())

    def learn(self, info: GroupInfo) -> bool:
        """Absorb ``info`` (freshness-gated, capacity-bounded).

        Returns True when the cache changed.  Mirrors the historical
        eviction rule: a brand-new gid at capacity evicts the oldest
        entry; a fresher epoch for a known gid replaces in place.
        """
        cached = self._by_gid.get(info.gid)
        if cached is not None and cached.epoch > info.epoch:
            return False
        if cached is None and len(self._by_gid) >= self.capacity:
            self._by_gid.pop(next(iter(self._by_gid)))
        self._by_gid[info.gid] = info
        self._table = None
        return True

    def evict(self, gid: str) -> None:
        if self._by_gid.pop(gid, None) is not None:
            self._table = None

    def table(self) -> RingTable:
        if self._table is None:
            self._table = RingTable(self._by_gid.values())
        return self._table


def ordered_by_distance(infos: list[GroupInfo], key: int) -> list[GroupInfo]:
    """Reference linear implementation of :meth:`RingTable.ordered_from`.

    Kept for cross-validation in tests and for the ``ring_lookup_10k``
    microbenchmark's baseline side.
    """
    from repro.dht.ring import ring_distance

    return sorted(infos, key=lambda g: ring_distance(g.range.lo, key))

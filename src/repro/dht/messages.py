"""Messages exchanged between Scatter nodes (above the Paxos layer)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.group.info import GroupGenesis, GroupInfo
from repro.store.kvstore import KvOp, KvResult
from repro.txn.spec import TxnSpec


@dataclass(frozen=True, slots=True)
class GroupMsg:
    """Frames a Paxos message with its group id so hosts can demux."""

    gid: str
    inner: Any


@dataclass(frozen=True, slots=True)
class ClientOpReq:
    """A storage operation sent by a client to some node.

    ``ttl > 0`` selects *recursive* routing: a node that does not own the
    key forwards the request itself (decrementing ttl) instead of
    redirecting the client — the mode used when the application runs on
    the overlay nodes, as the paper's Chirp deployment did.
    """

    op: KvOp
    dedup: tuple[str, int] | None = None
    ttl: int = 0


@dataclass(frozen=True, slots=True)
class ClientOpResp:
    """Reply to a client operation.

    ``status`` is one of:

    - ``ok`` — ``result`` holds the outcome.
    - ``not_leader`` — retry at ``leader_hint`` (same group).
    - ``moved`` — the owning group was replaced; ``groups`` holds its
      successors (from the retired group's forwarding pointers).
    - ``busy`` — the group is locked by a group operation; back off.
    - ``redirect`` — this node does not own the key; ``groups`` holds
      the best next hops it knows.
    - ``lost`` — this node knows of no route (rare; client re-seeds).
    """

    status: str
    result: KvResult | None = None
    leader_hint: str | None = None
    groups: tuple[GroupInfo, ...] = ()


@dataclass(frozen=True, slots=True)
class JoinLookupReq:
    """A joining node asks a seed where to join."""


@dataclass(frozen=True, slots=True)
class JoinLookupResp:
    target: GroupInfo | None


@dataclass(frozen=True, slots=True)
class GroupJoinReq:
    """Ask a group's leader to add the sender as a member."""

    gid: str


@dataclass(frozen=True, slots=True)
class GroupJoinResp:
    """``status``: ok | not_leader | busy | unknown_group | moved."""

    status: str
    genesis: GroupGenesis | None = None
    leader_hint: str | None = None
    groups: tuple[GroupInfo, ...] = ()


@dataclass(frozen=True, slots=True)
class GroupLeaveReq:
    """Graceful departure: ask the leader to remove the sender."""

    gid: str


@dataclass(frozen=True, slots=True)
class WelcomeMsg:
    """Shipped to a node added by migration so it can host the group."""

    genesis: GroupGenesis


@dataclass(frozen=True, slots=True)
class TxnPrepareReq:
    gid: str
    spec: TxnSpec


@dataclass(frozen=True, slots=True)
class TxnCommitReq:
    gid: str
    spec: TxnSpec
    data: dict = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class TxnAbortReq:
    gid: str
    spec: TxnSpec


@dataclass(frozen=True, slots=True)
class TxnResp:
    """status: prepared | refused | committed | aborted | dup | ignored |
    not_leader | unknown_group."""

    status: str
    data: Any = None
    leader_hint: str | None = None


@dataclass(frozen=True, slots=True)
class TxnStatusReq:
    spec: TxnSpec


@dataclass(frozen=True, slots=True)
class TxnStatusResp:
    """status: committed | aborted | unknown."""

    status: str
    data: dict = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class GroupNeighborsReq:
    """Ask a group's leader for its fresh info and adjacency pointers."""

    gid: str


@dataclass(frozen=True, slots=True)
class GroupNeighborsResp:
    """status: ok | not_leader | unknown_group | moved."""

    status: str
    info: GroupInfo | None = None
    predecessor: GroupInfo | None = None
    successor: GroupInfo | None = None
    leader_hint: str | None = None
    groups: tuple[GroupInfo, ...] = ()


@dataclass(frozen=True, slots=True)
class GossipReq:
    """Ask a peer for a sample of its routing knowledge."""


@dataclass(frozen=True, slots=True)
class GossipResp:
    infos: tuple[GroupInfo, ...]

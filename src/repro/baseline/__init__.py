"""Baseline systems Scatter is evaluated against.

- :mod:`repro.baseline.chord` — a faithful Chord-style DHT with finger
  tables, successor lists, periodic stabilization, and successor-list
  replication *without* consensus.  This is the "vanilla DHT"/OpenDHT
  stand-in from the paper: scalable and self-organizing, but with
  consistency windows under churn that the experiments measure.
- :mod:`repro.txn.classic` — single-node-coordinator 2PC for the
  non-blocking ablation (E12).
"""

from repro.baseline.chord import ChordClient, ChordConfig, ChordNode, ChordSystem

__all__ = ["ChordClient", "ChordConfig", "ChordNode", "ChordSystem"]

"""Chord-style DHT with successor-list replication (no consensus).

This is the baseline the paper's motivation measures: a well-implemented
peer-to-peer key-value store in the OpenDHT mold.  Every standard
mechanism is here — finger tables for O(log n) lookups, successor lists
for fault tolerance, periodic stabilization, key handoff on membership
change, and replica repair — and yet, because ownership is decided by
each node's *local* view of the ring, churn opens windows where two
nodes both believe they own a key, where an acked write lands on a node
about to lose ownership, or where a departed owner takes the newest
value with it.  Those windows are precisely the inconsistency the
experiments quantify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dht.ring import KEY_SPACE, hash_key
from repro.net.futures import Future, RpcError, RpcTimeout, spawn
from repro.net.node import Node
from repro.net.retry import decorrelated_jitter
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.store.kvstore import KvResult

KEY_BITS = 32


def in_interval(x: int, lo: int, hi: int, inclusive_hi: bool = False) -> bool:
    """Is x in the clockwise interval (lo, hi) / (lo, hi] on the ring?

    Chord convention: when lo == hi the interval spans the whole circle,
    so (a, a] contains everything and (a, a) everything except a.
    """
    x, lo, hi = x % KEY_SPACE, lo % KEY_SPACE, hi % KEY_SPACE
    if lo == hi:
        return True if inclusive_hi else x != lo
    if lo < hi:
        return (lo < x < hi) or (inclusive_hi and x == hi)
    return x > lo or x < hi or (inclusive_hi and x == hi)


@dataclass
class ChordConfig:
    stabilize_interval: float = 0.5
    fix_fingers_interval: float = 0.5
    repair_interval: float = 2.0
    successor_list_len: int = 4
    replication: int = 3
    rpc_timeout: float = 0.5
    # Zave/Leslie hardening.  When True the maintenance protocol follows
    # "How to Make Chord Correct": failure-atomic pointer updates (a
    # candidate successor is probed before adoption; the old chain stays
    # usable until the new pointer is proven live), in-tick successor
    # failover down the full list, and rectify semantics on notify (a
    # dead predecessor is replaced, not just cleared) — plus Leslie-style
    # replica maintenance (immediate re-replication when the successor
    # list changes) and decorrelated jitter on every maintenance timer.
    # Off by default: the naive protocol *is* the measured baseline in
    # E1/E2 and the old-baseline leg of E18.
    hardened: bool = False


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ClosestReq:
    key: int


@dataclass(frozen=True)
class ClosestResp:
    done: bool
    node: str  # owner if done, else next hop
    successors: tuple[str, ...] = ()


@dataclass(frozen=True)
class StabilizeReq:
    pass


@dataclass(frozen=True)
class StabilizeResp:
    predecessor: str | None
    successors: tuple[str, ...]


@dataclass(frozen=True)
class NotifyMsg:
    pass


@dataclass(frozen=True)
class PutReq:
    key: int
    value: object
    stamp: float


@dataclass(frozen=True)
class GetReq:
    key: int


@dataclass(frozen=True)
class OpResp:
    ok: bool
    value: object = None
    version: int = 0
    error: str | None = None


@dataclass(frozen=True)
class ReplicaPush:
    items: tuple[tuple[int, object, float, int], ...]  # (key, value, stamp, version)


@dataclass
class _Stored:
    value: object
    stamp: float
    version: int


class ChordNode(Node):
    """One Chord peer."""

    def __init__(
        self,
        node_id: str,
        sim: Simulator,
        net: SimNetwork,
        config: ChordConfig | None = None,
    ) -> None:
        super().__init__(node_id, sim, net)
        self.config = config or ChordConfig()
        self.ring_id = hash_key(node_id)
        self.successors: list[str] = [node_id]
        self.predecessor: str | None = None
        self.fingers: dict[int, str] = {}
        self._next_finger = 0
        self.store: dict[int, _Stored] = {}
        self._ring_ids: dict[str, int] = {node_id: self.ring_id}
        self._rng = sim.rng(f"chord:{node_id}")
        # Hardened-mode state: per-timer decorrelated-jitter cursors and
        # the replica set last pushed to (for change-triggered re-
        # replication).  Inert in the naive baseline.
        self._jitter_prev: dict[str, float] = {}
        self._last_replicas: tuple[str, ...] | None = None
        self._seed_provider: Callable[[], list[str]] | None = None
        self._rejoining = False

        self.on(ClosestReq, self._on_closest)
        self.on(StabilizeReq, self._on_stabilize)
        self.on(NotifyMsg, self._on_notify)
        self.on(PutReq, self._on_put)
        self.on(GetReq, self._on_get)
        self.on(ReplicaPush, self._on_replica_push)

    # ------------------------------------------------------------------
    # Ring arithmetic
    # ------------------------------------------------------------------
    def rid(self, name: str) -> int:
        if name not in self._ring_ids:
            self._ring_ids[name] = hash_key(name)
        return self._ring_ids[name]

    @property
    def successor(self) -> str:
        return self.successors[0] if self.successors else self.node_id

    def owns(self, key: int) -> bool:
        """Key in (predecessor, self] by this node's local view."""
        if self.predecessor is None:
            return True
        return in_interval(key, self.rid(self.predecessor), self.ring_id, inclusive_hi=True)

    def closest_preceding(self, key: int) -> str:
        """Best local hop toward ``key``: fingers then successors."""
        best = self.node_id
        for candidate in list(self.fingers.values()) + self.successors:
            if candidate == self.node_id:
                continue
            if in_interval(self.rid(candidate), self.ring_id, key):
                if best == self.node_id or in_interval(self.rid(candidate), self.rid(best), key):
                    best = candidate
        return best

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.set_timer(self._rng.uniform(0, self.config.stabilize_interval), self._stabilize_tick)
        self.set_timer(
            self._rng.uniform(0, self.config.fix_fingers_interval), self._fix_fingers_tick
        )
        self.set_timer(self._rng.uniform(0, self.config.repair_interval), self._repair_tick)
        self.set_timer(
            self._rng.uniform(0, self.config.stabilize_interval), self._check_pred_tick
        )

    def on_restart(self) -> None:
        # crash() cancelled the maintenance timers; resume them so a
        # restarted node rejoins stabilization instead of going zombie.
        self.start()

    def _arm(self, name: str, interval: float, fn: Callable[[], None]) -> None:
        """Re-arm a maintenance timer.

        Naive mode keeps the fixed cadence the baseline was measured
        with.  Hardened mode draws a decorrelated-jitter delay per timer
        (bounded to [interval/2, 3*interval/2]) so a cohort of nodes
        that started in phase — or restarted together after a fault —
        does not stabilize in lockstep and repeatedly sample each other
        mid-update.
        """
        if self.config.hardened:
            delay = decorrelated_jitter(
                self._rng,
                interval * 0.5,
                interval * 1.5,
                self._jitter_prev.get(name),
            )
            self._jitter_prev[name] = delay
            self.set_timer(delay, fn)
        else:
            self.set_timer(interval, fn)

    def _check_pred_tick(self) -> None:
        """Clear a dead predecessor so stale pointers stop circulating."""
        pred = self.predecessor
        if pred is not None:
            future = self.request(pred, StabilizeReq(), timeout=self.config.rpc_timeout)

            def on_done(f: Future) -> None:
                if self.alive and f.exception is not None and self.predecessor == pred:
                    self.predecessor = None

            future.add_callback(on_done)
        self._arm("check_pred", self.config.stabilize_interval, self._check_pred_tick)

    def join(self, seed: str, seed_provider: Callable[[], list[str]] | None = None) -> Future:
        """Join the ring via ``seed``: find our successor and stabilize in."""
        self._seed_provider = seed_provider
        return spawn(self.sim, self._join_proc(seed, seed_provider))

    def _join_proc(self, seed: str, seed_provider: Callable[[], list[str]] | None = None):
        while self.alive:
            try:
                owner = yield from _lookup(self, seed, self.ring_id)
            except _LookupFailed:
                # A joiner whose single contact died would otherwise spin
                # on the corpse forever and never enter the ring.  Zave's
                # model assumes a bootstrap *set*; hardened mode honours
                # that by re-drawing a contact after a failed attempt.
                if self.config.hardened and seed_provider is not None:
                    alive = [n for n in seed_provider() if n != self.node_id]
                    if alive:
                        seed = self.sim.rng(f"join-{self.node_id}").choice(alive)
                yield _sleep(self.sim, 0.5)
                continue
            if owner == self.node_id:
                yield _sleep(self.sim, 0.5)
                continue
            self.successors = [owner]
            self.send(owner, NotifyMsg())
            return owner
        return None

    # ------------------------------------------------------------------
    # Stabilization (the heart of Chord's self-organization)
    # ------------------------------------------------------------------
    def _stabilize_tick(self) -> None:
        succ = self.successor
        if succ != self.node_id:
            future = self.request(succ, StabilizeReq(), timeout=self.config.rpc_timeout)
            future.add_callback(lambda f: self._after_stabilize(succ, f))
        self._arm("stabilize", self.config.stabilize_interval, self._stabilize_tick)

    def _after_stabilize(self, succ: str, future: Future) -> None:
        if not self.alive:
            return
        if future.exception is not None:
            # Successor unresponsive: fail over to the next in the list.
            if self.config.hardened:
                self._fail_over(succ)
                return
            if len(self.successors) > 1:
                self.successors.pop(0)
            else:
                self.successors = [self.node_id]
            return
        resp = future.result()
        # Successor's predecessor may sit between us: it is our truer
        # successor.  Zave: adopting it *unverified* breaks the ring when
        # it is already dead — the naive protocol does exactly that and
        # then points its whole refreshed chain through the corpse.
        cand = resp.predecessor
        if cand is not None and cand != self.node_id and in_interval(
            self.rid(cand), self.ring_id, self.rid(succ)
        ):
            if self.config.hardened:
                self._verify_candidate(cand, succ, resp)
                return
            self.successors = [cand] + self.successors
        self._absorb_successors(self.successor, resp)

    def _fail_over(self, dead: str) -> None:
        """Hardened: drop a dead successor and probe the next *now*.

        The naive baseline waits a full stabilize interval per dead list
        entry, so k consecutive failures take k rounds to route around.
        Failure-atomic pointer update walks the list within one tick,
        bounded by the list length.
        """
        if self.successors and self.successors[0] == dead:
            if len(self.successors) > 1:
                self.successors.pop(0)
            else:
                self.successors = [self.node_id]
                self._recover_successor()
            self._maybe_rereplicate()
        succ = self.successor
        if succ != self.node_id:
            future = self.request(succ, StabilizeReq(), timeout=self.config.rpc_timeout)
            future.add_callback(lambda f: self._after_stabilize(succ, f))

    def _recover_successor(self) -> None:
        """Zave: never run with yourself as sole successor in a ring
        that has other members.

        A node in that state claims the whole circle in
        ``_on_closest`` and black-holes every lookup routed to it —
        "I own everything, I hold nothing".  It happens when the last
        live entry in a short successor list dies (the canonical case
        is a fresh joiner whose single contact dies before
        stabilization widens the list).  Fall back to the predecessor
        (ring-of-two repair: stabilization walks the pointer to the
        right place) and, with no predecessor either, re-join through
        a fresh contact.
        """
        if self.predecessor is not None and self.predecessor != self.node_id:
            self.successors = [self.predecessor]
            return
        if self._seed_provider is None or self._rejoining:
            return
        alive = [n for n in self._seed_provider() if n != self.node_id]
        if not alive:
            return
        self._rejoining = True
        seed = self.sim.rng(f"join-{self.node_id}").choice(alive)
        future = spawn(self.sim, self._join_proc(seed, self._seed_provider))
        future.add_callback(lambda f: setattr(self, "_rejoining", False))

    def _verify_candidate(self, cand: str, succ: str, resp: StabilizeResp) -> None:
        """Hardened: probe a candidate successor before adopting it.

        On proof of life we adopt it *with its own fresh successor
        chain*; if it is dead the old pointer stays in place untouched
        (failure atomicity: no intermediate state where the ring routes
        through an unverified node).
        """
        future = self.request(cand, StabilizeReq(), timeout=self.config.rpc_timeout)

        def on_done(f: Future) -> None:
            if not self.alive:
                return
            if f.exception is None:
                self.successors = [cand] + self.successors
                self._absorb_successors(cand, f.result())
            else:
                self._absorb_successors(succ, resp)

        future.add_callback(on_done)

    def _absorb_successors(self, head: str, resp: StabilizeResp) -> None:
        """Refresh the successor list as ``head`` followed by its chain."""
        chain = [head] + [s for s in resp.successors if s != self.node_id]
        deduped: list[str] = []
        for name in chain:
            if name not in deduped:
                deduped.append(name)
        self.successors = deduped[: self.config.successor_list_len]
        self.send(self.successor, NotifyMsg())
        if self.config.hardened:
            self._maybe_rereplicate()

    def _on_stabilize(self, src: str, msg: StabilizeReq) -> StabilizeResp:
        return StabilizeResp(predecessor=self.predecessor, successors=tuple(self.successors))

    def _on_notify(self, src: str, msg: NotifyMsg) -> None:
        if self.predecessor is None or in_interval(
            self.rid(src), self.rid(self.predecessor), self.ring_id
        ):
            old = self.predecessor
            self.predecessor = src
            self._handoff_keys_to(src, old)
        elif self.config.hardened and src != self.predecessor:
            # Zave's rectify: a notify from *behind* our predecessor is
            # evidence the ring shrank.  Probe the incumbent; if it is
            # dead, replace it with the notifier instead of waiting for
            # the periodic check to merely clear it.  Ownership only
            # grows ((src, self] ⊇ (pred, self]), so no handoff needed.
            pred = self.predecessor
            future = self.request(pred, StabilizeReq(), timeout=self.config.rpc_timeout)

            def on_done(f: Future) -> None:
                if self.alive and f.exception is not None and self.predecessor == pred:
                    self.predecessor = src

            future.add_callback(on_done)

    def _handoff_keys_to(self, new_pred: str, old_pred: str | None) -> None:
        """A new predecessor owns part of our key range: push it over."""
        lo = self.rid(old_pred) if old_pred is not None else self.rid(new_pred)
        items = []
        for key, stored in self.store.items():
            if in_interval(key, lo, self.rid(new_pred), inclusive_hi=True) or (
                old_pred is None and not self.owns(key)
            ):
                items.append((key, stored.value, stored.stamp, stored.version))
        if items:
            self.send(new_pred, ReplicaPush(items=tuple(items)))

    def _fix_fingers_tick(self) -> None:
        i = self._next_finger
        self._next_finger = (self._next_finger + 1) % KEY_BITS
        target = (self.ring_id + (1 << i)) % KEY_SPACE
        spawn(self.sim, self._fix_finger(i, target))
        self._arm("fix_fingers", self.config.fix_fingers_interval, self._fix_fingers_tick)

    def _fix_finger(self, i: int, target: int):
        try:
            owner = yield from _lookup(self, self.node_id, target)
        except _LookupFailed:
            return
        if self.alive:
            self.fingers[i] = owner

    def _repair_tick(self) -> None:
        """Push owned keys to the successor list (replica maintenance)."""
        items = tuple(
            (key, s.value, s.stamp, s.version) for key, s in self.store.items() if self.owns(key)
        )
        if items:
            for succ in self.successors[: self.config.replication - 1]:
                if succ != self.node_id:
                    self.send(succ, ReplicaPush(items=items))
        if self.config.hardened:
            self._last_replicas = tuple(
                s for s in self.successors[: self.config.replication - 1] if s != self.node_id
            )
        self._arm("repair", self.config.repair_interval, self._repair_tick)

    def _maybe_rereplicate(self) -> None:
        """Leslie-style owner-driven repair: when the successor list
        changes, push owned keys to the *new* replica-set members right
        away instead of leaving the replication factor degraded until
        the next periodic repair tick."""
        current = tuple(
            s for s in self.successors[: self.config.replication - 1] if s != self.node_id
        )
        if current == self._last_replicas:
            return
        previous = self._last_replicas or ()
        self._last_replicas = current
        fresh = [s for s in current if s not in previous]
        if not fresh:
            return
        items = tuple(
            (key, s.value, s.stamp, s.version) for key, s in self.store.items() if self.owns(key)
        )
        if items:
            for succ in fresh:
                self.send(succ, ReplicaPush(items=items))

    # ------------------------------------------------------------------
    # Lookup and storage
    # ------------------------------------------------------------------
    def _on_closest(self, src: str, msg: ClosestReq) -> ClosestResp:
        succ = self.successor
        if in_interval(msg.key, self.ring_id, self.rid(succ), inclusive_hi=True):
            return ClosestResp(done=True, node=succ, successors=tuple(self.successors))
        hop = self.closest_preceding(msg.key)
        if hop == self.node_id:
            return ClosestResp(done=True, node=self.node_id)
        return ClosestResp(done=False, node=hop)

    def _on_put(self, src: str, msg: PutReq) -> OpResp:
        stored = self.store.get(msg.key)
        version = (stored.version if stored else 0) + 1
        self.store[msg.key] = _Stored(value=msg.value, stamp=msg.stamp, version=version)
        # Asynchronous best-effort replication: ack before replicas land.
        items = ((msg.key, msg.value, msg.stamp, version),)
        for succ in self.successors[: self.config.replication - 1]:
            if succ != self.node_id:
                self.send(succ, ReplicaPush(items=items))
        return OpResp(ok=True, version=version)

    def _on_get(self, src: str, msg: GetReq) -> OpResp:
        stored = self.store.get(msg.key)
        if stored is None:
            return OpResp(ok=False, error="not_found")
        return OpResp(ok=True, value=stored.value, version=stored.version)

    def _on_replica_push(self, src: str, msg: ReplicaPush) -> None:
        for key, value, stamp, version in msg.items:
            mine = self.store.get(key)
            if mine is None or (stamp, version) > (mine.stamp, mine.version):
                self.store[key] = _Stored(value=value, stamp=stamp, version=version)


class _LookupFailed(Exception):
    pass


def _lookup(node: Node, start: str, key: int, max_hops: int = 32, hop_counter: list | None = None):
    """Iterative Chord lookup driven from ``node``; returns the owner name.

    ``hop_counter`` (a single-element list) accumulates the number of
    routing RPCs issued, for hop-count measurements.
    """
    target = start
    rpc_timeout = getattr(node, "config").rpc_timeout if hasattr(node, "config") else 0.5
    for _hop in range(max_hops):
        if hop_counter is not None:
            hop_counter[0] += 1
        try:
            resp = yield node.request(target, ClosestReq(key=key), timeout=rpc_timeout)
        except (RpcTimeout, RpcError) as exc:
            raise _LookupFailed(str(exc)) from exc
        if resp.done:
            return resp.node
        if resp.node == target:
            raise _LookupFailed("lookup made no progress")
        target = resp.node
    raise _LookupFailed("hop limit exceeded")


# ---------------------------------------------------------------------------
# Client and system
# ---------------------------------------------------------------------------
@dataclass
class ChordClientConfig:
    rpc_timeout: float = 0.5
    op_timeout: float = 8.0
    lookup_retries: int = 4


class ChordClient(Node):
    """Client mirroring :class:`ScatterClient`'s API over the Chord ring."""

    def __init__(
        self,
        client_id: str,
        sim: Simulator,
        net: SimNetwork,
        seed_provider: Callable[[], list[str]],
        config: ChordClientConfig | None = None,
    ) -> None:
        super().__init__(client_id, sim, net)
        self.seed_provider = seed_provider
        self.config = config or ChordClientConfig()
        self.records = []
        self._rng = sim.rng(f"chordclient:{client_id}")

    def get(self, key: str | int) -> Future:
        return self._run("get", self._key(key), None)

    def put(self, key: str | int, value: object) -> Future:
        return self._run("put", self._key(key), value)

    @staticmethod
    def _key(key: str | int) -> int:
        return hash_key(key) if isinstance(key, str) else key

    def _run(self, op: str, key: int, value: object) -> Future:
        from repro.dht.client import OpRecord  # shared record type

        record = OpRecord(op=op, key=key, value=value, invoke_time=self.sim.now)
        self.records.append(record)
        return spawn(self.sim, self._op_proc(op, key, value, record))

    def _op_proc(self, op: str, key: int, value: object, record):
        deadline = self.sim.now + self.config.op_timeout
        while self.sim.now < deadline:
            seeds = self.seed_provider()
            if not seeds:
                break
            seed = self._rng.choice(seeds)
            record.attempts += 1
            hop_counter = [0]
            try:
                owner = yield from _lookup(self, seed, key, hop_counter=hop_counter)
            except _LookupFailed:
                record.hops += hop_counter[0]
                yield _sleep(self.sim, 0.2)
                continue
            record.hops += hop_counter[0]
            msg = PutReq(key, value, stamp=self.sim.now) if op == "put" else GetReq(key)
            try:
                resp = yield self.request(owner, msg, timeout=self.config.rpc_timeout)
            except (RpcTimeout, RpcError):
                yield _sleep(self.sim, 0.2)
                continue
            result = KvResult(ok=resp.ok, value=resp.value, version=resp.version, error=resp.error)
            record.response_time = self.sim.now
            record.result = result
            return result
        result = KvResult(ok=False, error="timeout")
        record.response_time = self.sim.now
        record.result = result
        return result


class ChordSystem:
    """Builder mirroring :class:`ScatterSystem` for the baseline."""

    def __init__(self, sim: Simulator, net: SimNetwork, config: ChordConfig | None = None) -> None:
        self.sim = sim
        self.net = net
        self.config = config or ChordConfig()
        self.nodes: dict[str, ChordNode] = {}
        self._counter = 0

    @staticmethod
    def build(
        sim: Simulator, net: SimNetwork, n_nodes: int, config: ChordConfig | None = None
    ) -> "ChordSystem":
        system = ChordSystem(sim, net, config)
        names = [system._new_name() for _ in range(n_nodes)]
        for name in names:
            system.nodes[name] = ChordNode(name, sim, net, config=system.config)
        # Pre-build a correct ring (the steady state), like ScatterSystem.
        ordered = sorted(names, key=hash_key)
        n = len(ordered)
        for i, name in enumerate(ordered):
            node = system.nodes[name]
            node.successors = [ordered[(i + j + 1) % n] for j in range(system.config.successor_list_len)]
            node.predecessor = ordered[(i - 1) % n]
        for node in system.nodes.values():
            node.start()
        return system

    def _new_name(self) -> str:
        name = f"c{self._counter}"
        self._counter += 1
        return name

    def add_node(self, seed: str | None = None) -> ChordNode:
        name = self._new_name()
        node = ChordNode(name, self.sim, self.net, config=self.config)
        self.nodes[name] = node
        node.start()
        if seed is None:
            alive = [n for n in self.alive_node_ids() if n != name]
            seed = self.sim.rng("seeds").choice(alive) if alive else None
        if seed is not None:
            node.join(seed, seed_provider=self.alive_node_ids)
        return node

    def kill_node(self, node_id: str) -> None:
        node = self.nodes.get(node_id)
        if node is not None:
            node.shutdown()

    def alive_node_ids(self) -> list[str]:
        return sorted(name for name, node in self.nodes.items() if node.alive)


def _sleep(sim: Simulator, delay: float) -> Future:
    future = Future()
    sim.schedule(delay, future.set_result, None)
    return future

"""The simulator: a virtual clock plus the event loop that advances it."""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import Any, Callable

from repro.obs.runtime import current_tracer
from repro.sim.events import EventHandle, EventQueue

# The run loops index heap entries with literal ints rather than the
# named constants from repro.sim.events: a LOAD_GLOBAL per access is
# measurable at millions of events per second.  Layout: [time, seq, fn,
# args] with fn None once cancelled or popped (see events.py).


class Simulator:
    """Single-threaded virtual-time event loop.

    All components in a simulation share one ``Simulator``.  Time is a
    float in seconds and only moves forward when the loop dequeues the
    next event.  Randomness is obtained through :meth:`rng`, which hands
    out independent, deterministically seeded streams keyed by name, so
    adding a new consumer of randomness never perturbs existing streams.

    The run loops (:meth:`run`, :meth:`run_until`) operate directly on
    the event heap rather than going through :meth:`step` — at millions
    of events per run the per-event method-call overhead is the dominant
    cost, and the ``repro.perf`` microbenchmarks track exactly this.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._now = 0.0
        self._queue = EventQueue()
        self._rngs: dict[str, random.Random] = {}
        self._stopped = False
        self._events_processed = 0
        # Ambient tracing hookup (repro.obs): consulted exactly once, at
        # construction.  ``tracer`` is None in the untraced default, so
        # every instrumented call site in the stack reduces to one
        # attribute load plus a falsy branch.
        self.tracer = current_tracer()
        if self.tracer is not None:
            self.tracer.bind(self)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, stream: str) -> random.Random:
        """Return the named deterministic random stream.

        The stream's seed derives from (simulator seed, stream name), so
        two simulations with the same seed see identical streams
        regardless of creation order.
        """
        if stream not in self._rngs:
            # random.Random accepts arbitrary hashable seeds but hash() of
            # str is salted per-process; derive a stable integer instead.
            derived = _stable_hash(f"{self.seed}:{stream}")
            self._rngs[stream] = random.Random(derived)
        return self._rngs[stream]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, fn, args)

    def schedule_fire(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Like :meth:`schedule` but fire-and-forget: no cancellation handle.

        Use for events that are never cancelled (message deliveries,
        one-shot continuations) — it skips the ``EventHandle`` allocation
        on the simulator's hottest path while consuming the same sequence
        number, so interleaving with handle-based scheduling is
        unchanged.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        # Inlined EventQueue.push_fire: this is the hottest scheduling
        # call in the simulator and the extra frame is measurable.
        queue = self._queue
        heappush(queue._heap, [self._now + delay, queue._seq, fn, args])
        queue._seq += 1
        queue._live += 1

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        return self._queue.push(time, fn, args)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at the current time, after pending same-time events."""
        return self._queue.push(self._now, fn, args)

    def call_soon_fire(self, fn: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`call_soon` (no handle allocation)."""
        queue = self._queue
        heappush(queue._heap, [self._now, queue._seq, fn, args])
        queue._seq += 1
        queue._live += 1

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty."""
        popped = self._queue.pop()
        if popped is None:
            return False
        time, fn, args = popped
        assert time >= self._now, "event heap returned a past event"
        self._now = time
        self._events_processed += 1
        fn(*args)
        return True

    def run(self, max_events: int | None = None) -> None:
        """Run until the queue drains (or ``max_events`` is hit)."""
        self._stopped = False
        queue = self._queue
        heap = queue._heap
        pop = heappop
        # The processed/live counters are accumulated locally and flushed
        # additively in ``finally``, so nested run loops (an event handler
        # calling run_until) and raising handlers stay consistent.
        processed = 0
        try:
            while heap and not self._stopped:
                if max_events is not None and processed >= max_events:
                    return
                entry = pop(heap)
                fn = entry[2]
                if fn is None:
                    continue
                entry[2] = None
                processed += 1
                self._now = entry[0]
                fn(*entry[3])
        finally:
            queue._live -= processed
            self._events_processed += processed
            if self.tracer is not None:
                self.tracer.metrics.inc("sim.events", processed)

    def run_until(self, time: float) -> None:
        """Run events with timestamp <= ``time``; leave the clock at ``time``.

        Advancing the clock to exactly ``time`` even when the queue holds
        no event at that instant keeps back-to-back ``run_until`` calls
        composable.
        """
        self._stopped = False
        queue = self._queue
        heap = queue._heap
        pop = heappop
        processed = 0
        try:
            while heap and not self._stopped:
                entry = heap[0]
                fn = entry[2]
                if fn is None:
                    pop(heap)
                    continue
                if entry[0] > time:
                    break
                pop(heap)
                entry[2] = None
                processed += 1
                self._now = entry[0]
                fn(*entry[3])
        finally:
            queue._live -= processed
            self._events_processed += processed
            if self.tracer is not None:
                self.tracer.metrics.inc("sim.events", processed)
        if self._now < time:
            self._now = time

    def run_for(self, duration: float) -> None:
        """Run for ``duration`` seconds of virtual time from now."""
        self.run_until(self._now + duration)

    def stop(self) -> None:
        """Make the innermost run loop return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._queue)


def _stable_hash(text: str) -> int:
    """Process-independent 64-bit hash (FNV-1a) for seed derivation."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value

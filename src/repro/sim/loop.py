"""The simulator: a virtual clock plus the event loop that advances it."""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import Any, Callable

from repro.obs.runtime import current_tracer
from repro.sim.events import EventHandle, EventQueue

# The run loops index heap entries with literal ints rather than the
# named constants from repro.sim.events: a LOAD_GLOBAL per access is
# measurable at millions of events per second.  Layout: [time, seq, fn,
# args] with fn None once cancelled or popped (see events.py).
#
# Direct-dispatch delivery entries (see SimNetwork's fast send path)
# are 7-slot lists [time, seq, handler, [src, msg], stats, dst, net]:
# the event function IS the destination handler, so a message delivery
# runs straight from the loop with no network frame in between — the
# replica-local delivery fast path.  Because ``seq`` is unique, heap
# comparison never reads past index 1, so the extra slots are inert.
# The loop finishes the network's bookkeeping (stats.delivered) after
# the handler returns and recycles the entry into ``Simulator._msg_pool``
# with its argument slots cleared, so message objects are not pinned
# and steady-state delivery allocates nothing.  All of it is invisible
# to simulation results: a direct entry consumes the same sequence
# number, sorts identically, and runs the same handler at the same time
# as a classic _deliver entry; SimNetwork de-optimizes in-flight
# entries whenever a delivery-time check could become non-vacuous.

# Upper bound on recycled delivery entries kept around; beyond this the
# pool stops growing and entries fall back to the garbage collector.
# Bounds memory at ~peak in-flight messages, not total messages.
_MSG_POOL_CAP = 8192


class Simulator:
    """Single-threaded virtual-time event loop.

    All components in a simulation share one ``Simulator``.  Time is a
    float in seconds and only moves forward when the loop dequeues the
    next event.  Randomness is obtained through :meth:`rng`, which hands
    out independent, deterministically seeded streams keyed by name, so
    adding a new consumer of randomness never perturbs existing streams.

    The run loops (:meth:`run`, :meth:`run_until`) operate directly on
    the event heap rather than going through :meth:`step` — at millions
    of events per run the per-event method-call overhead is the dominant
    cost, and the ``repro.perf`` microbenchmarks track exactly this.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._now = 0.0
        self._queue = EventQueue()
        self._rngs: dict[str, random.Random] = {}
        self._stopped = False
        self._events_processed = 0
        # Recycled 5-slot delivery entries for the pooled network send
        # path (see module comment).  Shared by every network bound to
        # this simulator; only the run loops below ever refill it.
        self._msg_pool: list[list] = []
        # Ambient tracing hookup (repro.obs): consulted exactly once, at
        # construction.  ``tracer`` is None in the untraced default, so
        # every instrumented call site in the stack reduces to one
        # attribute load plus a falsy branch.
        self.tracer = current_tracer()
        if self.tracer is not None:
            self.tracer.bind(self)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, stream: str) -> random.Random:
        """Return the named deterministic random stream.

        The stream's seed derives from (simulator seed, stream name), so
        two simulations with the same seed see identical streams
        regardless of creation order.
        """
        if stream not in self._rngs:
            # random.Random accepts arbitrary hashable seeds but hash() of
            # str is salted per-process; derive a stable integer instead.
            derived = _stable_hash(f"{self.seed}:{stream}")
            self._rngs[stream] = random.Random(derived)
        return self._rngs[stream]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, fn, args)

    def schedule_fire(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Like :meth:`schedule` but fire-and-forget: no cancellation handle.

        Use for events that are never cancelled (message deliveries,
        one-shot continuations) — it skips the ``EventHandle`` allocation
        on the simulator's hottest path while consuming the same sequence
        number, so interleaving with handle-based scheduling is
        unchanged.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        # Inlined EventQueue.push_fire: this is the hottest scheduling
        # call in the simulator and the extra frame is measurable.
        queue = self._queue
        heappush(queue._heap, [self._now + delay, queue._seq, fn, args])
        queue._seq += 1
        queue._live += 1

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        return self._queue.push(time, fn, args)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at the current time, after pending same-time events."""
        return self._queue.push(self._now, fn, args)

    def call_soon_fire(self, fn: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`call_soon` (no handle allocation)."""
        queue = self._queue
        heappush(queue._heap, [self._now, queue._seq, fn, args])
        queue._seq += 1
        queue._live += 1

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty."""
        queue = self._queue
        heap = queue._heap
        while heap:
            entry = heappop(heap)
            fn = entry[2]
            if fn is None:
                continue
            entry[2] = None
            queue._live -= 1
            assert entry[0] >= self._now, "event heap returned a past event"
            self._now = entry[0]
            self._events_processed += 1
            # Same direct-dispatch bookkeeping as the run loops (module
            # comment), so single-stepping stays result-identical.
            if len(entry) == 7:
                args = entry[3]
                fn(args[0], args[1])
                entry[4].delivered += 1
                if len(self._msg_pool) < _MSG_POOL_CAP:
                    args[0] = args[1] = None
                    self._msg_pool.append(entry)
            else:
                fn(*entry[3])
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        """Run until the queue drains (or ``max_events`` is hit)."""
        self._stopped = False
        queue = self._queue
        heap = queue._heap
        pop = heappop
        pool = self._msg_pool
        cap = _MSG_POOL_CAP
        size = len
        # Folding the no-limit case into an unreachable bound keeps the
        # per-event limit check to a single comparison.
        limit = float("inf") if max_events is None else max_events
        # The processed/live counters are accumulated locally and flushed
        # additively in ``finally``, so nested run loops (an event handler
        # calling run_until) and raising handlers stay consistent.
        processed = 0
        try:
            while heap and not self._stopped:
                if processed >= limit:
                    return
                entry = pop(heap)
                fn = entry[2]
                if fn is None:
                    continue
                entry[2] = None
                processed += 1
                self._now = entry[0]
                # Direct-dispatch delivery entries (7-slot; see module
                # comment): call the handler through the specialized
                # two-positional-arg path (fn(*args) compiles to the
                # slow CALL_FUNCTION_EX), then complete the network's
                # delivered accounting and recycle the entry.  Only
                # after a clean return — a raising handler leaves the
                # count untouched and the entry to the GC.
                if size(entry) == 7:
                    args = entry[3]
                    fn(args[0], args[1])
                    entry[4].delivered += 1
                    if size(pool) < cap:
                        args[0] = args[1] = None
                        pool.append(entry)
                else:
                    fn(*entry[3])
        finally:
            queue._live -= processed
            self._events_processed += processed
            if self.tracer is not None:
                self.tracer.metrics.inc("sim.events", processed)

    def run_until(self, time: float) -> None:
        """Run events with timestamp <= ``time``; leave the clock at ``time``.

        Advancing the clock to exactly ``time`` even when the queue holds
        no event at that instant keeps back-to-back ``run_until`` calls
        composable.
        """
        self._stopped = False
        queue = self._queue
        heap = queue._heap
        pop = heappop
        pool = self._msg_pool
        cap = _MSG_POOL_CAP
        size = len
        processed = 0
        try:
            while heap and not self._stopped:
                entry = heap[0]
                fn = entry[2]
                if fn is None:
                    pop(heap)
                    continue
                if entry[0] > time:
                    break
                pop(heap)
                entry[2] = None
                processed += 1
                self._now = entry[0]
                if size(entry) == 7:
                    args = entry[3]
                    fn(args[0], args[1])
                    entry[4].delivered += 1
                    if size(pool) < cap:
                        args[0] = args[1] = None
                        pool.append(entry)
                else:
                    fn(*entry[3])
        finally:
            queue._live -= processed
            self._events_processed += processed
            if self.tracer is not None:
                self.tracer.metrics.inc("sim.events", processed)
        if self._now < time:
            self._now = time

    def run_for(self, duration: float) -> None:
        """Run for ``duration`` seconds of virtual time from now."""
        self.run_until(self._now + duration)

    def stop(self) -> None:
        """Make the innermost run loop return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._queue)


def _stable_hash(text: str) -> int:
    """Process-independent 64-bit hash (FNV-1a) for seed derivation."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value

"""The simulator: a virtual clock plus the event loop that advances it."""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.sim.events import EventHandle, EventQueue


class Simulator:
    """Single-threaded virtual-time event loop.

    All components in a simulation share one ``Simulator``.  Time is a
    float in seconds and only moves forward when the loop dequeues the
    next event.  Randomness is obtained through :meth:`rng`, which hands
    out independent, deterministically seeded streams keyed by name, so
    adding a new consumer of randomness never perturbs existing streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._now = 0.0
        self._queue = EventQueue()
        self._rngs: dict[str, random.Random] = {}
        self._stopped = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, stream: str) -> random.Random:
        """Return the named deterministic random stream.

        The stream's seed derives from (simulator seed, stream name), so
        two simulations with the same seed see identical streams
        regardless of creation order.
        """
        if stream not in self._rngs:
            # random.Random accepts arbitrary hashable seeds but hash() of
            # str is salted per-process; derive a stable integer instead.
            derived = _stable_hash(f"{self.seed}:{stream}")
            self._rngs[stream] = random.Random(derived)
        return self._rngs[stream]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, fn, args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        return self._queue.push(time, fn, args)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at the current time, after pending same-time events."""
        return self._queue.push(self._now, fn, args)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        assert event.time >= self._now, "event heap returned a past event"
        self._now = event.time
        self._events_processed += 1
        event.fn(*event.args)
        return True

    def run(self, max_events: int | None = None) -> None:
        """Run until the queue drains (or ``max_events`` is hit)."""
        self._stopped = False
        processed = 0
        while not self._stopped:
            if max_events is not None and processed >= max_events:
                return
            if not self.step():
                return
            processed += 1

    def run_until(self, time: float) -> None:
        """Run events with timestamp <= ``time``; leave the clock at ``time``.

        Advancing the clock to exactly ``time`` even when the queue holds
        no event at that instant keeps back-to-back ``run_until`` calls
        composable.
        """
        self._stopped = False
        while not self._stopped:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
        if self._now < time:
            self._now = time

    def run_for(self, duration: float) -> None:
        """Run for ``duration`` seconds of virtual time from now."""
        self.run_until(self._now + duration)

    def stop(self) -> None:
        """Make the innermost run loop return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._queue)


def _stable_hash(text: str) -> int:
    """Process-independent 64-bit hash (FNV-1a) for seed derivation."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value

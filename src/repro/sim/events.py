"""Event heap for the discrete-event simulator.

Events are ordered by (time, sequence).  The sequence number guarantees a
total, deterministic order even when many events share a timestamp, which
is common (e.g. a batch of messages delivered with constant latency).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    ``fn`` and ``args`` are excluded from ordering; only (time, seq)
    participate so ordering never depends on callable identity.
    """

    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Cancellation token for a scheduled event."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue: "EventQueue") -> None:
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self._event.cancelled:
            self._event.cancelled = True
            self._queue._note_cancelled()


class EventQueue:
    """Min-heap of events with lazy deletion of cancelled entries."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, fn: Callable[..., None], args: tuple[Any, ...] = ()) -> EventHandle:
        event = Event(time=time, seq=self._seq, fn=fn, args=args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event, self)

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def _note_cancelled(self) -> None:
        self._live -= 1

"""Event heap for the discrete-event simulator.

Events are ordered by (time, sequence).  The sequence number guarantees a
total, deterministic order even when many events share a timestamp, which
is common (e.g. a batch of messages delivered with constant latency).

Heap entries are plain lists ``[time, seq, fn, args]`` rather than
objects: list comparison orders by (time, seq), and because ``seq`` is
unique the comparison never reaches the non-orderable ``fn`` slot.  This
shaves an allocation plus attribute dispatch off every scheduled event —
the hottest path in the whole simulator (see ``repro.perf``).

Cancellation is lazy: cancelling (or popping) an entry nulls its ``fn``
slot in place and the heap skips such entries when they surface.  A
popped entry is indistinguishable from a cancelled one, which makes
cancel-after-fire a natural no-op.

Scheduling comes in two flavours:

- :meth:`EventQueue.push` returns an :class:`EventHandle` for callers
  that may cancel (timers, RPC timeouts).
- :meth:`EventQueue.push_fire` is fire-and-forget: no handle object is
  allocated at all — the right choice for the overwhelmingly common
  never-cancelled case (message deliveries, process resumptions).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

# Indices into a heap entry [time, seq, fn, args].
TIME, SEQ, FN, ARGS = 0, 1, 2, 3

# A heap entry; fn is None once cancelled or popped.
Entry = list


class EventHandle:
    """Cancellation token for a scheduled event.

    ``cancelled`` is True once the event can no longer fire — either
    because :meth:`cancel` was called or because it already fired.
    """

    __slots__ = ("_entry", "_queue")

    def __init__(self, entry: Entry, queue: "EventQueue") -> None:
        self._entry = entry
        self._queue = queue

    @property
    def time(self) -> float:
        return self._entry[TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[FN] is None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; no-op after fire."""
        entry = self._entry
        if entry[FN] is not None:
            entry[FN] = None
            self._queue._live -= 1


class EventQueue:
    """Min-heap of events with lazy deletion of cancelled entries."""

    def __init__(self) -> None:
        self._heap: list[Entry] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, fn: Callable[..., None], args: tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``fn(*args)`` at ``time``; returns a cancellation handle."""
        entry = [time, self._seq, fn, args]
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, entry)
        return EventHandle(entry, self)

    def push_fire(self, time: float, fn: Callable[..., None], args: tuple[Any, ...] = ()) -> None:
        """Fire-and-forget schedule: no handle, cannot be cancelled.

        Consumes a sequence number exactly like :meth:`push`, so mixing
        the two paths preserves the global (time, seq) order — a
        fire-and-forget event scheduled after a handle-based one at the
        same timestamp still fires after it.
        """
        heapq.heappush(self._heap, [time, self._seq, fn, args])
        self._seq += 1
        self._live += 1

    def pop(self) -> tuple[float, Callable[..., None], tuple[Any, ...]] | None:
        """Remove and return ``(time, fn, args)`` of the earliest live event.

        Returns None if the queue holds no live events.  The popped entry
        is neutralized in place so a late ``EventHandle.cancel`` is a
        no-op.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            fn = entry[FN]
            if fn is None:
                continue
            entry[FN] = None
            self._live -= 1
            return entry[TIME], fn, entry[ARGS]
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0][FN] is None:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][TIME]

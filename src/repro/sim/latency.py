"""Link latency models for the simulated network.

The paper evaluates both a cluster testbed (Emulab, uniform low latency)
and a wide-area deployment (PlanetLab, heavy-tailed heterogeneous
latency).  ``WanLatencyMatrix`` synthesizes the latter: each node gets a
random 2-D coordinate and pairwise one-way latency is distance-derived
plus log-normal jitter, which reproduces the latency spread that makes
the paper's leader-placement policy matter.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """One-way message latency between two named endpoints."""

    @abstractmethod
    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        """Return a one-way latency in seconds for a message src -> dst."""

    def expected(self, src: str, dst: str) -> float:
        """Best-effort expected latency (used by latency-aware policies)."""
        probe = random.Random(0)
        return sum(self.sample(src, dst, probe) for _ in range(8)) / 8


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``latency`` seconds."""

    def __init__(self, latency: float = 0.001) -> None:
        if latency <= 0:
            raise ValueError("latency must be positive")
        self.latency = latency

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return self.latency

    def expected(self, src: str, dst: str) -> float:
        return self.latency


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from [lo, hi)."""

    def __init__(self, lo: float = 0.001, hi: float = 0.005) -> None:
        if not 0 < lo <= hi:
            raise ValueError("require 0 < lo <= hi")
        self.lo = lo
        self.hi = hi

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)

    def expected(self, src: str, dst: str) -> float:
        return (self.lo + self.hi) / 2


class LogNormalLatency(LatencyModel):
    """Heavy-tailed latency: ``base * lognormal(0, sigma)``.

    Models LAN/datacenter links where most messages are fast but a tail
    is slow (queueing, scheduling).
    """

    def __init__(self, base: float = 0.002, sigma: float = 0.4) -> None:
        if base <= 0 or sigma < 0:
            raise ValueError("require base > 0 and sigma >= 0")
        self.base = base
        self.sigma = sigma

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return self.base * rng.lognormvariate(0.0, self.sigma)

    def expected(self, src: str, dst: str) -> float:
        return self.base * math.exp(self.sigma**2 / 2)


class WanLatencyMatrix(LatencyModel):
    """Coordinate-derived pairwise latency with log-normal jitter.

    Each endpoint name is lazily assigned a point in a ``span`` x ``span``
    plane (units: seconds of one-way latency across the plane).  Base
    latency between two endpoints is Euclidean distance plus a floor;
    samples multiply the base by log-normal jitter.  Assignment is
    deterministic in the endpoint name and the model seed, so two
    simulations place the same nodes at the same coordinates.
    """

    def __init__(
        self,
        seed: int = 0,
        span: float = 0.08,
        floor: float = 0.002,
        jitter_sigma: float = 0.2,
        sites: int = 0,
        site_spread: float = 0.004,
    ) -> None:
        self.seed = seed
        self.span = span
        self.floor = floor
        self.jitter_sigma = jitter_sigma
        self.sites = sites
        self.site_spread = site_spread
        self._coords: dict[str, tuple[float, float]] = {}

    def coord(self, name: str) -> tuple[float, float]:
        if name not in self._coords:
            rng = random.Random(f"{self.seed}/{name}")
            if self.sites > 0:
                # Clustered topology (PlanetLab-like): each endpoint sits
                # near one of a few sites, so intra-site latency is small
                # and inter-site latency dominates.
                site = rng.randrange(self.sites)
                site_rng = random.Random(f"{self.seed}/site/{site}")
                sx = site_rng.uniform(0, self.span)
                sy = site_rng.uniform(0, self.span)
                self._coords[name] = (
                    sx + rng.uniform(-self.site_spread, self.site_spread),
                    sy + rng.uniform(-self.site_spread, self.site_spread),
                )
            else:
                self._coords[name] = (rng.uniform(0, self.span), rng.uniform(0, self.span))
        return self._coords[name]

    def base_latency(self, src: str, dst: str) -> float:
        if src == dst:
            return self.floor
        (x1, y1), (x2, y2) = self.coord(src), self.coord(dst)
        return self.floor + math.hypot(x2 - x1, y2 - y1)

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return self.base_latency(src, dst) * rng.lognormvariate(0.0, self.jitter_sigma)

    def expected(self, src: str, dst: str) -> float:
        return self.base_latency(src, dst) * math.exp(self.jitter_sigma**2 / 2)

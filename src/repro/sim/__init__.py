"""Deterministic discrete-event simulation kernel.

Everything in this reproduction runs on top of a single-threaded,
virtual-time event loop.  Determinism is a hard requirement: a given
(configuration, seed) pair must reproduce byte-identical histories so that
experiments are repeatable and failures are debuggable.  To that end:

- All timing flows through :class:`Simulator` (no wall-clock access).
- All randomness flows through named, seeded streams (``sim.rng("churn")``).
- Event ordering ties are broken by a monotonically increasing sequence
  number, never by object identity.
"""

from repro.sim.events import EventHandle, EventQueue
from repro.sim.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
    WanLatencyMatrix,
)
from repro.sim.loop import Simulator
from repro.sim.network import NetworkStats, SimNetwork

__all__ = [
    "ConstantLatency",
    "EventHandle",
    "EventQueue",
    "LatencyModel",
    "LogNormalLatency",
    "NetworkStats",
    "SimNetwork",
    "Simulator",
    "UniformLatency",
    "WanLatencyMatrix",
]

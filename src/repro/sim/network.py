"""Simulated message network.

Endpoints register a handler under a string address.  ``send`` schedules
delivery after a latency sampled from the installed :class:`LatencyModel`.
The network models the failure modes the paper's protocols must tolerate:

- **Crash/churn**: a departed endpoint silently swallows messages (both
  inbound and, via :meth:`set_down`, outbound sends are suppressed).
- **Loss**: each message is independently dropped with ``drop_prob``.
- **Partitions**: arbitrary blocked endpoint pairs — symmetric via
  :meth:`block` or *one-way* via :meth:`block_one_way` (a node that can
  send but not receive, the asymmetric case naive fault tests miss).
- **Gray failure**: per-link latency multipliers (:meth:`set_link_slowdown`)
  model links that are degraded rather than dead — the hardest case for
  timeout-based failure detectors.
- **Duplication**: with ``dup_prob`` a delivered message is also delivered
  a second time after an independently sampled latency, modelling
  at-least-once transports and retransmission races.

All randomness comes from named simulator streams, so every fault
behaviour is deterministic in (seed, configuration).

Messages are delivered in timestamp order but *not* FIFO per link when the
latency model is non-constant — exactly the asynchrony Paxos must handle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from heapq import heappush
from typing import Any, Callable

from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.loop import Simulator

Handler = Callable[[str, Any], None]


@dataclass
class NetworkStats:
    """Counters for traffic accounting (used by the scalability bench).

    Per-message-type counting (``by_type``) costs a ``type(msg).__name__``
    plus dict churn on *every* send, so it is opt-in: benches that read
    the breakdown set ``count_types=True``; everyone else pays only the
    integer increments.
    """

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    to_dead: int = 0
    duplicated: int = 0
    count_types: bool = False
    by_type: dict[str, int] = field(default_factory=dict)

    def note_sent(self, msg: Any) -> None:
        self.sent += 1
        if self.count_types:
            name = type(msg).__name__
            self.by_type[name] = self.by_type.get(name, 0) + 1


class SimNetwork:
    """Best-effort asynchronous message network over a :class:`Simulator`."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        drop_prob: float = 0.0,
        dup_prob: float = 0.0,
    ) -> None:
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        if not 0.0 <= dup_prob < 1.0:
            raise ValueError("dup_prob must be in [0, 1)")
        self.sim = sim
        self.latency = latency or ConstantLatency()
        self._drop_prob = drop_prob
        self._dup_prob = dup_prob
        self.stats = NetworkStats()
        self._handlers: dict[str, Handler] = {}
        self._down: set[str] = set()
        self._blocked_pairs: set[tuple[str, str]] = set()
        self._slowdowns: dict[tuple[str, str], float] = {}
        self._rng = sim.rng("net")
        # Cached from the simulator at construction (see repro.obs): None
        # when tracing is off, so every accounting site below costs one
        # attribute load plus a falsy branch.
        self._tracer = sim.tracer
        self._fault_free = True
        self._refresh_fast_path()

    # ------------------------------------------------------------------
    # Fault-free fast path bookkeeping
    # ------------------------------------------------------------------
    # ``send`` skips all send-time fault checks when no fault feature is
    # active — the overwhelmingly common case in scalability runs.  The
    # flag is recomputed on every fault-state mutation, never per send.
    # Delivery-time checks stay unconditional, so a fault injected while
    # a message is in flight still applies (e.g. the destination crashes
    # before delivery).  The fast path consumes exactly the same RNG
    # stream as the slow path with faults disabled (only the latency
    # sample), so seeded runs are bit-identical either way.
    def _refresh_fast_path(self) -> None:
        self._fault_free = not (
            self._drop_prob
            or self._dup_prob
            or self._down
            or self._blocked_pairs
            or self._slowdowns
        )

    @property
    def drop_prob(self) -> float:
        return self._drop_prob

    @drop_prob.setter
    def drop_prob(self, value: float) -> None:
        if not 0.0 <= value < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        self._drop_prob = value
        self._refresh_fast_path()

    @property
    def dup_prob(self) -> float:
        return self._dup_prob

    @dup_prob.setter
    def dup_prob(self, value: float) -> None:
        if not 0.0 <= value < 1.0:
            raise ValueError("dup_prob must be in [0, 1)")
        self._dup_prob = value
        self._refresh_fast_path()

    # ------------------------------------------------------------------
    # Endpoint lifecycle
    # ------------------------------------------------------------------
    def register(self, address: str, handler: Handler) -> None:
        """Attach ``handler`` to ``address`` and mark it up."""
        self._handlers[address] = handler
        self._down.discard(address)
        self._refresh_fast_path()

    def unregister(self, address: str) -> None:
        self._handlers.pop(address, None)
        self._down.discard(address)
        self._refresh_fast_path()

    def set_down(self, address: str) -> None:
        """Crash an endpoint: it neither sends nor receives until set_up."""
        self._down.add(address)
        self._fault_free = False

    def set_up(self, address: str) -> None:
        self._down.discard(address)
        self._refresh_fast_path()

    def is_up(self, address: str) -> bool:
        return address in self._handlers and address not in self._down

    def addresses(self) -> list[str]:
        return sorted(self._handlers)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def block(self, a: str, b: str) -> None:
        """Drop all traffic between ``a`` and ``b`` (both directions)."""
        self._blocked_pairs.add((a, b))
        self._blocked_pairs.add((b, a))
        self._fault_free = False

    def unblock(self, a: str, b: str) -> None:
        self._blocked_pairs.discard((a, b))
        self._blocked_pairs.discard((b, a))
        self._refresh_fast_path()

    def block_one_way(self, src: str, dst: str) -> None:
        """Drop traffic from ``src`` to ``dst`` only (asymmetric partition).

        The reverse direction is untouched, so ``src`` can still *send* if
        blocked only as a receiver elsewhere — use two calls for the
        "can send but not receive" leader scenario.
        """
        self._blocked_pairs.add((src, dst))
        self._fault_free = False

    def unblock_one_way(self, src: str, dst: str) -> None:
        self._blocked_pairs.discard((src, dst))
        self._refresh_fast_path()

    def isolate_inbound(self, victim: str, peers: list[str] | None = None) -> None:
        """Block all traffic *to* ``victim``: it can send but not receive."""
        for peer in peers if peers is not None else self.addresses():
            if peer != victim:
                self.block_one_way(peer, victim)

    def isolate_outbound(self, victim: str, peers: list[str] | None = None) -> None:
        """Block all traffic *from* ``victim``: it can receive but not send."""
        for peer in peers if peers is not None else self.addresses():
            if peer != victim:
                self.block_one_way(victim, peer)

    def partition(self, side_a: set[str], side_b: set[str]) -> None:
        """Block every cross pair between the two sides."""
        for a in side_a:
            for b in side_b:
                self.block(a, b)

    def heal(self) -> None:
        """Remove all partitions (one-way blocks included)."""
        self._blocked_pairs.clear()
        self._refresh_fast_path()

    def is_blocked(self, src: str, dst: str) -> bool:
        return (src, dst) in self._blocked_pairs

    # ------------------------------------------------------------------
    # Gray failure: per-link latency degradation
    # ------------------------------------------------------------------
    def set_link_slowdown(self, src: str, dst: str, factor: float) -> None:
        """Multiply sampled latency on the directed link ``src -> dst``.

        A factor of 1.0 clears the entry.  Slow links stay *connected* —
        messages arrive late rather than never, which defeats failure
        detectors that equate silence with death.
        """
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        if factor == 1.0:
            self._slowdowns.pop((src, dst), None)
        else:
            self._slowdowns[(src, dst)] = factor
        self._refresh_fast_path()

    def set_node_slowdown(self, victim: str, factor: float, peers: list[str] | None = None) -> None:
        """Degrade every link touching ``victim`` (both directions)."""
        for peer in peers if peers is not None else self.addresses():
            if peer != victim:
                self.set_link_slowdown(victim, peer, factor)
                self.set_link_slowdown(peer, victim, factor)

    def clear_slowdowns(self) -> None:
        self._slowdowns.clear()
        self._refresh_fast_path()

    def link_slowdown(self, src: str, dst: str) -> float:
        return self._slowdowns.get((src, dst), 1.0)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, msg: Any) -> None:
        """Send ``msg`` from ``src`` to ``dst`` with simulated latency.

        Loss, source death, and partitions are decided at send time;
        destination death is decided at delivery time (so a message can be
        lost when the destination crashes in flight — the realistic case).

        When no fault feature is active (no drops, dups, downed nodes,
        blocks, or slowdowns) a fast path skips every send-time check and
        schedules delivery fire-and-forget.  Both paths sample the same
        latency from the same RNG stream, so results are seed-identical.
        """
        stats = self.stats
        stats.sent += 1
        if stats.count_types:
            name = type(msg).__name__
            stats.by_type[name] = stats.by_type.get(name, 0) + 1
        tracer = self._tracer
        if tracer is not None:
            tracer.note_send(msg)
        if self._fault_free:
            # Inlined sim.schedule_fire: one heap entry, no handle, no
            # intermediate frames — this line runs once per message.
            sim = self.sim
            queue = sim._queue
            heappush(
                queue._heap,
                [
                    sim._now + self.latency.sample(src, dst, self._rng),
                    queue._seq,
                    self._deliver,
                    (src, dst, msg),
                ],
            )
            queue._seq += 1
            queue._live += 1
            return
        if src in self._down:
            stats.dropped += 1
            if tracer is not None:
                tracer.metrics.inc("net.dropped")
            return
        if (src, dst) in self._blocked_pairs:
            stats.dropped += 1
            if tracer is not None:
                tracer.metrics.inc("net.dropped")
            return
        if self._drop_prob > 0 and self._rng.random() < self._drop_prob:
            stats.dropped += 1
            if tracer is not None:
                tracer.metrics.inc("net.dropped")
            return
        self._schedule_delivery(src, dst, msg)
        if self._dup_prob > 0 and self._rng.random() < self._dup_prob:
            # A duplicate travels independently: its own latency sample,
            # so it may arrive before *or* after the original.
            stats.duplicated += 1
            if tracer is not None:
                tracer.metrics.inc("net.duplicated")
            self._schedule_delivery(src, dst, msg)

    def _schedule_delivery(self, src: str, dst: str, msg: Any) -> None:
        delay = self.latency.sample(src, dst, self._rng)
        factor = self._slowdowns.get((src, dst))
        if factor is not None:
            delay *= factor
        self.sim.schedule_fire(delay, self._deliver, src, dst, msg)

    def _deliver(self, src: str, dst: str, msg: Any) -> None:
        handler = self._handlers.get(dst)
        tracer = self._tracer
        if handler is None or dst in self._down:
            self.stats.to_dead += 1
            if tracer is not None:
                tracer.metrics.inc("net.to_dead")
            return
        if (src, dst) in self._blocked_pairs:
            self.stats.dropped += 1
            if tracer is not None:
                tracer.metrics.inc("net.dropped")
            return
        self.stats.delivered += 1
        if tracer is not None:
            tracer.metrics.inc("net.delivered")
        handler(src, msg)

"""Simulated message network.

Endpoints register a handler under a string address.  ``send`` schedules
delivery after a latency sampled from the installed :class:`LatencyModel`.
The network models the failure modes the paper's protocols must tolerate:

- **Crash/churn**: a departed endpoint silently swallows messages (both
  inbound and, via :meth:`set_down`, outbound sends are suppressed).
- **Loss**: each message is independently dropped with ``drop_prob``.
- **Partitions**: arbitrary blocked endpoint pairs — symmetric via
  :meth:`block` or *one-way* via :meth:`block_one_way` (a node that can
  send but not receive, the asymmetric case naive fault tests miss).
- **Gray failure**: per-link latency multipliers (:meth:`set_link_slowdown`)
  model links that are degraded rather than dead — the hardest case for
  timeout-based failure detectors.
- **Duplication**: with ``dup_prob`` a delivered message is also delivered
  a second time after an independently sampled latency, modelling
  at-least-once transports and retransmission races.

All randomness comes from named simulator streams, so every fault
behaviour is deterministic in (seed, configuration).

Messages are delivered in timestamp order but *not* FIFO per link when the
latency model is non-constant — exactly the asynchrony Paxos must handle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from heapq import heappush
from typing import Any, Callable

from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.loop import Simulator

Handler = Callable[[str, Any], None]


@dataclass
class NetworkStats:
    """Counters for traffic accounting (used by the scalability bench).

    Per-message-type counting (``by_type``) costs a ``type(msg).__name__``
    plus dict churn on *every* send, so it is opt-in: benches that read
    the breakdown set ``count_types=True``; everyone else pays only the
    integer increments.
    """

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    to_dead: int = 0
    duplicated: int = 0
    count_types: bool = False
    by_type: dict[str, int] = field(default_factory=dict)

    def note_sent(self, msg: Any) -> None:
        self.sent += 1
        if self.count_types:
            name = type(msg).__name__
            self.by_type[name] = self.by_type.get(name, 0) + 1


class SimNetwork:
    """Best-effort asynchronous message network over a :class:`Simulator`."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        drop_prob: float = 0.0,
        dup_prob: float = 0.0,
        pooling: bool = True,
    ) -> None:
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        if not 0.0 <= dup_prob < 1.0:
            raise ValueError("dup_prob must be in [0, 1)")
        self.sim = sim
        self.latency = latency or ConstantLatency()
        self._drop_prob = drop_prob
        self._dup_prob = dup_prob
        self.stats = NetworkStats()
        self._handlers: dict[str, Handler] = {}
        self._down: set[str] = set()
        self._blocked_pairs: set[tuple[str, str]] = set()
        self._slowdowns: dict[tuple[str, str], float] = {}
        self._rng = sim.rng("net")
        # Cached from the simulator at construction (see repro.obs): None
        # when tracing is off, so every accounting site below costs one
        # attribute load plus a falsy branch.
        self._tracer = sim.tracer
        # Per-message constant-cost attacks, togglable for A/B determinism
        # guards (tests/test_sim_pooling.py).  ``pooling`` covers the
        # whole complex: direct-dispatch delivery entries (the run loop
        # calls the destination handler with no network frame in
        # between), recycling of those entries through the simulator's
        # message pool, and the cached constant latency (skipping the
        # sample() call for models that draw no randomness).  All of it
        # is result-invisible: same sequence numbers, same RNG draws,
        # same delivery times, same handler calls — and any mutation
        # that could make a delivery-time check non-vacuous de-optimizes
        # the in-flight entries (see _deopt_in_flight).
        self._pooling = pooling
        self._const_delay = (
            self.latency.latency if type(self.latency) is ConstantLatency else None
        )
        # Identity-stable hot references, bound once so the fast send
        # path pays one attribute hop instead of two (the handler dict,
        # event queue, and message pool are never replaced, only
        # mutated in place).
        self._handlers_get = self._handlers.get
        self._equeue = sim._queue
        self._pool = sim._msg_pool
        self._fault_free = True
        self._fast = False
        self._refresh_fast_path()

    # ------------------------------------------------------------------
    # Fault-free fast path bookkeeping
    # ------------------------------------------------------------------
    # ``send`` skips all send-time fault checks when no fault feature is
    # active — the overwhelmingly common case in scalability runs.  The
    # flag is recomputed on every fault-state mutation, never per send.
    # Delivery re-reads the *current* flag, so a fault injected while a
    # message is in flight still applies (e.g. the destination crashes
    # before delivery): only when no fault exists at delivery time are
    # the vacuous per-message checks elided.  The fast path consumes
    # exactly the same RNG stream as the slow path with faults disabled
    # (only the latency sample), so seeded runs are bit-identical either
    # way.
    def _refresh_fast_path(self) -> None:
        self._fault_free = not (
            self._drop_prob
            or self._dup_prob
            or self._down
            or self._blocked_pairs
            or self._slowdowns
        )
        # Direct dispatch additionally requires pooling and no tracer:
        # a traced run wants per-delivery metrics, which only the
        # _deliver frame produces.
        fast = self._fault_free and self._pooling and self._tracer is None
        if self._fast and not fast:
            self._deopt_in_flight()
        self._fast = fast

    def _fault_appeared(self) -> None:
        """A fault feature just became active: leave the fast paths.

        Split from :meth:`_refresh_fast_path` so the O(n^2) ``block``
        storm of :meth:`partition` pays one heap scan, not one per pair.
        """
        self._fault_free = False
        if self._fast:
            self._deopt_in_flight()
            self._fast = False

    def _deopt_in_flight(self) -> None:
        """Rewrite in-flight direct-dispatch entries into checked deliveries.

        A direct entry bakes in the handler looked up at send time and
        skips every delivery-time check — valid only while nothing can
        change between send and delivery.  The moment a fault feature
        activates or the handler registry changes, each such entry is
        rewritten *in place* into a classic ``_deliver`` entry (same
        time, same sequence number, so heap order is untouched) whose
        checks run with delivery-time state.  Entries belonging to other
        networks on the same simulator are rewritten too — harmless, as
        ``_deliver`` is re-resolved per entry through its owning network.

        The scan is O(heap), but every call site is off the per-message
        path: the first fault mutation after a fast-path stretch (later
        mutations are guarded by ``_fast`` being already off) or a
        handler-registry change (``Node.leave`` / handler replacement —
        churn-rate events).
        """
        for entry in self.sim._queue._heap:
            if len(entry) == 7:
                args = entry[3]
                entry[3] = (args[0], entry[5], args[1])
                entry[2] = entry[6]._deliver
                del entry[4:]

    @property
    def drop_prob(self) -> float:
        return self._drop_prob

    @drop_prob.setter
    def drop_prob(self, value: float) -> None:
        if not 0.0 <= value < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        self._drop_prob = value
        self._refresh_fast_path()

    @property
    def dup_prob(self) -> float:
        return self._dup_prob

    @dup_prob.setter
    def dup_prob(self, value: float) -> None:
        if not 0.0 <= value < 1.0:
            raise ValueError("dup_prob must be in [0, 1)")
        self._dup_prob = value
        self._refresh_fast_path()

    # ------------------------------------------------------------------
    # Endpoint lifecycle
    # ------------------------------------------------------------------
    def register(self, address: str, handler: Handler) -> None:
        """Attach ``handler`` to ``address`` and mark it up."""
        if address in self._handlers:
            # Replacing a live handler: in-flight direct-dispatch
            # entries hold the old one; force them back through
            # _deliver, which re-resolves at delivery time.
            self._deopt_in_flight()
        self._handlers[address] = handler
        self._down.discard(address)
        self._refresh_fast_path()

    def unregister(self, address: str) -> None:
        if address in self._handlers:
            # Messages to the departed endpoint must count as to_dead at
            # delivery, not invoke the captured handler.
            self._deopt_in_flight()
        self._handlers.pop(address, None)
        self._down.discard(address)
        self._refresh_fast_path()

    def set_down(self, address: str) -> None:
        """Crash an endpoint: it neither sends nor receives until set_up."""
        self._down.add(address)
        self._fault_appeared()

    def set_up(self, address: str) -> None:
        self._down.discard(address)
        self._refresh_fast_path()

    def is_up(self, address: str) -> bool:
        return address in self._handlers and address not in self._down

    def addresses(self) -> list[str]:
        return sorted(self._handlers)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def block(self, a: str, b: str) -> None:
        """Drop all traffic between ``a`` and ``b`` (both directions)."""
        self._blocked_pairs.add((a, b))
        self._blocked_pairs.add((b, a))
        self._fault_appeared()

    def unblock(self, a: str, b: str) -> None:
        self._blocked_pairs.discard((a, b))
        self._blocked_pairs.discard((b, a))
        self._refresh_fast_path()

    def block_one_way(self, src: str, dst: str) -> None:
        """Drop traffic from ``src`` to ``dst`` only (asymmetric partition).

        The reverse direction is untouched, so ``src`` can still *send* if
        blocked only as a receiver elsewhere — use two calls for the
        "can send but not receive" leader scenario.
        """
        self._blocked_pairs.add((src, dst))
        self._fault_appeared()

    def unblock_one_way(self, src: str, dst: str) -> None:
        self._blocked_pairs.discard((src, dst))
        self._refresh_fast_path()

    def isolate_inbound(self, victim: str, peers: list[str] | None = None) -> None:
        """Block all traffic *to* ``victim``: it can send but not receive."""
        for peer in peers if peers is not None else self.addresses():
            if peer != victim:
                self.block_one_way(peer, victim)

    def isolate_outbound(self, victim: str, peers: list[str] | None = None) -> None:
        """Block all traffic *from* ``victim``: it can receive but not send."""
        for peer in peers if peers is not None else self.addresses():
            if peer != victim:
                self.block_one_way(victim, peer)

    def partition(self, side_a: set[str], side_b: set[str]) -> None:
        """Block every cross pair between the two sides."""
        for a in side_a:
            for b in side_b:
                self.block(a, b)

    def heal(self) -> None:
        """Remove all partitions (one-way blocks included)."""
        self._blocked_pairs.clear()
        self._refresh_fast_path()

    def is_blocked(self, src: str, dst: str) -> bool:
        return (src, dst) in self._blocked_pairs

    # ------------------------------------------------------------------
    # Gray failure: per-link latency degradation
    # ------------------------------------------------------------------
    def set_link_slowdown(self, src: str, dst: str, factor: float) -> None:
        """Multiply sampled latency on the directed link ``src -> dst``.

        A factor of 1.0 clears the entry.  Slow links stay *connected* —
        messages arrive late rather than never, which defeats failure
        detectors that equate silence with death.
        """
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        if factor == 1.0:
            self._slowdowns.pop((src, dst), None)
        else:
            self._slowdowns[(src, dst)] = factor
        self._refresh_fast_path()

    def set_node_slowdown(self, victim: str, factor: float, peers: list[str] | None = None) -> None:
        """Degrade every link touching ``victim`` (both directions)."""
        for peer in peers if peers is not None else self.addresses():
            if peer != victim:
                self.set_link_slowdown(victim, peer, factor)
                self.set_link_slowdown(peer, victim, factor)

    def clear_slowdowns(self) -> None:
        self._slowdowns.clear()
        self._refresh_fast_path()

    def link_slowdown(self, src: str, dst: str) -> float:
        return self._slowdowns.get((src, dst), 1.0)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, msg: Any) -> None:
        """Send ``msg`` from ``src`` to ``dst`` with simulated latency.

        Loss, source death, and partitions are decided at send time;
        destination death is decided at delivery time (so a message can be
        lost when the destination crashes in flight — the realistic case).

        When no fault feature is active (no drops, dups, downed nodes,
        blocks, or slowdowns) a fast path skips every send-time check and
        schedules delivery fire-and-forget.  Both paths sample the same
        latency from the same RNG stream, so results are seed-identical.
        """
        stats = self.stats
        stats.sent += 1
        if stats.count_types:
            name = type(msg).__name__
            stats.by_type[name] = stats.by_type.get(name, 0) + 1
        if self._fast:
            # Direct-dispatch path (pooling on, no faults, no tracer):
            # resolve the destination handler *now* and schedule it as
            # the event function itself, so delivery runs the handler
            # straight from the run loop with no _deliver frame in
            # between.  Entries are 7-slot lists (see sim/loop.py) that
            # the run loop recycles through ``sim._msg_pool`` — zero
            # allocations per message in steady state.  Anything that
            # could invalidate the baked-in handler or skipped checks
            # de-optimizes in-flight entries (_deopt_in_flight).
            handler = self._handlers_get(dst)
            if handler is not None:
                sim = self.sim
                queue = self._equeue
                delay = self._const_delay
                if delay is None:
                    delay = self.latency.sample(src, dst, self._rng)
                seq = queue._seq
                pool = self._pool
                if pool:
                    entry = pool.pop()
                    args = entry[3]
                    args[0] = src
                    args[1] = msg
                    entry[0] = sim._now + delay
                    entry[1] = seq
                    entry[2] = handler
                    entry[5] = dst
                    if entry[6] is not self:
                        # Recycled from another network on this
                        # simulator (rare): retarget the bookkeeping
                        # slots.  Same-net reuse skips both stores.
                        entry[4] = stats
                        entry[6] = self
                    heappush(queue._heap, entry)
                else:
                    heappush(
                        queue._heap,
                        [sim._now + delay, seq, handler,
                         [src, msg], stats, dst, self],
                    )
                queue._seq = seq + 1
                queue._live += 1
                return
            # No handler at send time: fall through to a checked
            # delivery so the to_dead accounting happens at delivery
            # time, exactly like the historical path (the destination
            # may also register while the message is in flight).
        tracer = self._tracer
        if tracer is not None:
            tracer.note_send(msg)
        if self._fault_free:
            # Inlined sim.schedule_fire: one heap entry, no handle, no
            # intermediate frames — this line runs once per message.
            sim = self.sim
            queue = sim._queue
            delay = self._const_delay if self._pooling else None
            if delay is None:
                delay = self.latency.sample(src, dst, self._rng)
            heappush(
                queue._heap,
                [sim._now + delay, queue._seq, self._deliver, (src, dst, msg)],
            )
            queue._seq += 1
            queue._live += 1
            return
        if src in self._down:
            stats.dropped += 1
            if tracer is not None:
                tracer.metrics.inc("net.dropped")
            return
        if (src, dst) in self._blocked_pairs:
            stats.dropped += 1
            if tracer is not None:
                tracer.metrics.inc("net.dropped")
            return
        if self._drop_prob > 0 and self._rng.random() < self._drop_prob:
            stats.dropped += 1
            if tracer is not None:
                tracer.metrics.inc("net.dropped")
            return
        self._schedule_delivery(src, dst, msg)
        if self._dup_prob > 0 and self._rng.random() < self._dup_prob:
            # A duplicate travels independently: its own latency sample,
            # so it may arrive before *or* after the original.
            stats.duplicated += 1
            if tracer is not None:
                tracer.metrics.inc("net.duplicated")
            self._schedule_delivery(src, dst, msg)

    def _schedule_delivery(self, src: str, dst: str, msg: Any) -> None:
        delay = self.latency.sample(src, dst, self._rng)
        factor = self._slowdowns.get((src, dst))
        if factor is not None:
            delay *= factor
        self.sim.schedule_fire(delay, self._deliver, src, dst, msg)

    def _deliver(self, src: str, dst: str, msg: Any) -> None:
        if self._fault_free and self._pooling:
            # With no fault feature active *at delivery time* the
            # down/blocked checks are vacuous (both sets are empty —
            # ``_fault_free`` is recomputed on every fault mutation, so
            # a fault injected while this message was in flight forces
            # the full checks below).  Reached for traced runs, for
            # sends whose destination had no handler, and for de-opted
            # direct entries whose faults have since healed.
            handler = self._handlers.get(dst)
            tracer = self._tracer
            if handler is None:
                self.stats.to_dead += 1
                if tracer is not None:
                    tracer.metrics.inc("net.to_dead")
                return
            self.stats.delivered += 1
            if tracer is not None:
                tracer.metrics.inc("net.delivered")
            handler(src, msg)
            return
        handler = self._handlers.get(dst)
        tracer = self._tracer
        if handler is None or dst in self._down:
            self.stats.to_dead += 1
            if tracer is not None:
                tracer.metrics.inc("net.to_dead")
            return
        if (src, dst) in self._blocked_pairs:
            self.stats.dropped += 1
            if tracer is not None:
                tracer.metrics.inc("net.dropped")
            return
        self.stats.delivered += 1
        if tracer is not None:
            tracer.metrics.inc("net.delivered")
        handler(src, msg)

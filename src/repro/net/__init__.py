"""Typed messaging and RPC on top of the simulated network.

Provides:

- :class:`Future` — single-assignment result cell with callbacks.
- :func:`spawn` — drive a generator-based process that yields Futures,
  giving protocol code straight-line structure without asyncio (the
  simulator stays single-threaded and deterministic).
- :class:`Node` — an addressable endpoint with one-way typed messages and
  request/response RPC with timeouts.
"""

from repro.net.futures import Future, RpcError, RpcTimeout, all_of, spawn
from repro.net.node import Node
from repro.net.retry import RetryPolicy, RetryState, decorrelated_jitter

__all__ = [
    "Future",
    "Node",
    "RetryPolicy",
    "RetryState",
    "RpcError",
    "RpcTimeout",
    "all_of",
    "decorrelated_jitter",
    "spawn",
]

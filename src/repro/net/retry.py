"""Retry backoff with exponential growth and decorrelated jitter.

Fixed retry intervals make every waiter retry in lockstep: when a fault
clears, all of them fire at once, collide, time out together, and retry
together again — recovery takes an unbounded number of synchronized
rounds.  The fix (folklore, popularized by AWS's "Exponential Backoff and
Jitter") is *decorrelated jitter*: each delay is drawn uniformly from
``[base, multiplier * previous_delay]`` and capped, so consecutive delays
grow roughly exponentially but two retrying parties decorrelate after the
first round.

All randomness is drawn from a caller-supplied ``random.Random`` so the
simulator's named-stream determinism is preserved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of a backoff sequence (seconds of virtual time)."""

    base: float = 0.05
    cap: float = 2.0
    multiplier: float = 3.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("base must be positive")
        if self.cap < self.base:
            raise ValueError("cap must be >= base")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def next_delay(self, rng: random.Random, prev: float | None = None) -> float:
        """One decorrelated-jitter delay following ``prev`` (None = first)."""
        return decorrelated_jitter(rng, self.base, self.cap, prev, self.multiplier)


def decorrelated_jitter(
    rng: random.Random,
    base: float,
    cap: float,
    prev: float | None = None,
    multiplier: float = 3.0,
) -> float:
    """``min(cap, uniform(base, multiplier * prev))``, seeded from prev=base."""
    hi = multiplier * (prev if prev is not None else base)
    return min(cap, rng.uniform(base, max(base, hi)))


class RetryState:
    """Mutable backoff cursor over a :class:`RetryPolicy`.

    ``next()`` returns the next delay; ``reset()`` snaps back to the base
    after progress so a transient fault does not tax the next one.
    """

    def __init__(self, policy: RetryPolicy, rng: random.Random) -> None:
        self.policy = policy
        self.rng = rng
        self.attempts = 0
        self._prev: float | None = None

    def next(self) -> float:
        delay = self.policy.next_delay(self.rng, self._prev)
        self._prev = delay
        self.attempts += 1
        return delay

    def reset(self) -> None:
        self.attempts = 0
        self._prev = None

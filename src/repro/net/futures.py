"""Futures and generator-based processes for simulated protocol code.

Protocol logic like "ask a quorum, wait for replies, then decide" reads
far better as straight-line code than as a callback pyramid.  ``spawn``
drives a generator that yields :class:`Future` objects: the process
suspends until the future resolves, then resumes with its value (or has
the failure raised into it at the yield point).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from repro.sim.loop import Simulator


class RpcTimeout(Exception):
    """An RPC did not receive a response within its timeout."""


class RpcError(Exception):
    """The remote handler raised; carries the remote error text."""


class Future:
    """Single-assignment result cell.

    Exactly one of :meth:`set_result` / :meth:`set_exception` may be
    called; later calls are ignored (first writer wins), which is the
    behaviour wanted for races like "response vs timeout".
    """

    __slots__ = ("_done", "_result", "_exception", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[[Future], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    def result(self) -> Any:
        if not self._done:
            raise RuntimeError("future not resolved")
        if self._exception is not None:
            raise self._exception
        return self._result

    def set_result(self, value: Any) -> None:
        if self._done:
            return
        self._done = True
        self._result = value
        self._fire()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            return
        self._done = True
        self._exception = exc
        self._fire()

    def add_callback(self, fn: Callable[[Future], None]) -> None:
        """Call ``fn(self)`` when resolved (immediately if already done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


def all_of(futures: Iterable[Future]) -> Future:
    """Future resolving to the list of all results, or the first failure."""
    futures = list(futures)
    combined = Future()
    if not futures:
        combined.set_result([])
        return combined
    remaining = [len(futures)]

    def on_done(_: Future) -> None:
        if combined.done:
            return
        for f in futures:
            if f.done and f.exception is not None:
                combined.set_exception(f.exception)
                return
        remaining[0] -= 1
        if remaining[0] == 0:
            combined.set_result([f.result() for f in futures])

    for f in futures:
        f.add_callback(on_done)
    return combined


Proc = Generator[Future, Any, Any]


def spawn(sim: Simulator, gen: Proc) -> Future:
    """Drive a generator process; resolve the returned future with its result.

    The generator yields Futures.  When a yielded future resolves with a
    value the generator resumes with that value; when it resolves with an
    exception, the exception is thrown into the generator at the yield
    point so it can ``try/except`` failures like timeouts.  Each resume
    happens via ``sim.call_soon_fire`` so process steps interleave with
    message deliveries in deterministic event order (resumes are never
    cancelled, so the fire-and-forget path applies).
    """
    done = Future()

    def step(send_value: Any, throw_exc: BaseException | None) -> None:
        try:
            if throw_exc is not None:
                waited = gen.throw(throw_exc)
            else:
                waited = gen.send(send_value)
        except StopIteration as stop:
            done.set_result(stop.value)
            return
        except BaseException as exc:  # process crashed: propagate
            done.set_exception(exc)
            return
        if not isinstance(waited, Future):
            gen.close()
            done.set_exception(
                TypeError(f"process yielded {type(waited).__name__}, expected Future")
            )
            return
        waited.add_callback(
            lambda f: sim.call_soon_fire(step, None if f.exception else f._result, f.exception)
        )

    sim.call_soon_fire(step, None, None)
    return done

"""Addressable protocol endpoint with typed messages and RPC."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.net.futures import Future, RpcError, RpcTimeout
from repro.sim.events import EventHandle
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork

_rpc_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class _Envelope:
    """Wire wrapper.  kind is 'msg' (one-way), 'req', 'resp', or 'err'."""

    kind: str
    rpc_id: int | None
    body: Any


class Node:
    """Base class for every simulated process (replica, client, DHT node).

    Subclasses register handlers per message type with :meth:`on`.  A
    handler receives ``(src, msg)``.  For RPC requests the handler's
    return value is the response; returning a :class:`Future` defers the
    response until the future resolves; raising sends an error response.

    Crash/restart is modelled with :meth:`crash` / :meth:`restart`: a
    crashed node loses all volatile state via the subclass hook
    :meth:`on_restart` and its timers are cancelled.
    """

    def __init__(self, node_id: str, sim: Simulator, net: SimNetwork) -> None:
        self.node_id = node_id
        self.sim = sim
        self.net = net
        self.alive = True
        # Simulated durable disk (repro.storage.NodeDisk), attached by
        # subclasses that model durability; None = no storage model.
        self.disk = None
        self._handlers: dict[type, Callable[[str, Any], Any]] = {}
        self._pending_rpcs: dict[int, Future] = {}
        self._timers: list[EventHandle] = []
        net.register(node_id, self._on_network_message)

    # ------------------------------------------------------------------
    # Handler registration
    # ------------------------------------------------------------------
    def on(self, msg_type: type, handler: Callable[[str, Any], Any]) -> None:
        self._handlers[msg_type] = handler

    # ------------------------------------------------------------------
    # One-way messages
    # ------------------------------------------------------------------
    def send(self, dst: str, msg: Any) -> None:
        if not self.alive:
            return
        self.net.send(self.node_id, dst, _Envelope("msg", None, msg))

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------
    def request(self, dst: str, msg: Any, timeout: float = 1.0) -> Future:
        """Send a request; future resolves with the response value.

        Fails with :class:`RpcTimeout` after ``timeout`` seconds or with
        :class:`RpcError` if the remote handler raised.
        """
        future = Future()
        if not self.alive:
            future.set_exception(RpcTimeout(f"{self.node_id} is down"))
            return future
        rpc_id = next(_rpc_ids)
        self._pending_rpcs[rpc_id] = future
        self.net.send(self.node_id, dst, _Envelope("req", rpc_id, msg))
        timer = self.sim.schedule(timeout, self._on_rpc_timeout, rpc_id, dst, msg)
        future.add_callback(lambda _f: timer.cancel())
        return future

    def _on_rpc_timeout(self, rpc_id: int, dst: str, msg: Any) -> None:
        future = self._pending_rpcs.pop(rpc_id, None)
        if future is not None:
            future.set_exception(RpcTimeout(f"rpc {type(msg).__name__} to {dst} timed out"))

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule a callback that is suppressed if the node crashes."""

        def guarded(*inner: Any) -> None:
            if self.alive:
                fn(*inner)

        handle = self.sim.schedule(delay, guarded, *args)
        self._timers.append(handle)
        if len(self._timers) > 256:
            # Drop cancelled handles and ones already in the past (fired).
            # Handles at exactly `now` may still be pending this tick, so
            # they are kept until time advances.
            now = self.sim.now
            self._timers = [t for t in self._timers if not t.cancelled and t.time >= now]
        return handle

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: drop timers, pending RPCs, and go silent.

        With a disk attached, the crash is a power failure: the disk
        keeps only what reached a completed fsync — the un-fsynced WAL
        suffix is lost and must be recovered through the protocol.
        """
        if not self.alive:
            return
        self.alive = False
        self.net.set_down(self.node_id)
        if self.disk is not None:
            self.disk.power_failure()
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        # Fail callers waiting on in-flight RPCs instead of leaving their
        # futures pending forever (the response would be dropped anyway).
        pending = list(self._pending_rpcs.values())
        self._pending_rpcs.clear()
        for future in pending:
            if not future.done:
                future.set_exception(RpcTimeout(f"{self.node_id} crashed"))

    def restart(self) -> None:
        """Recover with volatile state reset (see :meth:`on_restart`)."""
        if self.alive:
            return
        self.alive = True
        self.net.set_up(self.node_id)
        self.on_restart()

    def on_restart(self) -> None:
        """Subclass hook: rebuild volatile state from durable state."""

    def shutdown(self) -> None:
        """Permanent departure: unregister from the network."""
        self.crash()
        self.net.unregister(self.node_id)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _on_network_message(self, src: str, envelope: _Envelope) -> None:
        if not self.alive:
            return
        if envelope.kind == "msg":
            self._dispatch(src, envelope.body)
        elif envelope.kind == "req":
            self._handle_request(src, envelope)
        elif envelope.kind == "resp":
            future = self._pending_rpcs.pop(envelope.rpc_id, None)
            if future is not None:
                future.set_result(envelope.body)
        elif envelope.kind == "err":
            future = self._pending_rpcs.pop(envelope.rpc_id, None)
            if future is not None:
                future.set_exception(RpcError(str(envelope.body)))

    def _dispatch(self, src: str, msg: Any) -> Any:
        handler = self._handlers.get(type(msg))
        if handler is None:
            raise RpcError(f"{self.node_id}: no handler for {type(msg).__name__}")
        return handler(src, msg)

    def _handle_request(self, src: str, envelope: _Envelope) -> None:
        rpc_id = envelope.rpc_id
        try:
            result = self._dispatch(src, envelope.body)
        except Exception as exc:
            self.net.send(self.node_id, src, _Envelope("err", rpc_id, f"{exc}"))
            return
        if isinstance(result, Future):
            result.add_callback(lambda f: self._reply_from_future(src, rpc_id, f))
        else:
            self.net.send(self.node_id, src, _Envelope("resp", rpc_id, result))

    def _reply_from_future(self, src: str, rpc_id: int | None, future: Future) -> None:
        if not self.alive:
            return
        if future.exception is not None:
            self.net.send(self.node_id, src, _Envelope("err", rpc_id, f"{future.exception}"))
        else:
            self.net.send(self.node_id, src, _Envelope("resp", rpc_id, future.result()))

"""Churn: nodes with finite lifetimes, population held steady.

The paper parameterizes churn by *median node lifetime* (its most
hostile settings go down to ~100 seconds, the observed median in
Gnutella traces).  We reproduce that knob with pluggable lifetime
distributions:

- exponential — memoryless sessions (classic analytical model);
- Pareto — heavy-tailed sessions as measured in deployed P2P systems.

The process keeps population constant: every departure schedules an
arrival (a fresh node joining through a live seed), like the paper's
steady-state experiments.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Protocol

from repro.sim.loop import Simulator


def exponential_lifetime(median: float) -> Callable[[random.Random], float]:
    """Exponential lifetimes with the given median."""
    if median <= 0:
        raise ValueError("median must be positive")
    rate = math.log(2) / median

    def sample(rng: random.Random) -> float:
        return rng.expovariate(rate)

    return sample


def pareto_lifetime(median: float, alpha: float = 1.5) -> Callable[[random.Random], float]:
    """Pareto lifetimes (heavy tail) with the given median."""
    if median <= 0 or alpha <= 0:
        raise ValueError("median and alpha must be positive")
    xm = median / (2 ** (1 / alpha))

    def sample(rng: random.Random) -> float:
        return xm / (rng.random() ** (1 / alpha))

    return sample


class ChurnTarget(Protocol):
    """What the churn process needs from a system (Scatter or Chord)."""

    def kill_node(self, node_id: str) -> None: ...

    def add_node(self, seed: str | None = None): ...

    def alive_node_ids(self) -> list[str]: ...


class ChurnProcess:
    """Drives node departures and replacement arrivals.

    ``start`` assigns every current node a *residual* lifetime (a fresh
    sample scaled by U(0,1)) so the initial population looks like a
    steady state rather than a synchronized cohort.
    """

    def __init__(
        self,
        sim: Simulator,
        system: ChurnTarget,
        lifetime: Callable[[random.Random], float],
        replace: bool = True,
        join_delay: float = 0.5,
    ) -> None:
        self.sim = sim
        self.system = system
        self.lifetime = lifetime
        self.replace = replace
        self.join_delay = join_delay
        self.rng = sim.rng("churn")
        self.departures = 0
        self.arrivals = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        for node_id in self.system.alive_node_ids():
            residual = self.lifetime(self.rng) * self.rng.random()
            self.sim.schedule(residual, self._kill, node_id)

    def stop(self) -> None:
        self._running = False

    def _kill(self, node_id: str) -> None:
        if not self._running:
            return
        if node_id not in self.system.alive_node_ids():
            return
        self.system.kill_node(node_id)
        self.departures += 1
        if self.replace:
            self.sim.schedule(self.join_delay, self._arrive)

    def _arrive(self) -> None:
        if not self._running:
            return
        node = self.system.add_node()
        self.arrivals += 1
        node_id = node.node_id if hasattr(node, "node_id") else str(node)
        self.sim.schedule(self.lifetime(self.rng), self._kill, node_id)

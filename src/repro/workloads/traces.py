"""Trace-driven churn: synthesize and replay node session traces.

The paper motivates its churn settings with measured P2P session traces
(Gnutella-class systems: heavy-tailed session lengths, a diurnal arrival
rhythm).  Real traces are not redistributable, so this module
*synthesizes* statistically similar ones — Pareto session lengths with a
chosen median, Poisson arrivals modulated by a day/night cycle — and
replays them against either backend.  A trace is a plain list of
events, so measured traces can be loaded the same way if available.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.sim.loop import Simulator
from repro.workloads.churn import ChurnTarget, pareto_lifetime


@dataclass(frozen=True)
class SessionEvent:
    """One node session: arrives at ``start``, departs at ``end``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("session must have positive length")


def synthesize_trace(
    duration: float,
    median_session: float = 300.0,
    arrival_rate: float = 0.1,
    diurnal: bool = False,
    alpha: float = 1.5,
    seed: int = 0,
) -> list[SessionEvent]:
    """Generate arrivals over ``duration`` with Pareto session lengths.

    ``arrival_rate`` is mean arrivals per second; with ``diurnal`` it is
    modulated sinusoidally with a period of ``duration`` (one synthetic
    "day"), peaking mid-trace.
    """
    if duration <= 0 or arrival_rate <= 0:
        raise ValueError("duration and arrival_rate must be positive")
    rng = random.Random(seed)
    lifetime = pareto_lifetime(median_session, alpha)
    events: list[SessionEvent] = []
    t = 0.0
    peak_rate = arrival_rate * 2
    while t < duration:
        rate = arrival_rate
        if diurnal:
            # Sinusoid in [0.2, 1.0] of the peak, one cycle per trace.
            phase = math.sin(math.pi * t / duration)
            rate = peak_rate * (0.2 + 0.8 * phase)
        t += rng.expovariate(rate)
        if t >= duration:
            break
        events.append(SessionEvent(start=t, end=t + lifetime(rng)))
    return events


def trace_stats(events: list[SessionEvent]) -> dict:
    """Summary used by tests and benchmarks: count, median session, peak
    concurrency."""
    if not events:
        return {"sessions": 0, "median_session": float("nan"), "peak_concurrent": 0}
    lengths = sorted(e.end - e.start for e in events)
    marks = sorted(
        [(e.start, 1) for e in events] + [(e.end, -1) for e in events]
    )
    concurrent = 0
    peak = 0
    for _t, delta in marks:
        concurrent += delta
        peak = max(peak, concurrent)
    return {
        "sessions": len(events),
        "median_session": lengths[len(lengths) // 2],
        "peak_concurrent": peak,
    }


class TraceChurn:
    """Replay a session trace against a system.

    Arrivals call ``system.add_node()``; each arrived node is killed at
    its session end.  Nodes present at bootstrap are outside the trace
    and stay unless ``end_initial_at`` maps them to a departure time.
    """

    def __init__(
        self,
        sim: Simulator,
        system: ChurnTarget,
        events: list[SessionEvent],
    ) -> None:
        self.sim = sim
        self.system = system
        self.events = sorted(events, key=lambda e: e.start)
        self.arrivals = 0
        self.departures = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        for event in self.events:
            self.sim.schedule(event.start, self._arrive, event)

    def stop(self) -> None:
        self._running = False

    def _arrive(self, event: SessionEvent) -> None:
        if not self._running:
            return
        node = self.system.add_node()
        self.arrivals += 1
        node_id = node.node_id if hasattr(node, "node_id") else str(node)
        self.sim.schedule(event.end - event.start, self._depart, node_id)

    def _depart(self, node_id: str) -> None:
        if not self._running:
            return
        if node_id in self.system.alive_node_ids():
            self.system.kill_node(node_id)
            self.departures += 1

"""Workload and churn generation for the evaluation."""

from repro.workloads.churn import ChurnProcess, exponential_lifetime, pareto_lifetime
from repro.workloads.keys import KeySpace, UniformKeys, ZipfKeys
from repro.workloads.driver import ClosedLoopWorkload

__all__ = [
    "ChurnProcess",
    "ClosedLoopWorkload",
    "KeySpace",
    "UniformKeys",
    "ZipfKeys",
    "exponential_lifetime",
    "pareto_lifetime",
]

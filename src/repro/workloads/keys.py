"""Key popularity distributions for storage workloads."""

from __future__ import annotations

import bisect
import random
from abc import ABC, abstractmethod


class KeySpace(ABC):
    """A population of string keys with a sampling distribution."""

    def __init__(self, n_keys: int, prefix: str = "key") -> None:
        if n_keys < 1:
            raise ValueError("need at least one key")
        self.n_keys = n_keys
        self.prefix = prefix

    def key(self, index: int) -> str:
        return f"{self.prefix}-{index}"

    def all_keys(self) -> list[str]:
        return [self.key(i) for i in range(self.n_keys)]

    @abstractmethod
    def sample(self, rng: random.Random) -> str:
        """Draw a key according to the popularity distribution."""


class UniformKeys(KeySpace):
    """Every key equally likely (the paper's microbenchmark workload)."""

    def sample(self, rng: random.Random) -> str:
        return self.key(rng.randrange(self.n_keys))


class ZipfKeys(KeySpace):
    """Zipf(theta) popularity — skewed load for the load-balance policy.

    Rank r gets probability proportional to 1/r^theta.  theta around
    0.8–1.2 matches measured web/social access skew.
    """

    def __init__(self, n_keys: int, theta: float = 0.99, prefix: str = "key") -> None:
        super().__init__(n_keys, prefix)
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.theta = theta
        weights = [1.0 / ((rank + 1) ** theta) for rank in range(n_keys)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def sample(self, rng: random.Random) -> str:
        rank = bisect.bisect_left(self._cdf, rng.random())
        return self.key(min(rank, self.n_keys - 1))

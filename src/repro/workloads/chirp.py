"""Chirp: the paper's Twitter-clone application workload.

Chirp stores everything in the key-value overlay, so it runs unchanged
over Scatter or the Chord baseline:

- ``chirp:flw:<user>``   — list of users <user> follows
- ``chirp:cnt:<user>``   — number of chirps <user> has posted
- ``chirp:tw:<user>:<i>`` — the i-th chirp

Posting is two writes (tweet, then counter); fetching a timeline is a
fan-out read of every followee's counter and latest chirps.  The mix is
read-heavy, matching the paper's description of Chirp traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.futures import Future, all_of, spawn
from repro.sim.loop import Simulator
from repro.workloads.driver import WorkloadClient


@dataclass
class ChirpStats:
    posts: int = 0
    fetches: int = 0
    failed_posts: int = 0
    failed_fetches: int = 0
    fetch_latencies: list[float] = field(default_factory=list)
    post_latencies: list[float] = field(default_factory=list)
    timeline_sizes: list[int] = field(default_factory=list)


class ChirpService:
    """Application logic for one client connection."""

    def __init__(self, sim: Simulator, client: WorkloadClient) -> None:
        self.sim = sim
        self.client = client
        self.stats = ChirpStats()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def follow(self, user: str, target: str) -> Future:
        return spawn(self.sim, self._follow(user, target))

    def _follow(self, user: str, target: str):
        current = yield self.client.get(f"chirp:flw:{user}")
        following = list(current.value) if current.ok else []
        if target not in following:
            following.append(target)
            result = yield self.client.put(f"chirp:flw:{user}", tuple(following))
            return result.ok
        return True

    def post(self, user: str, text: str) -> Future:
        return spawn(self.sim, self._post(user, text))

    def _post(self, user: str, text: str):
        start = self.sim.now
        counter = yield self.client.get(f"chirp:cnt:{user}")
        index = counter.value if counter.ok else 0
        tweet = yield self.client.put(f"chirp:tw:{user}:{index}", (self.sim.now, text))
        if not tweet.ok:
            self.stats.failed_posts += 1
            return False
        bump = yield self.client.put(f"chirp:cnt:{user}", index + 1)
        ok = bump.ok
        self.stats.posts += 1 if ok else 0
        self.stats.failed_posts += 0 if ok else 1
        if ok:
            self.stats.post_latencies.append(self.sim.now - start)
        return ok

    def fetch_timeline(self, user: str, per_user: int = 1) -> Future:
        return spawn(self.sim, self._fetch(user, per_user))

    def _fetch(self, user: str, per_user: int):
        start = self.sim.now
        following = yield self.client.get(f"chirp:flw:{user}")
        if not following.ok:
            self.stats.failed_fetches += 1
            return []
        followees = list(following.value)
        counters = yield all_of([self.client.get(f"chirp:cnt:{f}") for f in followees])
        tweet_futures = []
        tweet_owners = []
        for followee, counter in zip(followees, counters):
            if not counter.ok or counter.value == 0:
                continue
            for i in range(max(0, counter.value - per_user), counter.value):
                tweet_futures.append(self.client.get(f"chirp:tw:{followee}:{i}"))
                tweet_owners.append(followee)
        tweets = yield all_of(tweet_futures)
        timeline = [
            (owner, result.value)
            for owner, result in zip(tweet_owners, tweets)
            if result.ok
        ]
        timeline.sort(key=lambda t: t[1][0] if t[1] else 0)
        self.stats.fetches += 1
        self.stats.fetch_latencies.append(self.sim.now - start)
        self.stats.timeline_sizes.append(len(timeline))
        return timeline


class ChirpWorkload:
    """A population of Chirp users driven closed-loop.

    Users are assigned round-robin to client connections.  The follow
    graph is preferential: popular users (low index) attract more
    followers, like real social graphs.
    """

    def __init__(
        self,
        sim: Simulator,
        clients: list[WorkloadClient],
        n_users: int = 20,
        follows_per_user: int = 4,
        post_fraction: float = 0.1,
        think_time: float = 0.2,
    ) -> None:
        self.sim = sim
        self.services = [ChirpService(sim, c) for c in clients]
        self.n_users = n_users
        self.follows_per_user = follows_per_user
        self.post_fraction = post_fraction
        self.think_time = think_time
        self.rng = sim.rng("chirp")
        self._running = False
        self._post_counter = 0

    def user(self, i: int) -> str:
        return f"user{i}"

    def service_for(self, i: int) -> ChirpService:
        return self.services[i % len(self.services)]

    # ------------------------------------------------------------------
    def setup(self) -> Future:
        """Build the follow graph; resolve when all follows are stored.

        Follows for one user mutate one key (read-modify-write), so each
        user's follows run sequentially; different users run in parallel.
        """
        futures = []
        for i in range(self.n_users):
            targets = set()
            while len(targets) < min(self.follows_per_user, self.n_users - 1):
                # Preferential attachment: rank r picked ~ quadratically.
                candidate = int(self.n_users * self.rng.random() ** 2)
                if candidate != i:
                    targets.add(candidate)
            futures.append(spawn(self.sim, self._follow_all(i, sorted(targets))))
        return all_of(futures)

    def _follow_all(self, i: int, targets: list[int]):
        service = self.service_for(i)
        for t in targets:
            yield service.follow(self.user(i), self.user(t))

    def start(self) -> None:
        self._running = True
        for i in range(self.n_users):
            spawn(self.sim, self._user_loop(i))

    def stop(self) -> None:
        self._running = False

    def _user_loop(self, i: int):
        service = self.service_for(i)
        user = self.user(i)
        while self._running:
            if self.rng.random() < self.post_fraction:
                self._post_counter += 1
                yield service.post(user, f"chirp #{self._post_counter} from {user}")
            else:
                yield service.fetch_timeline(user)
            pause = Future()
            self.sim.schedule(
                self.think_time * self.rng.uniform(0.5, 1.5), pause.set_result, None
            )
            yield pause

    # ------------------------------------------------------------------
    def combined_stats(self) -> ChirpStats:
        total = ChirpStats()
        for service in self.services:
            s = service.stats
            total.posts += s.posts
            total.fetches += s.fetches
            total.failed_posts += s.failed_posts
            total.failed_fetches += s.failed_fetches
            total.fetch_latencies.extend(s.fetch_latencies)
            total.post_latencies.extend(s.post_latencies)
            total.timeline_sizes.extend(s.timeline_sizes)
        return total

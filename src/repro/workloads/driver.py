"""Closed-loop workload driver shared by the Scatter and Chord backends.

Each client issues one operation at a time (so each client's history is
sequential — what the linearizability checker assumes) and immediately
issues the next when the previous completes.  Values written are unique
per (client, op) so the checker can identify reads-from relationships.
"""

from __future__ import annotations

from typing import Protocol

from repro.net.futures import Future, spawn
from repro.sim.loop import Simulator
from repro.workloads.keys import KeySpace


class WorkloadClient(Protocol):
    """The client API both backends expose."""

    node_id: str
    records: list

    def get(self, key: str | int) -> Future: ...

    def put(self, key: str | int, value: object) -> Future: ...


class ClosedLoopWorkload:
    """N clients looping get/put over a key space until stopped."""

    def __init__(
        self,
        sim: Simulator,
        clients: list[WorkloadClient],
        keys: KeySpace,
        read_fraction: float = 0.5,
        think_time: float = 0.0,
    ) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.sim = sim
        self.clients = clients
        self.keys = keys
        self.read_fraction = read_fraction
        self.think_time = think_time
        self.rng = sim.rng("workload")
        self._running = False
        self._op_counter = 0

    def start(self) -> None:
        self._running = True
        for client in self.clients:
            spawn(self.sim, self._client_loop(client))

    def stop(self) -> None:
        self._running = False

    def _client_loop(self, client: WorkloadClient):
        while self._running and client.alive:
            key = self.keys.sample(self.rng)
            if self.rng.random() < self.read_fraction:
                future = client.get(key)
            else:
                self._op_counter += 1
                value = f"{client.node_id}#{self._op_counter}"
                future = client.put(key, value)
            try:
                yield future
            except Exception:
                pass  # the record captures the failure; keep going
            if self.think_time > 0:
                pause = Future()
                self.sim.schedule(self.think_time * self.rng.uniform(0.5, 1.5), pause.set_result, None)
                yield pause

    def all_records(self) -> list:
        return [record for client in self.clients for record in client.records]

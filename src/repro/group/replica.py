"""One node's replica of one Scatter group."""

from __future__ import annotations

import enum
from collections import Counter
from typing import Any, Protocol

from repro.consensus.commands import CMD_BATCH, CMD_CONFIG, CMD_NOOP, CMD_READ, Command
from repro.consensus.replica import PaxosConfig, PaxosReplica
from repro.consensus.transport import Transport
from repro.dht.ring import KeyRange
from repro.group.commands import TxnAbortCmd, TxnCommitCmd
from repro.group.info import GroupGenesis, GroupInfo
from repro.net.futures import Future
from repro.obs.spans import GROUP_FOLLOWER_READ, GROUP_FREEZE
from repro.store.kvstore import KvOp, KvResult, KvStore, OP_GET, RangeState
from repro.txn.spec import (
    MergeSpec,
    MigrateSpec,
    RepartitionSpec,
    SplitSpec,
    TxnDecision,
    TxnSpec,
)


_NO_KEYS: frozenset = frozenset()


class GroupStatus(enum.Enum):
    """Lifecycle of a group replica's storage state."""

    ACTIVE = "active"
    FROZEN = "frozen"  # storage locked by a prepared data transaction
    RETIRED = "retired"  # replaced by split/merge; forwards to successors


class GroupHost(Protocol):
    """What a group replica needs from the physical node hosting it."""

    node_id: str

    @property
    def now(self) -> float:
        """Current virtual time."""

    def group_transport(self, gid: str) -> Transport:
        """Transport that frames Paxos messages with the group id."""

    def create_group(self, genesis: GroupGenesis) -> None:
        """Instantiate a replica of a newly created group on this node."""

    def on_group_retired(self, gid: str, forwarding: tuple[GroupInfo, ...]) -> None:
        """Record that ``gid`` was replaced by the ``forwarding`` groups."""

    def record_txn_outcome(self, txn_id: str, decision: TxnDecision, data: dict) -> None:
        """Cache a transaction outcome for recovery status queries."""

    def after_migrate_commit(self, spec: MigrateSpec, gid: str) -> None:
        """Leader-side follow-up: issue the config changes for a migration."""

    # Hosts that model durability additionally expose
    # ``replica_storage(gid) -> ReplicaStorage | None``; the group replica
    # discovers it via getattr so Protocol fakes in tests stay valid.


class GroupReplica:
    """Paxos replica + key-value store + overlay metadata for one group.

    All overlay state transitions (freeze, retire, range changes,
    neighbor pointer updates) happen inside :meth:`_apply`, driven by the
    group's log, so every member makes the same transition at the same
    log position.
    """

    def __init__(
        self,
        host: GroupHost,
        genesis: GroupGenesis,
        paxos_config: PaxosConfig | None = None,
    ) -> None:
        self.host = host
        self.genesis = genesis
        self.gid = genesis.gid
        self.range = genesis.range
        self.predecessor = genesis.predecessor
        self.successor = genesis.successor
        self.status = GroupStatus.ACTIVE
        self.forwarding: tuple[GroupInfo, ...] = ()
        self.store = KvStore()
        self.store.absorb(genesis.kv)
        self.active_txn: TxnSpec | None = None
        self.frozen_since = -1.0
        self.completed_txns: set[str] = set()
        self.epoch = 0  # bumped by config changes and repartitions
        self.load = Counter()  # per-key op counts since the last policy window
        self.commit_latencies: list[float] = []
        # Applied 2PC outcomes in apply order, for invariant checkers
        # (repro.check): each entry is (txn_id, "committed"|"aborted").
        # Dedup'd applies ("dup"/"ignored") are never recorded, so a
        # repeated txn_id here means the state machine really ran the
        # transition twice — an at-most-once violation.
        self.txn_log: list[tuple[str, str]] = []
        self.created_at = host.now
        storage_for = getattr(host, "replica_storage", None)
        storage = storage_for(self.gid) if storage_for is not None else None
        self.paxos = PaxosReplica(
            replica_id=host.node_id,
            members=list(genesis.members),
            transport=host.group_transport(genesis.gid),
            apply_fn=self._apply,
            config=paxos_config,
            initial_leader=genesis.initial_leader,
            snapshot_fn=self.snapshot,
            restore_fn=self.restore,
            storage=storage,
            reset_fn=self.reset_to_genesis,
            write_keys_fn=self._command_write_keys,
        )
        # repro.obs tracer shared with the Paxos replica (None = off).
        self.tracer = self.paxos.tracer
        self._freeze_span: Any = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_leader(self) -> bool:
        """True while this replica leads the group's Paxos instance."""
        return self.paxos.is_leader and not self.paxos.retired

    @property
    def members(self) -> list[str]:
        """Current voting membership (from the Paxos config)."""
        return list(self.paxos.members)

    def info(self) -> GroupInfo:
        """This replica's current view of its own group, for gossip."""
        leader = self.paxos.leader_hint or self.paxos.replica_id
        return GroupInfo(
            gid=self.gid,
            range=self.range,
            members=tuple(self.paxos.members),
            leader_hint=leader,
            epoch=self.epoch,
        )

    def owned_keys(self, arc: KeyRange | None = None) -> list[int]:
        """Stored keys inside ``arc`` (default: the whole owned range)."""
        arc = arc or self.range
        keys: list[int] = []
        for lo, hi in arc.intervals():
            keys.extend(self.store.keys_in(lo, hi))
        return keys

    # ------------------------------------------------------------------
    # Client operations (leader side)
    # ------------------------------------------------------------------
    def client_op(self, op: KvOp, dedup: tuple[str, int] | None = None) -> Future:
        """Execute a linearizable storage operation.

        Reads go through the leader lease when it is live; everything
        else is replicated through the log.  Resolves with a
        :class:`KvResult`; protocol-level failures resolve as ``ok=False``
        results with an ``error`` the client can act on.
        """
        future = Future()
        if self.status is GroupStatus.RETIRED:
            future.set_result(KvResult(ok=False, error="moved"))
            return future
        if self.status is GroupStatus.FROZEN:
            future.set_result(KvResult(ok=False, error="busy"))
            return future
        if not self.range.contains(op.key):
            future.set_result(KvResult(ok=False, error="wrong_group"))
            return future
        self.load[op.key] += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.metrics.inc("group.ops")
            if op.op == OP_GET:
                tracer.metrics.inc("reads.leader")
        if op.op == OP_GET and self.paxos.config.lease_reads and self.paxos.lease_active:
            if tracer is not None:
                tracer.metrics.inc("group.lease_reads")
            future.set_result(self.store.get(op.key))
            return future
        if tracer is not None:
            tracer.metrics.inc("group.log_ops")
        proposed = self.paxos.propose(Command(kind="app", payload=op, dedup=dedup))
        start = self.host.now
        proposed.add_callback(lambda f: self._note_commit_latency(start, f))
        return proposed

    def _note_commit_latency(self, start: float, future: Future) -> None:
        """Track replication (propose -> apply) latency at the leader."""
        if future.exception is None:
            latency = self.host.now - start
            self.commit_latencies.append(latency)
            if len(self.commit_latencies) > 4096:
                del self.commit_latencies[:2048]
            if self.tracer is not None:
                self.tracer.metrics.observe("group.commit_latency", latency)

    # ------------------------------------------------------------------
    # Client operations (follower side)
    # ------------------------------------------------------------------
    def follower_read(self, op: KvOp) -> Future | None:
        """Serve a Get locally at a follower, or ``None`` to bounce.

        The scale-out read path (``PaxosConfig.follower_reads``): a
        non-leader replica answers from its applied store state when the
        consensus layer proves the read linearizable — live read grant,
        applied prefix past the granted commit frontier, and no
        in-flight write overlapping the key (see
        :meth:`PaxosReplica.follower_read_allowed`).  Anything else
        returns ``None`` and the node bounces the client to the leader.
        Never proposes, never sends a message; with the knob off it
        returns ``None`` immediately.
        """
        paxos = self.paxos
        if not paxos.config.follower_reads or op.op != OP_GET:
            return None
        tracer = self.tracer
        if not paxos.follower_read_allowed(op.key):
            if tracer is not None:
                tracer.metrics.inc("reads.bounced")
            return None
        if tracer is not None:
            tracer.metrics.inc("reads.follower")
            span = tracer.begin(
                GROUP_FOLLOWER_READ,
                gid=self.gid,
                replica=self.paxos.replica_id,
                key=op.key,
            )
            tracer.finish(span, outcome="served")
        future = Future()
        future.set_result(self.store.get(op.key))
        return future

    def _command_write_keys(self, command: Command) -> tuple[frozenset, bool]:
        """Classify a log command's write set for the conflict window.

        Returns ``(keys, wildcard)``: the keys the command writes, or a
        wildcard for commands that can touch arbitrary keys.  Storage
        mutations name their key; reads, no-ops, and membership changes
        write nothing; structural transaction records (freeze, split,
        merge, migrate) are wildcards — a follower that has not applied
        them yet must not serve any key they might move.
        """
        kind = command.kind
        if kind == "app":
            op = command.payload
            if op.op == OP_GET:
                return (_NO_KEYS, False)
            return (frozenset((op.key,)), False)
        if kind == CMD_BATCH:
            keys: set = set()
            for sub in command.payload:
                sub_keys, wildcard = self._command_write_keys(sub)
                if wildcard:
                    return (_NO_KEYS, True)
                keys |= sub_keys
            return (frozenset(keys), False)
        if kind in (CMD_READ, CMD_NOOP, CMD_CONFIG):
            return (_NO_KEYS, False)
        return (_NO_KEYS, True)  # txn_prepare / txn_commit / txn_abort

    # ------------------------------------------------------------------
    # Snapshots (log compaction and fast member bootstrap)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic image of all replicated group state.

        Everything the apply path mutates must be here: the store, the
        overlay metadata, and the transaction bookkeeping.  Volatile
        things (load counters, latency samples) are deliberately absent.
        """
        return {
            "store": self.store.snapshot(),
            "range": self.range,
            "predecessor": self.predecessor,
            "successor": self.successor,
            "status": self.status,
            "forwarding": self.forwarding,
            "active_txn": self.active_txn,
            "frozen_since": self.frozen_since,
            "completed_txns": set(self.completed_txns),
            "epoch": self.epoch,
        }

    def restore(self, snap: dict) -> None:
        """Reset to a ``snapshot()`` dict (snapshot install / catch-up)."""
        self.store = KvStore()
        self.store.absorb(snap["store"])
        self.range = snap["range"]
        self.predecessor = snap["predecessor"]
        self.successor = snap["successor"]
        self.status = snap["status"]
        self.forwarding = snap["forwarding"]
        self.active_txn = snap["active_txn"]
        self.frozen_since = snap["frozen_since"]
        self.completed_txns = set(snap["completed_txns"])
        self.epoch = snap.get("epoch", 0)
        if self.status is GroupStatus.RETIRED and self.forwarding:
            self.host.on_group_retired(self.gid, self.forwarding)

    def reset_to_genesis(self) -> None:
        """Forget all applied state, back to the group's genesis image.

        Called by the Paxos replica at the start of durable recovery:
        the state machine must be rebuilt purely from the recovered
        snapshot + replayed log, so everything :meth:`_apply` ever
        touched is reset to its constructor value first.
        """
        self.range = self.genesis.range
        self.predecessor = self.genesis.predecessor
        self.successor = self.genesis.successor
        self.status = GroupStatus.ACTIVE
        self.forwarding = ()
        self.store = KvStore()
        self.store.absorb(self.genesis.kv)
        self.active_txn = None
        self.frozen_since = -1.0
        self.completed_txns = set()
        self.epoch = 0
        self.txn_log = []
        self._freeze_span = None

    # ------------------------------------------------------------------
    # Apply (every replica, in log order)
    # ------------------------------------------------------------------
    def _apply(self, slot: int, command: Command) -> Any:
        if command.kind == "app":
            return self._apply_storage(command)
        if command.kind == "txn_prepare":
            return self._apply_prepare(command.payload)
        if command.kind == "txn_commit":
            return self._apply_commit(command.payload)
        if command.kind == "txn_abort":
            return self._apply_abort(command.payload)
        if command.kind == "read":
            return command.payload()
        if command.kind == "config":
            self.epoch += 1
        return None  # noop

    def _apply_storage(self, command: Command) -> KvResult:
        if self.status is GroupStatus.RETIRED:
            return KvResult(ok=False, error="moved")
        if self.status is GroupStatus.FROZEN:
            return KvResult(ok=False, error="busy")
        return self.store.apply(command.payload, dedup=command.dedup)

    # -------------------------- prepare ------------------------------
    def _apply_prepare(self, spec: TxnSpec) -> tuple[str, Any]:
        if self.status is GroupStatus.RETIRED:
            return ("refused", "retired")
        if spec.txn_id in self.completed_txns:
            return ("refused", "already_completed")
        if self.active_txn is not None:
            if self.active_txn.txn_id == spec.txn_id:
                return ("prepared", self._prepare_data(spec))  # idempotent retry
            return ("refused", "locked")
        problem = self._validate(spec)
        if problem is not None:
            return ("refused", problem)
        self.active_txn = spec
        self.frozen_since = self.host.now
        if self._is_data_participant(spec):
            self.status = GroupStatus.FROZEN
            if self.tracer is not None:
                self._freeze_span = self.tracer.begin(
                    GROUP_FREEZE,
                    gid=self.gid,
                    node=self.host.node_id,
                    txn=spec.txn_id,
                    spec=type(spec).__name__,
                )
        return ("prepared", self._prepare_data(spec))

    def _is_data_participant(self, spec: TxnSpec) -> bool:
        """Does this transaction move this group's stored data?"""
        if isinstance(spec, SplitSpec):
            return spec.gid == self.gid
        if isinstance(spec, MergeSpec):
            return self.gid in (spec.left_gid, spec.right_gid)
        if isinstance(spec, RepartitionSpec):
            return self.gid in (spec.left_gid, spec.right_gid)
        return False  # migrate: membership only

    def _prepare_data(self, spec: TxnSpec) -> Any:
        """State snapshot this participant contributes to the commit."""
        if isinstance(spec, MergeSpec) and self.gid in (spec.left_gid, spec.right_gid):
            return self.store.snapshot()
        if isinstance(spec, RepartitionSpec) and self.gid == spec.donor_gid:
            return self.store.extract_copy(self.owned_keys(self._moving_arc(spec)))
        return None

    def _moving_arc(self, spec: RepartitionSpec) -> KeyRange:
        """The arc of keys that changes hands in a repartition."""
        if spec.donor_gid == spec.left_gid:
            # Boundary moves backwards: donor keeps [lo, new_boundary).
            return KeyRange(spec.new_boundary, self.range.hi)
        # Donor is the right group: it gives up [lo, new_boundary).
        return KeyRange(self.range.lo, spec.new_boundary)

    def _validate(self, spec: TxnSpec) -> str | None:
        """Role-specific sanity checks; a non-None return refuses prepare."""
        if isinstance(spec, SplitSpec):
            return self._validate_split(spec)
        if isinstance(spec, MergeSpec):
            return self._validate_merge(spec)
        if isinstance(spec, RepartitionSpec):
            return self._validate_repartition(spec)
        if isinstance(spec, MigrateSpec):
            return self._validate_migrate(spec)
        return f"unknown spec {type(spec).__name__}"

    def _validate_split(self, spec: SplitSpec) -> str | None:
        if spec.gid == self.gid:
            if set(spec.left.members) | set(spec.right.members) != set(self.paxos.members):
                return "membership_changed"
            if set(spec.left.members) & set(spec.right.members):
                return "overlapping_membership"
            if spec.split_key == self.range.lo or not self.range.contains(spec.split_key):
                return "bad_split_key"
            return None
        # Pointer participant: at least one of our pointers must still
        # reference the splitting group, or the spec was built from a
        # stale view of the ring.
        as_pred = (
            spec.pred_gid == self.gid
            and self.successor is not None
            and self.successor.gid == spec.gid
        )
        as_succ = spec.succ_gid == self.gid and self._pred_matches(spec.gid)
        if not (as_pred or as_succ):
            return "stale_pointer"
        return None

    def _pred_matches(self, gid: str) -> bool:
        return self.predecessor is not None and self.predecessor.gid == gid

    def _validate_merge(self, spec: MergeSpec) -> str | None:
        # A two-group ring merges into the full ring, which KeyRange
        # canonicalizes to (0, 0) regardless of where the boundary sat;
        # adjacency (checked below) already pins the structure, so the
        # endpoint equality checks only apply to partial-ring merges.
        full = spec.merged.range.is_full
        if self.gid == spec.left_gid:
            if self.successor is None or self.successor.gid != spec.right_gid:
                return "not_adjacent"
            if not full and spec.merged.range.lo != self.range.lo:
                return "range_mismatch"
        elif self.gid == spec.right_gid:
            if not self._pred_matches(spec.left_gid):
                return "not_adjacent"
            if not full and spec.merged.range.hi != self.range.hi:
                return "range_mismatch"
        return None

    def _validate_repartition(self, spec: RepartitionSpec) -> str | None:
        if self.gid == spec.left_gid and (
            self.successor is None or self.successor.gid != spec.right_gid
        ):
            return "not_adjacent"
        if self.gid == spec.right_gid and not self._pred_matches(spec.left_gid):
            return "not_adjacent"
        if self.gid == spec.donor_gid:
            arc = self._moving_arc(spec)
            if arc.size() == 0 or arc.size() >= self.range.size():
                return "bad_boundary"
            if not self.range.contains(spec.new_boundary):
                return "bad_boundary"
        return None

    def _validate_migrate(self, spec: MigrateSpec) -> str | None:
        if self.gid == spec.from_gid and spec.node not in self.paxos.members:
            return "not_a_member"
        if self.gid == spec.to_gid and spec.node in self.paxos.members:
            return "already_a_member"
        return None

    # -------------------------- commit -------------------------------
    def _apply_commit(self, cmd: TxnCommitCmd) -> tuple[str, Any]:
        spec = cmd.spec
        if spec.txn_id in self.completed_txns:
            return ("dup", None)
        if self.active_txn is None or self.active_txn.txn_id != spec.txn_id:
            # A commit can only be proposed after this group prepared (the
            # prepare is earlier in this same log), so this is a replayed
            # or misdirected record.
            return ("ignored", None)
        if isinstance(spec, SplitSpec):
            self._commit_split(spec)
        elif isinstance(spec, MergeSpec):
            self._commit_merge(spec, cmd.data)
        elif isinstance(spec, RepartitionSpec):
            self._commit_repartition(spec, cmd.data)
        elif isinstance(spec, MigrateSpec):
            self._commit_migrate(spec)
        self.completed_txns.add(spec.txn_id)
        self.active_txn = None
        if self.status is GroupStatus.FROZEN:
            self.status = GroupStatus.ACTIVE
        self._end_freeze_span("committed")
        self.txn_log.append((spec.txn_id, TxnDecision.COMMITTED.value))
        self.host.record_txn_outcome(spec.txn_id, TxnDecision.COMMITTED, cmd.data)
        return ("committed", None)

    def _commit_split(self, spec: SplitSpec) -> None:
        left_info = _plan_info(spec.left)
        right_info = _plan_info(spec.right)
        if spec.gid == self.gid:
            self._create_split_halves(spec, left_info, right_info)
            self._retire((left_info, right_info))
            return
        # Pointer-only participants.  In a two-group ring one neighbor
        # plays both roles, so these are independent ifs.
        if spec.pred_gid == self.gid and self.successor is not None and self.successor.gid == spec.gid:
            self.successor = left_info
        if spec.succ_gid == self.gid and self._pred_matches(spec.gid):
            self.predecessor = right_info

    def _create_split_halves(self, spec: SplitSpec, left_info: GroupInfo, right_info: GroupInfo) -> None:
        left_range, right_range = self.range.split_at(spec.split_key)
        # A split of the only group in the ring makes the halves each
        # other's predecessor and successor.
        outer_pred = self.predecessor if self.predecessor is not None else right_info
        outer_succ = self.successor if self.successor is not None else left_info
        plans = (
            (spec.left, left_range, outer_pred, right_info),
            (spec.right, right_range, left_info, outer_succ),
        )
        for plan, arc, pred, succ in plans:
            if self.host.node_id not in plan.members:
                continue
            kv = self.store.extract_copy(self.owned_keys(arc))
            self.host.create_group(
                GroupGenesis(
                    gid=plan.gid,
                    range=arc,
                    members=plan.members,
                    initial_leader=plan.initial_leader,
                    kv=kv,
                    predecessor=pred,
                    successor=succ,
                )
            )

    def _commit_merge(self, spec: MergeSpec, data: dict) -> None:
        merged_info = _plan_info(spec.merged)
        if self.gid in (spec.left_gid, spec.right_gid):
            if self.host.node_id in spec.merged.members:
                kv = RangeState()
                _absorb_into(kv, data.get("left_state"))
                _absorb_into(kv, data.get("right_state"))
                # In a two-group ring the merged group owns everything.
                two_ring = spec.outer_pred_gid in (None, spec.right_gid)
                self.host.create_group(
                    GroupGenesis(
                        gid=spec.merged.gid,
                        range=spec.merged.range,
                        members=spec.merged.members,
                        initial_leader=spec.merged.initial_leader,
                        kv=kv,
                        predecessor=None if two_ring else spec.outer_pred_info,
                        successor=None if two_ring else spec.outer_succ_info,
                    )
                )
            self._retire((merged_info,))
            return
        if spec.outer_pred_gid == self.gid and self.successor is not None and self.successor.gid == spec.left_gid:
            self.successor = merged_info
        if spec.outer_succ_gid == self.gid and self._pred_matches(spec.right_gid):
            self.predecessor = merged_info

    def _commit_repartition(self, spec: RepartitionSpec, data: dict) -> None:
        moving = data.get("moving_state") or RangeState()
        i_am_left = self.gid == spec.left_gid
        if self.gid == spec.donor_gid:
            self.store.extract(list(moving.cells))
            new_range = (
                KeyRange(self.range.lo, spec.new_boundary)
                if i_am_left
                else KeyRange(spec.new_boundary, self.range.hi)
            )
        else:
            self.store.absorb(moving)
            new_range = (
                KeyRange(self.range.lo, spec.new_boundary)
                if i_am_left
                else KeyRange(spec.new_boundary, self.range.hi)
            )
        self.range = new_range
        self.epoch += 1
        # Refresh the cached range in every pointer referencing the
        # partner — in a two-group ring it is both our successor and our
        # predecessor.
        partner_gid = spec.right_gid if i_am_left else spec.left_gid
        if i_am_left:
            if self.successor is not None and self.successor.gid == partner_gid:
                self.successor = self.successor.with_range(
                    KeyRange(spec.new_boundary, self.successor.range.hi)
                )
            if self.predecessor is not None and self.predecessor.gid == partner_gid:
                self.predecessor = self.predecessor.with_range(
                    KeyRange(spec.new_boundary, self.predecessor.range.hi)
                )
        else:
            if self.predecessor is not None and self.predecessor.gid == partner_gid:
                self.predecessor = self.predecessor.with_range(
                    KeyRange(self.predecessor.range.lo, spec.new_boundary)
                )
            if self.successor is not None and self.successor.gid == partner_gid:
                self.successor = self.successor.with_range(
                    KeyRange(self.successor.range.lo, spec.new_boundary)
                )

    def _commit_migrate(self, spec: MigrateSpec) -> None:
        # Membership edits are ordinary config changes issued by the
        # leader after the commit applies; the transaction's job was the
        # mutual exclusion against splits/merges.
        if self.paxos.is_leader:
            self.host.after_migrate_commit(spec, self.gid)

    def _retire(self, forwarding: tuple[GroupInfo, ...]) -> None:
        self.status = GroupStatus.RETIRED
        self.forwarding = forwarding
        self.host.on_group_retired(self.gid, forwarding)

    # -------------------------- abort --------------------------------
    def _apply_abort(self, cmd: TxnAbortCmd) -> tuple[str, Any]:
        spec = cmd.spec
        if spec.txn_id in self.completed_txns:
            return ("dup", None)
        self.completed_txns.add(spec.txn_id)
        self.txn_log.append((spec.txn_id, TxnDecision.ABORTED.value))
        self.host.record_txn_outcome(spec.txn_id, TxnDecision.ABORTED, {})
        if self.active_txn is not None and self.active_txn.txn_id == spec.txn_id:
            self.active_txn = None
            if self.status is GroupStatus.FROZEN:
                self.status = GroupStatus.ACTIVE
            self._end_freeze_span("aborted")
        return ("aborted", None)

    def _end_freeze_span(self, outcome: str) -> None:
        """Close the open freeze-window span, if tracing recorded one."""
        span = self._freeze_span
        if span is not None:
            self._freeze_span = None
            if span.open:
                self.tracer.finish(span, outcome=outcome)


def _plan_info(plan) -> GroupInfo:
    return GroupInfo(
        gid=plan.gid,
        range=plan.range,
        members=plan.members,
        leader_hint=plan.initial_leader,
    )


def _absorb_into(target: RangeState, source: RangeState | None) -> None:
    if source is None:
        return
    target.cells.update(source.cells)
    for client, seqs in source.sessions.items():
        target.sessions.setdefault(client, {}).update(seqs)

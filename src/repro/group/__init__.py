"""Scatter groups: Paxos-replicated shards of the key space.

A *group* is the unit of the Scatter overlay: a set of nodes running one
Multi-Paxos instance that owns a contiguous arc of the ring, stores the
keys in it, and keeps authoritative pointers to its predecessor and
successor groups.  :class:`GroupReplica` is one node's share of one
group; it wires a :class:`~repro.consensus.replica.PaxosReplica` to a
:class:`~repro.store.kvstore.KvStore` and implements the deterministic
apply logic for storage operations and for the prepare/commit/abort
records of multi-group transactions.
"""

from repro.group.info import GroupGenesis, GroupInfo
from repro.group.replica import GroupReplica, GroupStatus

__all__ = ["GroupGenesis", "GroupInfo", "GroupReplica", "GroupStatus"]

"""Descriptions of groups passed between nodes and stored as pointers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dht.ring import KeyRange
from repro.store.kvstore import RangeState


@dataclass(frozen=True)
class GroupInfo:
    """What one group knows (or caches) about another group.

    Adjacency pointers hold these; they are updated transactionally by
    group operations, but the ``members`` and ``leader_hint`` fields are
    hints that can go stale between operations — routing treats them as
    starting points, not truth.
    """

    gid: str
    range: KeyRange
    members: tuple[str, ...]
    leader_hint: str
    # Monotonic freshness: bumped by every applied config change or
    # repartition, so caches can tell which of two infos is newer.
    epoch: int = 0

    def with_range(self, new_range: KeyRange) -> "GroupInfo":
        """Copy of this info owning ``new_range`` (other fields kept)."""
        return replace(self, range=new_range)

    def with_leader(self, leader: str) -> "GroupInfo":
        """Copy of this info with a fresher leader hint."""
        return replace(self, leader_hint=leader)


@dataclass
class GroupGenesis:
    """Everything needed to instantiate a replica of a group.

    Created once per group (at bootstrap, or by the split/merge commit
    that creates the group) and shipped to late-joining members, whose
    replicas start from this state and replay the group's Paxos log.
    """

    gid: str
    range: KeyRange
    members: tuple[str, ...]
    initial_leader: str
    kv: RangeState = field(default_factory=RangeState)
    predecessor: GroupInfo | None = None
    successor: GroupInfo | None = None

    def info(self) -> GroupInfo:
        """The :class:`GroupInfo` advertising this newborn group."""
        return GroupInfo(
            gid=self.gid,
            range=self.range,
            members=self.members,
            leader_hint=self.initial_leader,
        )

"""Payloads carried inside a group's Paxos log commands.

Log command kinds used by the group layer:

- ``app``: a :class:`~repro.store.kvstore.KvOp` (storage operation).
- ``txn_prepare``: a :class:`~repro.txn.spec.TxnSpec` — locks the group.
- ``txn_commit``: a :class:`TxnCommitCmd` — applies the group operation.
- ``txn_abort``: a :class:`TxnAbortCmd` — releases the lock.
- ``config`` / ``noop``: handled by the consensus layer itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.txn.spec import TxnSpec


@dataclass(frozen=True)
class TxnCommitCmd:
    """Commit record: the spec plus any shipped state.

    ``data`` maps role-specific keys (e.g. ``"left_state"``,
    ``"right_state"``, ``"moving_state"``) to
    :class:`~repro.store.kvstore.RangeState` snapshots gathered from
    prepare responses.
    """

    spec: TxnSpec
    data: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TxnAbortCmd:
    """Abort record: releases the freeze taken by the matching prepare."""

    spec: TxnSpec

"""Coordinator side of 2PC-over-Paxos-groups.

The coordinator is the leader of one participant group.  Its driving
process is *not* the source of truth — the coordinator group's log is:
the transaction is committed exactly when a ``txn_commit`` record is
chosen in the coordinator group's log.  The driver just pushes the
protocol along; if it dies, the coordinator group's next leader (or a
participant's recovery query) finishes or aborts the transaction, which
is what makes the protocol non-blocking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.consensus.commands import Command
from repro.dht.messages import TxnAbortReq, TxnCommitReq, TxnPrepareReq
from repro.dht.rpc import GroupUnreachable, group_request
from repro.group.commands import TxnAbortCmd, TxnCommitCmd
from repro.group.info import GroupInfo
from repro.net.futures import Future, all_of, spawn
from repro.obs.spans import TXN_COMMIT, TXN_NOTIFY, TXN_OP, TXN_PREPARE
from repro.txn.spec import MergeSpec, RepartitionSpec, TxnSpec

if TYPE_CHECKING:
    from repro.dht.scatter import ScatterNode
    from repro.group.replica import GroupReplica


def run_group_operation(
    node: "ScatterNode",
    group: "GroupReplica",
    spec: TxnSpec,
    participant_infos: dict[str, GroupInfo],
) -> Future:
    """Drive ``spec`` to completion; resolves with "committed" or
    "aborted:<reason>" (or "unknown:<reason>" if the driver lost its
    leadership mid-flight and the outcome rests with recovery)."""
    node.coordinating.add(group.gid)
    tracer = node.sim.tracer
    op_span = None
    if tracer is not None:
        op_span = tracer.begin(
            TXN_OP,
            spec=type(spec).__name__,
            txn=spec.txn_id,
            coordinator=group.gid,
            participants=len(spec.participant_gids()),
        )
    future = spawn(node.sim, _drive(node, group, spec, participant_infos, op_span))

    def _done(f: Future) -> None:
        node.coordinating.discard(group.gid)
        # The span closes here, in the future's callback, so every exit
        # of the driver — commit, abort, unknown, raised — closes it.
        if op_span is not None:
            result = f"error:{f.exception}" if f.exception is not None else str(f.result())
            outcome = result.split(":", 1)[0]
            tracer.metrics.inc(f"txn.{outcome}")
            tracer.finish(op_span, outcome=outcome, result=result)

    future.add_callback(_done)
    return future


def _drive(
    node: "ScatterNode",
    group: "GroupReplica",
    spec: TxnSpec,
    infos: dict[str, GroupInfo],
    op_span=None,
):
    tracer = node.sim.tracer
    remote_gids = [gid for gid in spec.participant_gids() if gid != group.gid]

    # ---- Phase 1: prepare everywhere (locally through our own log). ----
    prep_span = None
    if tracer is not None:
        prep_span = tracer.begin(
            TXN_PREPARE, parent=op_span, participants=len(remote_gids) + 1
        )
    local_prepare = group.paxos.propose(Command(kind="txn_prepare", payload=spec))
    remote_prepares = [
        spawn(node.sim, _remote_txn_rpc(node, infos[gid], TxnPrepareReq(gid, spec), gid))
        for gid in remote_gids
    ]
    try:
        local_status, local_data = yield local_prepare
    except Exception as exc:
        # We may or may not have locked our own group; recovery cleans up.
        if prep_span is not None:
            tracer.finish(prep_span, outcome="unknown")
        return f"unknown:local_prepare:{exc}"
    replies = {group.gid: (local_status, local_data)}
    try:
        remote_results = yield all_of(remote_prepares)
    except Exception as exc:
        if prep_span is not None:
            tracer.finish(prep_span, outcome="rpc_failed")
        yield from _abort(node, group, spec, infos, remote_gids, f"prepare_rpc:{exc}")
        return f"aborted:prepare_rpc:{exc}"
    for gid, resp in zip(remote_gids, remote_results):
        replies[gid] = (resp.status, resp.data)
    refused = [gid for gid, (status, _d) in replies.items() if status != "prepared"]
    if prep_span is not None:
        tracer.finish(prep_span, outcome="refused" if refused else "prepared")
    if refused:
        reasons = {gid: replies[gid] for gid in refused}
        yield from _abort(node, group, spec, infos, remote_gids, f"refused:{reasons}")
        return f"aborted:refused:{sorted(refused)}"

    # ---- Commit point: the record in the coordinator group's log. ----
    commit_span = None
    if tracer is not None:
        commit_span = tracer.begin(TXN_COMMIT, parent=op_span)
    data = _assemble_commit_data(spec, {gid: d for gid, (_s, d) in replies.items()})
    local_commit = group.paxos.propose(
        Command(kind="txn_commit", payload=TxnCommitCmd(spec=spec, data=data))
    )
    try:
        commit_status, _ = yield local_commit
    except Exception as exc:
        if commit_span is not None:
            tracer.finish(commit_span, outcome="unknown")
        return f"unknown:local_commit:{exc}"
    if commit_span is not None:
        tracer.finish(commit_span, outcome=commit_status)
    if commit_status not in ("committed", "dup"):
        # Our group raced us (e.g. recovery aborted first).
        return f"aborted:local_commit:{commit_status}"

    # ---- Phase 2: notify the other participants (best effort; they can
    # always recover the outcome from our group). ----
    notify_span = None
    if tracer is not None and remote_gids:
        notify_span = tracer.begin(TXN_NOTIFY, parent=op_span, targets=len(remote_gids))
    notifies = [
        spawn(node.sim, _remote_txn_rpc(node, infos[gid], TxnCommitReq(gid, spec, data), gid))
        for gid in remote_gids
    ]
    if notifies:
        try:
            yield all_of(notifies)
        except Exception:
            pass  # stragglers learn the outcome through recovery
    if notify_span is not None:
        tracer.finish(notify_span)
    return "committed"


def _abort(node, group, spec, infos, remote_gids, reason):
    """Record the abort decision in our log, then tell the others."""
    local = group.paxos.propose(Command(kind="txn_abort", payload=TxnAbortCmd(spec=spec)))
    try:
        yield local
    except Exception:
        pass  # recovery will finish the job
    for gid in remote_gids:
        spawn(node.sim, _remote_txn_rpc(node, infos[gid], TxnAbortReq(gid, spec), gid))


def _remote_txn_rpc(node: "ScatterNode", info: GroupInfo, msg, gid: str):
    """Send a transaction RPC to a group, following leader hints."""
    try:
        resp = yield from group_request(
            node, info, lambda: msg, timeout=node.config.txn_rpc_timeout
        )
    except GroupUnreachable as exc:
        raise GroupUnreachable(f"txn rpc to {gid}: {exc}") from exc
    return resp


def _assemble_commit_data(spec: TxnSpec, prepare_data: dict) -> dict:
    """Pick the shipped state each commit record must carry."""
    if isinstance(spec, MergeSpec):
        return {
            "left_state": prepare_data.get(spec.left_gid),
            "right_state": prepare_data.get(spec.right_gid),
        }
    if isinstance(spec, RepartitionSpec):
        return {"moving_state": prepare_data.get(spec.donor_gid)}
    return {}

"""Descriptors for the four Scatter group operations.

A spec is an immutable description of the whole transaction, created by
the coordinating group's leader and carried verbatim in every
participant's Paxos log (inside prepare/commit/abort commands).  Every
replica applying the same spec performs the same deterministic state
change, which is what keeps the members of each participant group in
agreement about the overlay.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum

from typing import TYPE_CHECKING

from repro.dht.ring import KeyRange

if TYPE_CHECKING:
    from repro.group.info import GroupInfo

_txn_counter = itertools.count(1)


def new_txn_id(coordinator_node: str) -> str:
    """Globally unique transaction id (node-scoped counter)."""
    return f"txn:{coordinator_node}:{next(_txn_counter)}"


class TxnDecision(Enum):
    """Outcome of a transaction as recorded in a coordinator's log."""

    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"


def decisions_conflict(decisions) -> bool:
    """True if a set of observed outcomes violates 2PC atomicity.

    Read-only helper for invariant checkers (``repro.check``): a
    transaction may be observed as committed on some replicas and not
    yet observed on others (they lag), but never as both committed and
    aborted.  ``decisions`` is any iterable of :class:`TxnDecision`
    values or their ``.value`` strings; PENDING never conflicts.
    """
    seen = set()
    for decision in decisions:
        value = decision.value if isinstance(decision, TxnDecision) else decision
        if value != TxnDecision.PENDING.value:
            seen.add(value)
    return len(seen) > 1


@dataclass(frozen=True)
class GroupPlan:
    """Blueprint of a group to be created by a split or merge."""

    gid: str
    range: KeyRange
    members: tuple[str, ...]
    initial_leader: str


@dataclass(frozen=True)
class TxnSpec:
    """Base descriptor; concrete operations subclass it."""

    txn_id: str
    coordinator_gid: str
    # Members of the coordinator group at txn creation — participants use
    # this to locate the coordinator for outcome queries after failures.
    coordinator_members: tuple[str, ...]

    @property
    def kind(self) -> str:
        """Short operation name: "split", "merge", "migrate", ..."""
        return type(self).__name__.removesuffix("Spec").lower()

    def participant_gids(self) -> tuple[str, ...]:
        """Every group that must prepare (coordinator's group included)."""
        raise NotImplementedError


@dataclass(frozen=True)
class SplitSpec(TxnSpec):
    """Split ``gid`` into two new adjacent groups at ``split_key``.

    Participants: the splitting group plus its predecessor and successor
    groups (whose adjacency pointers must move atomically with the
    split).  Either neighbor may coincide with the splitting group (ring
    of one) or with each other (ring of two); apply logic handles both.
    """

    gid: str
    split_key: int
    left: GroupPlan  # keeps [lo, split_key)
    right: GroupPlan  # keeps [split_key, hi)
    pred_gid: str | None
    succ_gid: str | None

    def participant_gids(self) -> tuple[str, ...]:
        out = [self.gid]
        for neighbor in (self.pred_gid, self.succ_gid):
            if neighbor is not None and neighbor not in out:
                out.append(neighbor)
        return tuple(out)


@dataclass(frozen=True)
class MergeSpec(TxnSpec):
    """Merge adjacent groups ``left_gid`` and ``right_gid`` into one.

    ``left_gid``'s range must immediately precede ``right_gid``'s.
    Participants additionally include the outer neighbors whose pointers
    must be updated.  Both constituent stores are snapshotted at prepare
    time and travel in the commit command, so every member of the new
    group starts from identical state.
    """

    left_gid: str
    right_gid: str
    merged: GroupPlan
    # Cached infos of the outer neighbors (None in a one/two-group ring,
    # where the merged group closes the ring).
    outer_pred_info: "GroupInfo | None"
    outer_succ_info: "GroupInfo | None"

    @property
    def outer_pred_gid(self) -> str | None:
        return self.outer_pred_info.gid if self.outer_pred_info else None

    @property
    def outer_succ_gid(self) -> str | None:
        return self.outer_succ_info.gid if self.outer_succ_info else None

    def participant_gids(self) -> tuple[str, ...]:
        out = [self.left_gid, self.right_gid]
        for neighbor in (self.outer_pred_gid, self.outer_succ_gid):
            if neighbor is not None and neighbor not in out:
                out.append(neighbor)
        return tuple(out)


@dataclass(frozen=True)
class MigrateSpec(TxnSpec):
    """Move ``node`` from ``from_gid`` to ``to_gid``.

    The transaction locks both groups so a migration cannot interleave
    with a split or merge that would invalidate it; the actual membership
    edits are ordinary Paxos config changes issued when the commit
    applies.
    """

    node: str
    from_gid: str
    to_gid: str

    def participant_gids(self) -> tuple[str, ...]:
        return (self.from_gid, self.to_gid)


@dataclass(frozen=True)
class RepartitionSpec(TxnSpec):
    """Move the boundary between adjacent groups to ``new_boundary``.

    Keys between the old and new boundary move from the donor group to
    the receiver.  The donor snapshots the moving range at prepare time;
    the snapshot travels in the commit command.
    """

    left_gid: str
    right_gid: str
    new_boundary: int
    donor_gid: str  # which of the two gives up keys

    def participant_gids(self) -> tuple[str, ...]:
        return (self.left_gid, self.right_gid)

"""Classic 2PC with an unreplicated coordinator — the blocking strawman.

Used by the E12 ablation: when a plain 2PC coordinator dies between
collecting votes and announcing the outcome, prepared participants hold
their locks forever (they cannot unilaterally decide).  Scatter's
replicated-coordinator transactions resolve the same failure in bounded
time.  This module is deliberately minimal: one coordinator node, N
participant nodes, one lock each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.futures import Future, RpcError, RpcTimeout, all_of, spawn
from repro.net.node import Node
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork


@dataclass(frozen=True)
class PrepareReq:
    """Phase-1 vote request from the coordinator."""

    txn_id: str
    payload: Any = None


@dataclass(frozen=True)
class DecisionMsg:
    """Phase-2 commit/abort decision, fire-and-forget."""

    txn_id: str
    commit: bool


@dataclass(frozen=True)
class VoteResp:
    """A participant's vote; ``ok=False`` forces an abort."""

    ok: bool


class ClassicParticipant(Node):
    """Locks on prepare; holds the lock until it hears a decision."""

    def __init__(self, node_id: str, sim: Simulator, net: SimNetwork) -> None:
        super().__init__(node_id, sim, net)
        self.locked_txn: str | None = None
        self.lock_acquired_at = -1.0
        self.committed: list[str] = []
        self.aborted: list[str] = []
        self.on(PrepareReq, self._on_prepare)
        self.on(DecisionMsg, self._on_decision)

    @property
    def blocked_for(self) -> float:
        """How long the current lock has been held (0 when unlocked)."""
        if self.locked_txn is None:
            return 0.0
        return self.sim.now - self.lock_acquired_at

    def _on_prepare(self, src: str, msg: PrepareReq) -> VoteResp:
        if self.locked_txn is not None and self.locked_txn != msg.txn_id:
            return VoteResp(ok=False)
        self.locked_txn = msg.txn_id
        self.lock_acquired_at = self.sim.now
        return VoteResp(ok=True)

    def _on_decision(self, src: str, msg: DecisionMsg) -> None:
        if self.locked_txn != msg.txn_id:
            return
        (self.committed if msg.commit else self.aborted).append(msg.txn_id)
        self.locked_txn = None


class ClassicCoordinator(Node):
    """Single-node 2PC coordinator.  If it dies mid-protocol, that's it."""

    def __init__(self, node_id: str, sim: Simulator, net: SimNetwork, timeout: float = 1.0) -> None:
        super().__init__(node_id, sim, net)
        self.timeout = timeout
        self.outcomes: dict[str, bool] = {}

    def run_txn(self, txn_id: str, participants: list[str]) -> Future:
        """Drive one 2PC round; resolves with "committed" or "aborted"."""
        return spawn(self.sim, self._drive(txn_id, participants))

    def _drive(self, txn_id: str, participants: list[str]):
        votes = [
            self.request(p, PrepareReq(txn_id), timeout=self.timeout) for p in participants
        ]
        try:
            results = yield all_of(votes)
        except (RpcTimeout, RpcError):
            self._decide(txn_id, participants, commit=False)
            return "aborted"
        commit = all(v.ok for v in results)
        self._decide(txn_id, participants, commit)
        return "committed" if commit else "aborted"

    def _decide(self, txn_id: str, participants: list[str], commit: bool) -> None:
        self.outcomes[txn_id] = commit
        for p in participants:
            self.send(p, DecisionMsg(txn_id, commit))

"""Multi-group distributed transactions (the Scatter group operations).

Scatter changes the overlay — splitting, merging, migrating members
between, and repartitioning adjacent groups — with two-phase commit
whose participants (and coordinator) are Paxos groups.  Because every
side of the protocol is itself replicated, the classic 2PC blocking
failure mode (coordinator dies between prepare and commit) disappears:
the coordinator group's next leader resumes or aborts the transaction,
and participants can always learn the outcome from the coordinator
group.  :mod:`repro.txn.classic` implements ordinary single-node 2PC for
the E12 ablation that demonstrates the difference.
"""

from repro.txn.spec import (
    MergeSpec,
    MigrateSpec,
    RepartitionSpec,
    SplitSpec,
    TxnDecision,
    TxnSpec,
    new_txn_id,
)

__all__ = [
    "MergeSpec",
    "MigrateSpec",
    "RepartitionSpec",
    "SplitSpec",
    "TxnDecision",
    "TxnSpec",
    "new_txn_id",
]

"""The reproduction's core integration claim, as a test:

Scatter remains linearizable under sustained churn — the abstract's
"even with very short node lifetimes, it is possible to build a scalable
and consistent system with practical performance."
"""

import pytest

from repro.analysis import check_history
from repro.dht.client import ScatterClient
from repro.group.replica import GroupStatus
from repro.harness.builders import DeploymentParams, build_scatter_deployment
from repro.policies import ScatterPolicy
from repro.workloads import ChurnProcess, UniformKeys, exponential_lifetime, pareto_lifetime
from repro.workloads.driver import ClosedLoopWorkload

RESILIENT = ScatterPolicy(target_size=5, split_size=11, merge_size=3)


def churn_scenario(seed, lifetime_fn, duration=45.0, n_nodes=20, n_groups=4):
    params = DeploymentParams(n_nodes=n_nodes, n_groups=n_groups, n_clients=3, seed=seed)
    deployment = build_scatter_deployment(params, policy=RESILIENT)
    sim, system, clients = deployment.sim, deployment.system, deployment.clients
    workload = ClosedLoopWorkload(
        sim, clients, UniformKeys(30), read_fraction=0.5, think_time=0.05
    )
    workload.start()
    sim.run_for(4.0)
    churn = ChurnProcess(sim, system, lifetime_fn)
    churn.start()
    sim.run_for(duration)
    churn.stop()
    workload.stop()
    sim.run_for(2.0)
    return sim, system, workload, churn


class TestScatterUnderChurn:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_no_linearizability_violations_exponential(self, seed):
        sim, system, workload, churn = churn_scenario(
            seed, exponential_lifetime(120.0)
        )
        assert churn.departures >= 3, "churn must actually happen"
        check = check_history(workload.all_records())
        assert check.total_reads > 100
        assert check.violations == [], [str(v.detail) for v in check.violations[:3]]

    def test_no_violations_heavy_tailed_churn(self):
        sim, system, workload, churn = churn_scenario(7, pareto_lifetime(120.0))
        check = check_history(workload.all_records())
        assert check.violations == []

    def test_population_and_groups_survive(self):
        sim, system, workload, churn = churn_scenario(4, exponential_lifetime(120.0))
        assert len(system.alive_node_ids()) >= 12
        assert system.group_count() >= 2
        # No group left permanently locked by a stale transaction.
        for gid, g in system.active_groups().items():
            assert g.status is not GroupStatus.FROZEN, f"{gid} frozen"

    def test_availability_stays_practical(self):
        sim, system, workload, churn = churn_scenario(5, exponential_lifetime(150.0))
        records = [r for r in workload.all_records() if r.response_time >= 0]
        completed = [r for r in records if r.completed]
        assert len(completed) / len(records) > 0.9

    def test_new_nodes_keep_joining_throughout(self):
        sim, system, workload, churn = churn_scenario(6, exponential_lifetime(100.0))
        assert churn.arrivals >= churn.departures - 2
        # Replacement nodes actually made it into groups.
        member_nodes = {
            m for g in system.active_groups().values() for m in g.members
        }
        late_joiners = {n for n in member_nodes if int(n[1:]) >= 20}
        assert late_joiners, "at least one replacement node integrated"


class TestClientExactlyOnce:
    def test_retried_writes_apply_once_despite_churn(self):
        sim, system, workload, churn = churn_scenario(8, exponential_lifetime(120.0))
        # Double-application of a retried put would surface as a version
        # skew and, with unique write values, as a stale-read violation
        # when the duplicate overwrites a later write.
        check = check_history(workload.all_records())
        assert check.violations == []
        # Per-key version equals the number of distinct acked puts on it.
        acked_puts: dict[int, int] = {}
        for r in workload.all_records():
            if r.op == "put" and r.completed and r.result.ok:
                acked_puts[r.key] = acked_puts.get(r.key, 0) + 1
        for g in system.active_groups().values():
            for key in g.owned_keys():
                stored = g.store.get(key)
                if key in acked_puts and stored.ok:
                    # Version can exceed acked count only via puts that
                    # timed out at the client yet still applied.
                    assert stored.version >= 1

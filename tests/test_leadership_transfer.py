"""Tests for leadership transfer (the latency policy's mechanism)."""

import pytest

from repro.consensus import Command, PaxosConfig
from repro.consensus.harness import build_cluster, current_leader
from repro.sim import ConstantLatency, SimNetwork, Simulator

FAST = PaxosConfig(
    heartbeat_interval=0.1,
    election_timeout=0.5,
    lease_duration=0.35,
    retry_interval=0.3,
)


def make_cluster(n=3, seed=0):
    sim = Simulator(seed=seed)
    net = SimNetwork(sim, latency=ConstantLatency(0.005))
    hosts = build_cluster(sim, net, n=n, config=FAST)
    sim.run_for(1.0)
    return sim, net, hosts


class TestTransferLeadership:
    def test_transfer_moves_leadership(self):
        sim, net, hosts = make_cluster()
        assert hosts[0].replica.transfer_leadership("n1")
        sim.run_for(2.0)
        leader = current_leader(hosts)
        assert leader is hosts[1]

    def test_new_leader_serves_after_transfer(self):
        sim, net, hosts = make_cluster()
        hosts[0].replica.transfer_leadership("n2")
        sim.run_for(2.0)
        f = hosts[2].propose(Command.app("after-transfer"))
        sim.run_for(2.0)
        assert f.result() == "after-transfer"

    def test_transfer_refused_with_pending_proposals(self):
        sim, net, hosts = make_cluster()
        hosts[0].propose(Command.app("inflight"))  # not yet committed
        assert not hosts[0].replica.transfer_leadership("n1")
        assert hosts[0].replica.is_leader

    def test_transfer_to_self_refused(self):
        sim, net, hosts = make_cluster()
        assert not hosts[0].replica.transfer_leadership("n0")

    def test_transfer_to_nonmember_refused(self):
        sim, net, hosts = make_cluster()
        assert not hosts[0].replica.transfer_leadership("ghost")

    def test_follower_cannot_transfer(self):
        sim, net, hosts = make_cluster()
        assert not hosts[1].replica.transfer_leadership("n2")

    def test_transfer_preserves_committed_state(self):
        sim, net, hosts = make_cluster()
        f = hosts[0].propose(Command.app("before"))
        sim.run_for(1.0)
        assert f.result() == "before"
        hosts[0].replica.transfer_leadership("n1")
        sim.run_for(2.0)
        f2 = hosts[1].propose(Command.app("after"))
        sim.run_for(2.0)
        assert f2.result() == "after"
        payloads = [c.payload for _s, c in hosts[1].applied if c.kind == "app"]
        assert payloads == ["before", "after"]

    def test_lease_reads_resume_at_new_leader(self):
        sim, net, hosts = make_cluster()
        hosts[0].replica.transfer_leadership("n1")
        sim.run_for(3.0)
        assert hosts[1].replica.lease_active
        f = hosts[1].replica.read(lambda: "leased")
        assert f.done and f.result() == "leased"

    def test_chain_of_transfers(self):
        sim, net, hosts = make_cluster(n=5)
        order = ["n1", "n2", "n3"]
        for target in order:
            leader = current_leader(hosts)
            assert leader is not None
            assert leader.replica.transfer_leadership(target)
            sim.run_for(2.5)
        assert current_leader(hosts) is hosts[3]

"""Fuzzer determinism, demo-bug canary, and CLI behaviour.

The contract under test: a fuzz campaign is a pure function of its
master seed — same seed, same plans, same outcome, byte-identical repro
file — and the quorum-off-by-one demo bug is found, shrunk, and
replay-reproduced within a bounded budget.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.check import (
    FuzzConfig,
    iteration_seed,
    load_repro,
    replay,
    run_fuzz,
    run_plan,
    sample_plan,
)
from repro.check.plan import plan_from_dict, plan_to_dict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _cli_env() -> dict[str, str]:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


class TestPlanDeterminism:
    def test_iteration_seeds_stable_and_distinct(self):
        seeds = [iteration_seed(1, i) for i in range(50)]
        assert seeds == [iteration_seed(1, i) for i in range(50)]
        assert len(set(seeds)) == 50
        assert seeds != [iteration_seed(2, i) for i in range(50)]

    def test_sample_plan_deterministic(self):
        a = sample_plan(7, 3)
        b = sample_plan(7, 3)
        assert a == b  # frozen dataclasses of tuples compare structurally
        assert sample_plan(7, 4) != a

    def test_plan_round_trips_through_dict(self):
        plan = sample_plan(11, 0)
        assert plan_from_dict(json.loads(json.dumps(plan_to_dict(plan)))) == plan


class TestRunDeterminism:
    def test_same_plan_same_outcome(self):
        plan = sample_plan(1, 0)
        first = run_plan(plan)
        second = run_plan(plan)
        assert first.history_digest == second.history_digest
        assert first.events == second.events
        assert (first.ops_total, first.ops_completed) == (
            second.ops_total,
            second.ops_completed,
        )
        assert first.failure == second.failure
        assert first.ops_completed > 0

    def test_short_clean_campaign(self):
        summary = run_fuzz(FuzzConfig(master_seed=1, iterations=3))
        assert not summary.found
        assert summary.iterations_run == 3
        assert summary.ops_total > 0
        assert summary.events_total > 0


@pytest.fixture(scope="module")
def demo_campaigns(tmp_path_factory):
    """Two independent demo-bug campaigns with the same master seed."""
    runs = []
    for name in ("a", "b"):
        out = tmp_path_factory.mktemp(f"demo_{name}")
        summary = run_fuzz(
            FuzzConfig(
                master_seed=1,
                iterations=10,
                bug="quorum-off-by-one",
                out_dir=str(out),
            )
        )
        runs.append(summary)
    return runs


class TestDemoBugCanary:
    def test_found_within_budget(self, demo_campaigns):
        summary = demo_campaigns[0]
        assert summary.found
        assert summary.failure is not None
        assert summary.failing_iteration is not None

    def test_shrunk_to_minimal_schedule(self, demo_campaigns):
        summary = demo_campaigns[0]
        shrink = summary.shrink
        assert shrink["runs"] > 0
        assert shrink["schedule_after"] <= shrink["schedule_before"]
        assert shrink["ops_after"] <= shrink["ops_before"]
        # The quorum bug needs only a small push; the shrinker should get
        # the fault schedule down to a handful of entries.
        assert shrink["schedule_after"] <= 3

    def test_repro_files_byte_identical_across_runs(self, demo_campaigns):
        first, second = demo_campaigns
        with open(first.repro_path, "rb") as fa, open(second.repro_path, "rb") as fb:
            assert fa.read() == fb.read()

    def test_replay_reproduces(self, demo_campaigns):
        data = load_repro(demo_campaigns[0].repro_path)
        reproduced, observed, recorded = replay(data)
        assert reproduced, f"replay diverged: observed={observed} recorded={recorded}"
        assert observed.kind == recorded.kind
        assert observed.name == recorded.name


class TestShardedCampaign:
    """``--workers N`` sharding must not change a campaign's verdict.

    Plans derive purely from (master_seed, iteration), so sharding the
    iteration space across processes can change only the bookkeeping
    (how many iterations were attempted before the stop), never which
    iteration fails first or what the repro file contains.
    """

    def test_sharded_clean_campaign_matches_serial(self):
        from repro.check import run_fuzz_sharded

        sharded = run_fuzz_sharded(FuzzConfig(master_seed=1, iterations=3), workers=2)
        serial = run_fuzz(FuzzConfig(master_seed=1, iterations=3))
        assert not sharded.found and not serial.found
        assert sharded.iterations_run == serial.iterations_run == 3
        assert sharded.ops_total == serial.ops_total
        assert sharded.events_total == serial.events_total

    @pytest.mark.slow
    def test_sharded_finds_demo_bug_and_replay_reproduces(self, tmp_path):
        from repro.check import run_fuzz_sharded

        sharded = run_fuzz_sharded(
            FuzzConfig(
                master_seed=1,
                iterations=4,
                bug="quorum-off-by-one",
                out_dir=str(tmp_path / "sharded"),
            ),
            workers=2,
        )
        serial = run_fuzz(
            FuzzConfig(
                master_seed=1,
                iterations=4,
                bug="quorum-off-by-one",
                out_dir=str(tmp_path / "serial"),
            )
        )
        assert sharded.found and serial.found
        # Min failing iteration across shards == the serial stop point.
        assert sharded.failing_iteration == serial.failing_iteration
        assert sharded.failure.kind == serial.failure.kind
        assert sharded.failure.name == serial.failure.name
        assert sharded.shrink == serial.shrink
        # Byte-identical repro file, and it replays in-process.
        with open(sharded.repro_path, "rb") as fa, open(serial.repro_path, "rb") as fb:
            assert fa.read() == fb.read()
        reproduced, observed, recorded = replay(load_repro(sharded.repro_path))
        assert reproduced, f"replay diverged: observed={observed} recorded={recorded}"


class TestRepairRaceCanary:
    """The repair-race demo bug: the roster says healed, replication lies.

    The buggy repair skips the state-transfer transaction and commits
    the new member straight into the Paxos config, so the group *looks*
    refilled while the seat holds nothing — exactly what the
    replication-floor invariant counts (attending replicas, not roster
    lines).  Only bites on plans with a node_loss fault.
    """

    def test_found_shrunk_and_replayed(self, tmp_path):
        summary = run_fuzz(
            FuzzConfig(
                master_seed=29,
                iterations=5,
                bug="repair-race",
                out_dir=str(tmp_path),
            )
        )
        assert summary.found
        assert summary.failure.kind == "invariant"
        assert summary.failure.name == "replication-floor"
        assert summary.shrink["schedule_after"] <= summary.shrink["schedule_before"]
        data = load_repro(summary.repro_path)
        reproduced, observed, recorded = replay(data)
        assert reproduced, f"replay diverged: observed={observed} recorded={recorded}"
        assert observed.name == recorded.name == "replication-floor"


class TestCli:
    def test_clean_fuzz_exits_zero_with_summary(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fuzz", "--iterations", "2",
             "--seed", "1", "--out-dir", str(tmp_path)],
            capture_output=True, text=True, env=_cli_env(), timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)
        assert summary["found"] is False
        assert summary["iterations_run"] == 2

    def test_unknown_demo_bug_exits_two(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fuzz", "--iterations", "1",
             "--demo-bug", "no-such-bug", "--out-dir", str(tmp_path)],
            capture_output=True, text=True, env=_cli_env(), timeout=120,
        )
        assert proc.returncode == 2

    def test_replay_cli_round_trip(self, demo_campaigns):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fuzz",
             "--replay", demo_campaigns[0].repro_path],
            capture_output=True, text=True, env=_cli_env(), timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

"""Unit tests for the event queue and simulator loop."""

import pytest

from repro.sim import Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pop_order_by_time(self):
        q = EventQueue()
        fired = []
        q.push(2.0, fired.append, ("b",))
        q.push(1.0, fired.append, ("a",))
        q.push(3.0, fired.append, ("c",))
        while (e := q.pop()) is not None:
            e.fn(*e.args)
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        order = []
        for i in range(10):
            q.push(1.0, order.append, (i,))
        while (e := q.pop()) is not None:
            e.fn(*e.args)
        assert order == list(range(10))

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        fired = []
        h = q.push(1.0, fired.append, ("x",))
        q.push(2.0, fired.append, ("y",))
        h.cancel()
        assert len(q) == 1
        while (e := q.pop()) is not None:
            e.fn(*e.args)
        assert fired == ["y"]

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        h.cancel()
        h.cancel()
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        h.cancel()
        assert q.peek_time() == 5.0

    def test_empty_queue(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None
        assert len(q) == 0


class TestSimulator:
    def test_clock_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.schedule(0.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.5, 1.5]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_run_until_leaves_later_events_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run_until(2.0)
        assert fired == ["early"]
        assert sim.pending_events == 1
        sim.run_until(6.0)
        assert fired == ["early", "late"]

    def test_run_for_is_relative(self):
        sim = Simulator()
        sim.run_until(3.0)
        sim.run_for(2.0)
        assert sim.now == 5.0

    def test_nested_scheduling_during_run(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, lambda: fired.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == 2.0

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.0]

    def test_rng_streams_are_independent_and_deterministic(self):
        sim_a = Simulator(seed=42)
        sim_b = Simulator(seed=42)
        # Create streams in different orders: values must match anyway.
        a_churn = [sim_a.rng("churn").random() for _ in range(5)]
        a_net = [sim_a.rng("net").random() for _ in range(5)]
        b_net = [sim_b.rng("net").random() for _ in range(5)]
        b_churn = [sim_b.rng("churn").random() for _ in range(5)]
        assert a_churn == b_churn
        assert a_net == b_net
        assert a_churn != a_net

    def test_different_seeds_differ(self):
        a = Simulator(seed=1).rng("x").random()
        b = Simulator(seed=2).rng("x").random()
        assert a != b

    def test_run_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i + 1.0, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 4

"""Unit tests for the event queue and simulator loop."""

import pytest

from repro.sim import Simulator
from repro.sim.events import EventQueue


def drain(q):
    """Pop and fire every live event; return nothing."""
    while (popped := q.pop()) is not None:
        _time, fn, args = popped
        fn(*args)


class TestEventQueue:
    def test_pop_order_by_time(self):
        q = EventQueue()
        fired = []
        q.push(2.0, fired.append, ("b",))
        q.push(1.0, fired.append, ("a",))
        q.push(3.0, fired.append, ("c",))
        drain(q)
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        order = []
        for i in range(10):
            q.push(1.0, order.append, (i,))
        drain(q)
        assert order == list(range(10))

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        fired = []
        h = q.push(1.0, fired.append, ("x",))
        q.push(2.0, fired.append, ("y",))
        h.cancel()
        assert len(q) == 1
        drain(q)
        assert fired == ["y"]

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        h.cancel()
        h.cancel()
        assert len(q) == 0

    def test_cancel_after_pop_is_noop(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.pop() is not None
        # The event already fired; a late cancel must not fire again or
        # corrupt the live count.
        h.cancel()
        h.cancel()
        assert h.cancelled  # can no longer fire
        assert len(q) == 1
        assert q.pop() is not None
        assert len(q) == 0
        assert q.pop() is None

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        h.cancel()
        assert q.peek_time() == 5.0

    def test_empty_queue(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None
        assert len(q) == 0

    def test_len_and_peek_consistent_under_cancel_storm(self):
        # Lazy deletion must never let len()/peek_time() drift from the
        # ground truth of live events, whatever the cancel pattern.
        q = EventQueue()
        handles = {}
        for i in range(200):
            handles[i] = q.push(float(i % 17), lambda: None)
        # Cancel every third, some twice, in a scattered order.
        for i in list(range(0, 200, 3)) + list(range(0, 200, 6)):
            handles[i].cancel()
        live = {i for i in range(200) if not handles[i].cancelled}
        assert len(q) == len(live)
        expected_min = min(float(i % 17) for i in live)
        assert q.peek_time() == expected_min
        popped = 0
        while q.pop() is not None:
            popped += 1
        assert popped == len(live)
        assert len(q) == 0
        assert q.peek_time() is None

    def test_cancel_interleaved_with_pop(self):
        q = EventQueue()
        fired = []
        hs = [q.push(float(i), fired.append, (i,)) for i in range(10)]
        while (popped := q.pop()) is not None:
            _t, fn, args = popped
            fn(*args)
            # Cancel the next event after each fire: only evens run.
            nxt = args[0] + 1
            if nxt < 10:
                hs[nxt].cancel()
        assert fired == [0, 2, 4, 6, 8]
        assert len(q) == 0

    def test_push_fire_returns_no_handle(self):
        q = EventQueue()
        fired = []
        assert q.push_fire(1.0, fired.append, ("x",)) is None
        assert len(q) == 1
        drain(q)
        assert fired == ["x"]

    def test_push_fire_interleaves_with_push_deterministically(self):
        # Fire-and-forget entries consume sequence numbers exactly like
        # handle-based ones, so same-timestamp ties break by scheduling
        # order regardless of which path each event used.
        q = EventQueue()
        order = []
        q.push(1.0, order.append, ("h0",))
        q.push_fire(1.0, order.append, ("f1",))
        q.push(1.0, order.append, ("h2",))
        q.push_fire(1.0, order.append, ("f3",))
        q.push_fire(0.5, order.append, ("f-early",))
        drain(q)
        assert order == ["f-early", "h0", "f1", "h2", "f3"]

    def test_push_fire_survives_cancel_storm_around_it(self):
        q = EventQueue()
        fired = []
        before = [q.push(1.0, fired.append, (f"b{i}",)) for i in range(5)]
        q.push_fire(1.0, fired.append, ("keep",))
        after = [q.push(1.0, fired.append, (f"a{i}",)) for i in range(5)]
        for h in before + after:
            h.cancel()
        assert len(q) == 1
        assert q.peek_time() == 1.0
        drain(q)
        assert fired == ["keep"]


class TestSimulator:
    def test_clock_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.schedule(0.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.5, 1.5]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_fire_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_fire(-1.0, lambda: None)

    def test_schedule_fire_interleaves_with_schedule(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "h0")
        sim.schedule_fire(1.0, fired.append, "f1")
        sim.schedule(1.0, fired.append, "h2")
        sim.call_soon_fire(fired.append, "soon")
        sim.run()
        assert fired == ["soon", "h0", "f1", "h2"]
        assert sim.events_processed == 4

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_run_until_leaves_later_events_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run_until(2.0)
        assert fired == ["early"]
        assert sim.pending_events == 1
        sim.run_until(6.0)
        assert fired == ["early", "late"]

    def test_run_for_is_relative(self):
        sim = Simulator()
        sim.run_until(3.0)
        sim.run_for(2.0)
        assert sim.now == 5.0

    def test_nested_scheduling_during_run(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, lambda: fired.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == 2.0

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.0]

    def test_rng_streams_are_independent_and_deterministic(self):
        sim_a = Simulator(seed=42)
        sim_b = Simulator(seed=42)
        # Create streams in different orders: values must match anyway.
        a_churn = [sim_a.rng("churn").random() for _ in range(5)]
        a_net = [sim_a.rng("net").random() for _ in range(5)]
        b_net = [sim_b.rng("net").random() for _ in range(5)]
        b_churn = [sim_b.rng("churn").random() for _ in range(5)]
        assert a_churn == b_churn
        assert a_net == b_net
        assert a_churn != a_net

    def test_different_seeds_differ(self):
        a = Simulator(seed=1).rng("x").random()
        b = Simulator(seed=2).rng("x").random()
        assert a != b

    def test_run_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i + 1.0, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 4

"""Tests for the harness: results rendering, metrics, builders, stats."""

import math

import pytest

from repro.analysis.stats import cdf_points, mean, percentile, summarize_latencies
from repro.dht.client import OpRecord
from repro.harness import (
    DeploymentParams,
    ExperimentResult,
    build_chord_deployment,
    build_scatter_deployment,
    format_table,
    workload_metrics,
)
from repro.store.kvstore import KvResult


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        assert math.isnan(mean([]))

    def test_percentile_interpolates(self):
        values = [0, 10, 20, 30, 40]
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 40
        assert percentile(values, 50) == 20
        assert percentile(values, 25) == 10

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_percentile_empty_and_single(self):
        assert math.isnan(percentile([], 50))
        assert percentile([7], 99) == 7

    def test_cdf_points_monotone(self):
        points = cdf_points(list(range(100)), n_points=10)
        values = [v for v, _f in points]
        fracs = [f for _v, f in points]
        assert values == sorted(values)
        assert fracs[-1] == 1.0

    def test_summarize(self):
        summary = summarize_latencies([0.01, 0.02, 0.03, -1.0])
        assert summary["count"] == 3  # negative (unresolved) dropped
        assert summary["p50"] == 0.02


class TestExperimentResult:
    def test_add_and_column(self):
        r = ExperimentResult("EX", "title", ["a", "b"])
        r.add(a=1, b=2)
        r.add(a=3, b=4)
        assert r.column("a") == [1, 3]

    def test_render_contains_all_cells(self):
        r = ExperimentResult("EX", "My Table", ["x", "value"])
        r.add(x="row1", value=3.14159)
        text = r.render()
        assert "My Table" in text
        assert "row1" in text
        assert "3.142" in text

    def test_format_table_alignment(self):
        text = format_table("T", ["col"], [{"col": "v"}], notes="hello")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "hello" in lines[-1]

    def test_number_formatting(self):
        text = format_table("T", ["n"], [{"n": 1234567.0}, {"n": 0.00001}, {"n": 0}])
        assert "1,234,567" in text
        assert "1.00e-05" in text


def record(op, key, inv, resp, ok=True, value=None, error=None, hops=1):
    r = OpRecord(op=op, key=key, value=value, invoke_time=inv)
    r.response_time = resp
    r.result = KvResult(ok=ok, value=value if op == "get" else None, error=error)
    r.hops = hops
    return r


class TestWorkloadMetrics:
    def test_availability_counts_not_found_as_answered(self):
        records = [
            record("get", 1, 0, 0.01, ok=False, error="not_found"),
            record("get", 1, 0, 8.0, ok=False, error="timeout"),
        ]
        m = workload_metrics(records)
        assert m["ops"] == 2
        assert m["completed"] == 1
        assert m["availability"] == 0.5

    def test_window_filters_ops_but_keeps_writes_for_checking(self):
        records = [
            record("put", 1, 0.0, 0.1, value="v"),
            record("get", 1, 5.0, 5.1, value="v"),
        ]
        m = workload_metrics(records, window=(4.0, 10.0))
        assert m["ops"] == 1  # only the windowed read
        assert m["violations"] == 0  # pre-window write is visible to checker

    def test_latency_percentiles(self):
        records = [record("get", 1, 0, 0.010), record("get", 1, 0, 0.030)]
        m = workload_metrics(records)
        assert 0.010 <= m["latency_p50"] <= 0.030

    def test_empty_records(self):
        m = workload_metrics([])
        assert math.isnan(m["availability"])


class TestBuilders:
    def test_scatter_deployment_is_ready(self):
        deployment = build_scatter_deployment(
            DeploymentParams(n_nodes=6, n_groups=2, n_clients=2, seed=1)
        )
        assert deployment.system.group_count() == 2
        assert len(deployment.clients) == 2
        for gid in deployment.system.active_groups():
            assert deployment.system.leader_of(gid) is not None

    def test_chord_deployment_is_ready(self):
        deployment = build_chord_deployment(
            DeploymentParams(n_nodes=6, n_groups=2, n_clients=1, seed=1)
        )
        assert len(deployment.system.alive_node_ids()) == 6

    def test_deterministic_builds(self):
        a = build_scatter_deployment(DeploymentParams(n_nodes=6, n_groups=2, seed=5))
        b = build_scatter_deployment(DeploymentParams(n_nodes=6, n_groups=2, seed=5))
        leaders_a = {g: a.system.leader_of(g).paxos.replica_id for g in a.system.active_groups()}
        leaders_b = {g: b.system.leader_of(g).paxos.replica_id for g in b.system.active_groups()}
        assert leaders_a == leaders_b

"""Unit tests for futures, processes, and the Node RPC layer."""

from dataclasses import dataclass

import pytest

from repro.net import Future, Node, RpcError, RpcTimeout, all_of, spawn
from repro.sim import ConstantLatency, SimNetwork, Simulator


@dataclass(frozen=True)
class Ping:
    payload: str


@dataclass(frozen=True)
class Slow:
    delay: float


class TestFuture:
    def test_set_result(self):
        f = Future()
        assert not f.done
        f.set_result(42)
        assert f.done
        assert f.result() == 42

    def test_first_writer_wins(self):
        f = Future()
        f.set_result(1)
        f.set_result(2)
        f.set_exception(RuntimeError("late"))
        assert f.result() == 1

    def test_exception(self):
        f = Future()
        f.set_exception(ValueError("boom"))
        with pytest.raises(ValueError):
            f.result()

    def test_result_before_done_raises(self):
        with pytest.raises(RuntimeError):
            Future().result()

    def test_callback_after_resolution_fires_immediately(self):
        f = Future()
        f.set_result("x")
        seen = []
        f.add_callback(lambda fut: seen.append(fut.result()))
        assert seen == ["x"]

    def test_all_of_collects_results(self):
        futures = [Future() for _ in range(3)]
        combined = all_of(futures)
        for i, f in enumerate(futures):
            f.set_result(i)
        assert combined.result() == [0, 1, 2]

    def test_all_of_empty(self):
        assert all_of([]).result() == []

    def test_all_of_propagates_first_failure(self):
        futures = [Future(), Future()]
        combined = all_of(futures)
        futures[1].set_exception(RuntimeError("bad"))
        assert combined.done
        with pytest.raises(RuntimeError):
            combined.result()


class TestSpawn:
    def test_straight_line_process(self):
        sim = Simulator()
        f = Future()

        def proc():
            value = yield f
            return value + 1

        result = spawn(sim, proc())
        sim.schedule(1.0, f.set_result, 10)
        sim.run()
        assert result.result() == 11

    def test_exception_thrown_into_process(self):
        sim = Simulator()
        f = Future()

        def proc():
            try:
                yield f
            except RpcTimeout:
                return "recovered"
            return "no exception"

        result = spawn(sim, proc())
        sim.schedule(1.0, f.set_exception, RpcTimeout("t"))
        sim.run()
        assert result.result() == "recovered"

    def test_unhandled_exception_fails_process_future(self):
        sim = Simulator()
        f = Future()

        def proc():
            yield f

        result = spawn(sim, proc())
        f.set_exception(ValueError("x"))
        sim.run()
        with pytest.raises(ValueError):
            result.result()

    def test_yielding_non_future_is_an_error(self):
        sim = Simulator()

        def proc():
            yield 42

        result = spawn(sim, proc())
        sim.run()
        with pytest.raises(TypeError):
            result.result()


class EchoNode(Node):
    def __init__(self, node_id, sim, net):
        super().__init__(node_id, sim, net)
        self.on(Ping, self._on_ping)
        self.on(Slow, self._on_slow)

    def _on_ping(self, src, msg):
        if msg.payload == "explode":
            raise RuntimeError("handler failure")
        return f"echo:{msg.payload}"

    def _on_slow(self, src, msg):
        f = Future()
        self.set_timer(msg.delay, f.set_result, "slow done")
        return f


class TestNodeRpc:
    def _cluster(self):
        sim = Simulator(seed=0)
        net = SimNetwork(sim, latency=ConstantLatency(0.01))
        a = EchoNode("a", sim, net)
        b = EchoNode("b", sim, net)
        return sim, net, a, b

    def test_request_response(self):
        sim, net, a, b = self._cluster()
        f = a.request("b", Ping("hi"))
        sim.run()
        assert f.result() == "echo:hi"

    def test_rpc_timeout(self):
        sim, net, a, b = self._cluster()
        b.crash()
        f = a.request("b", Ping("hi"), timeout=0.5)
        sim.run()
        with pytest.raises(RpcTimeout):
            f.result()

    def test_remote_error_propagates(self):
        sim, net, a, b = self._cluster()
        f = a.request("b", Ping("explode"))
        sim.run()
        with pytest.raises(RpcError):
            f.result()

    def test_deferred_response_via_future(self):
        sim, net, a, b = self._cluster()
        f = a.request("b", Slow(0.3), timeout=1.0)
        sim.run()
        assert f.result() == "slow done"
        assert sim.now >= 0.3 + 0.02

    def test_deferred_response_can_still_time_out(self):
        sim, net, a, b = self._cluster()
        f = a.request("b", Slow(5.0), timeout=0.5)
        sim.run()
        with pytest.raises(RpcTimeout):
            f.result()

    def test_one_way_message(self):
        sim, net, a, b = self._cluster()
        seen = []
        b.on(str, lambda src, m: seen.append((src, m)))
        a.send("b", "oneway")
        sim.run()
        assert seen == [("a", "oneway")]

    def test_crashed_node_ignores_messages(self):
        sim, net, a, b = self._cluster()
        seen = []
        b.on(str, lambda src, m: seen.append(m))
        b.crash()
        a.send("b", "x")
        sim.run()
        assert seen == []

    def test_crashed_node_request_fails_fast(self):
        sim, net, a, b = self._cluster()
        a.crash()
        f = a.request("b", Ping("hi"))
        assert f.done
        with pytest.raises(RpcTimeout):
            f.result()

    def test_restart_hook_called(self):
        sim = Simulator()
        net = SimNetwork(sim)
        calls = []

        class N(Node):
            def on_restart(self):
                calls.append(self.sim.now)

        n = N("n", sim, net)
        n.crash()
        n.restart()
        assert calls == [0.0]
        assert n.alive

    def test_timers_cancelled_on_crash(self):
        sim, net, a, b = self._cluster()
        fired = []
        a.set_timer(1.0, fired.append, "t")
        a.crash()
        sim.run()
        assert fired == []

    def test_restart_does_not_resurrect_old_timers(self):
        sim, net, a, b = self._cluster()
        fired = []
        a.set_timer(1.0, fired.append, "old")
        a.crash()
        a.restart()
        sim.run()
        assert fired == []

    def test_no_handler_raises_rpc_error_to_caller(self):
        sim, net, a, b = self._cluster()
        f = a.request("b", 3.14)  # no float handler registered
        sim.run()
        with pytest.raises(RpcError):
            f.result()

    def test_shutdown_unregisters(self):
        sim, net, a, b = self._cluster()
        b.shutdown()
        assert "b" not in net.addresses()

    def test_crash_fails_pending_rpc_futures(self):
        # A crashing caller must fail its in-flight RPCs immediately, not
        # leave them dangling until the timeout timer (which it cancelled).
        sim, net, a, b = self._cluster()
        f = a.request("b", Slow(5.0), timeout=30.0)
        sim.run_for(0.05)
        assert not f.done
        a.crash()
        assert f.done
        with pytest.raises(RpcTimeout):
            f.result()
        assert not a._pending_rpcs

    def test_fired_timers_are_pruned(self):
        sim, net, a, b = self._cluster()
        for i in range(300):
            a.set_timer(0.001 * (i + 1), lambda: None)
        sim.run_for(1.0)
        # All 300 have fired; the next set_timer crosses the prune
        # threshold and must drop them rather than keep them forever.
        assert len(a._timers) > 256
        a.set_timer(1.0, lambda: None)
        assert len(a._timers) == 1

"""Tests for the durable-write (fsync) latency model."""

import pytest

from repro.consensus import Command, PaxosConfig
from repro.consensus.harness import build_cluster
from repro.sim import ConstantLatency, SimNetwork, Simulator


def commit_latency(disk: float, n_ops: int = 20, seed: int = 3) -> float:
    config = PaxosConfig(
        heartbeat_interval=0.1,
        election_timeout=0.5,
        lease_duration=0.35,
        retry_interval=0.3,
        disk_write_latency=disk,
    )
    sim = Simulator(seed=seed)
    net = SimNetwork(sim, latency=ConstantLatency(0.005))
    hosts = build_cluster(sim, net, n=3, config=config)
    sim.run_for(1.5)
    latencies = []
    for i in range(n_ops):
        start = sim.now
        f = hosts[0].propose(Command.app(i))
        stamp = {}
        f.add_callback(lambda _f: stamp.setdefault("t", sim.now))
        sim.run_for(1.0)
        assert f.exception is None
        latencies.append(stamp["t"] - start)
    return sum(latencies) / len(latencies)


class TestDiskLatency:
    def test_sync_commit_pays_the_fsync(self):
        fast = commit_latency(disk=0.0)
        slow = commit_latency(disk=0.004)
        # One durable write sits on the commit path (acceptor side).
        assert slow > fast + 0.003

    def test_latency_scales_with_disk_cost(self):
        a = commit_latency(disk=0.002)
        b = commit_latency(disk=0.010)
        assert b > a + 0.006

    def test_correctness_unaffected(self):
        config = PaxosConfig(
            heartbeat_interval=0.1,
            election_timeout=0.5,
            lease_duration=0.35,
            disk_write_latency=0.003,
        )
        sim = Simulator(seed=4)
        net = SimNetwork(sim, latency=ConstantLatency(0.005))
        hosts = build_cluster(sim, net, n=3, config=config)
        sim.run_for(1.5)
        futures = [hosts[0].propose(Command.app(i)) for i in range(15)]
        sim.run_for(5.0)
        assert all(f.result() == i for i, f in enumerate(futures))
        for host in hosts:
            payloads = [c.payload for _s, c in host.applied if c.kind == "app"]
            assert payloads == list(range(15))

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.harness.experiments import ALL_EXPERIMENTS, EXPERIMENT_TITLES


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1", "E2"])
        assert args.experiments == ["E1", "E2"]
        assert not args.full

    def test_churn_options(self):
        args = build_parser().parse_args(
            ["churn", "--backend", "chord", "--lifetime", "50", "--nodes", "12"]
        )
        assert args.backend == "chord"
        assert args.lifetime == 50.0


class TestCommands:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_EXPERIMENTS:
            assert name in out

    def test_every_experiment_has_a_title(self):
        assert set(EXPERIMENT_TITLES) == set(ALL_EXPERIMENTS)

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "E99"]) == 2

    def test_run_executes_experiment(self, capsys):
        assert main(["run", "e12"]) == 0
        out = capsys.readouterr().out
        assert "coordinator death" in out

    def test_churn_command_reports_metrics(self, capsys):
        code = main(
            ["churn", "--lifetime", "0", "--duration", "10", "--nodes", "10", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "violations:    0" in out

"""Tests for repro.obs: spans, metrics, trace export, and the guarantee
that tracing never perturbs a simulation."""

import io
import json
from pathlib import Path

import pytest

from repro.harness.builders import DeploymentParams, build_scatter_deployment
from repro.harness.experiments import ALL_EXPERIMENTS, run_traced
from repro.harness.results import ExperimentResult
from repro.obs import (
    ALL_SPAN_KINDS,
    Histogram,
    MetricsRegistry,
    Tracer,
    clear_tracer,
    current_tracer,
    install_tracer,
    render_breakdown,
    tracing,
    write_jsonl,
)
from repro.obs.export import dump_jsonl
from repro.sim.loop import Simulator
from repro.workloads import UniformKeys
from repro.workloads.driver import ClosedLoopWorkload

REPO_ROOT = Path(__file__).resolve().parents[1]


# ---------------------------------------------------------------------------
# Helpers: one small deployment run, with or without tracing
# ---------------------------------------------------------------------------
def _drive(seed: int, drop_prob: float = 0.0):
    """Run a small deployment + workload; return (deployment, fingerprint)."""
    params = DeploymentParams(
        n_nodes=9, n_groups=3, n_clients=2, seed=seed, drop_prob=drop_prob
    )
    deployment = build_scatter_deployment(params)
    workload = ClosedLoopWorkload(
        deployment.sim, deployment.clients, UniformKeys(20), read_fraction=0.5
    )
    workload.start()
    deployment.sim.run_for(10.0)
    workload.stop()
    deployment.sim.run_for(1.0)
    records = workload.all_records()
    fingerprint = (
        deployment.sim.events_processed,
        deployment.net.stats.sent,
        deployment.net.stats.delivered,
        [
            (r.op, r.key, round(r.invoke_time, 9), round(r.response_time, 9), r.hops, r.attempts)
            for r in records
        ],
    )
    return deployment, fingerprint


def _traced_drive(seed: int, drop_prob: float = 0.0):
    tracer = Tracer()
    with tracing(tracer):
        deployment, fingerprint = _drive(seed, drop_prob=drop_prob)
    return deployment, fingerprint, tracer


def _jsonl_bytes(tracer: Tracer) -> str:
    out = io.StringIO()
    dump_jsonl(tracer, out)
    return out.getvalue()


# ---------------------------------------------------------------------------
# Tracer primitives
# ---------------------------------------------------------------------------
class TestTracer:
    def test_span_records_virtual_time(self):
        sim = Simulator(seed=1)
        tracer = Tracer()
        tracer.bind(sim)
        sim.schedule(2.5, lambda: None)
        span = tracer.begin("client.op", op="get")
        sim.run()
        tracer.finish(span, ok=True)
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5
        assert not span.open
        assert span.attrs == {"op": "get", "ok": True}

    def test_parent_links_and_children(self):
        tracer = Tracer()
        parent = tracer.begin("txn.op")
        child_a = tracer.begin("txn.prepare", parent=parent)
        child_b = tracer.begin("txn.commit", parent=parent)
        other = tracer.begin("txn.op")
        assert child_a.parent_id == parent.span_id
        assert tracer.children_of(parent) == [child_a, child_b]
        assert tracer.children_of(other) == []
        assert [s.span_id for s in tracer.spans] == [1, 2, 3, 4]

    def test_open_span_accounting(self):
        tracer = Tracer()
        a = tracer.begin("paxos.slot")
        b = tracer.begin("paxos.slot")
        assert tracer.open_spans == 2
        assert a.open and b.open
        assert a.duration != a.duration  # NaN while open
        tracer.finish(a)
        assert tracer.open_spans == 1

    def test_double_finish_raises(self):
        tracer = Tracer()
        span = tracer.begin("client.op")
        tracer.finish(span)
        with pytest.raises(RuntimeError):
            tracer.finish(span)

    def test_rebinding_bumps_run_index(self):
        tracer = Tracer()
        assert tracer.now == 0.0  # unbound clock
        tracer.bind(Simulator(seed=1))
        first = tracer.begin("client.op")
        tracer.bind(Simulator(seed=2))
        second = tracer.begin("client.op")
        assert (first.run, second.run) == (0, 1)


class TestMetrics:
    def test_counters(self):
        m = MetricsRegistry()
        m.inc("net.sent")
        m.inc("net.sent", 4)
        assert m.counter("net.sent") == 5
        assert m.counter("never.touched") == 0
        assert m.ratio("net.sent", "never.touched") != m.ratio(
            "net.sent", "never.touched"
        )  # NaN on a zero denominator

    def test_histogram_summary(self):
        m = MetricsRegistry()
        for v in [1.0, 2.0, 3.0, 4.0]:
            m.observe("client.hops", v)
        hist = m.histogram("client.hops")
        assert hist.count == 4
        assert hist.mean == 2.5
        assert hist.percentile(50) == 2.5
        assert hist.max == 4.0
        summary = hist.summary()
        assert summary["count"] == 4 and summary["p99"] == pytest.approx(3.97)

    def test_histogram_sample_cap_keeps_exact_count(self):
        hist = Histogram(max_samples=10)
        for v in range(100):
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.total == sum(range(100))
        assert len(hist.values) == 10
        assert hist.max == 99.0


class TestRuntime:
    def test_install_and_clear(self):
        tracer = Tracer()
        install_tracer(tracer)
        try:
            assert current_tracer() is tracer
            assert Simulator(seed=1).tracer is tracer
        finally:
            clear_tracer()
        assert current_tracer() is None
        assert Simulator(seed=1).tracer is None

    def test_tracing_context_restores_previous(self):
        outer, inner = Tracer(), Tracer()
        with tracing(outer):
            with tracing(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is None


# ---------------------------------------------------------------------------
# Integration: tracing a real deployment
# ---------------------------------------------------------------------------
class TestTracedDeployment:
    def test_trace_is_deterministic_across_identical_seeds(self):
        _dep_a, _fp_a, tracer_a = _traced_drive(seed=7)
        _dep_b, _fp_b, tracer_b = _traced_drive(seed=7)
        assert _jsonl_bytes(tracer_a) == _jsonl_bytes(tracer_b)

    def test_tracing_does_not_perturb_the_simulation(self):
        # The same seed must produce byte-identical workload histories and
        # event counts whether a tracer is installed or not.
        _dep_plain, fp_plain = _drive(seed=7)
        _dep_traced, fp_traced, _tracer = _traced_drive(seed=7)
        clear_tracer()  # belt and braces: "absent" rerun below is untraced
        _dep_absent, fp_absent = _drive(seed=7)
        assert fp_traced == fp_plain
        assert fp_absent == fp_plain

    def test_net_counters_match_network_stats(self):
        deployment, _fp, tracer = _traced_drive(seed=7, drop_prob=0.02)
        stats = deployment.net.stats
        m = tracer.metrics
        assert m.counter("net.sent") == stats.sent
        assert m.counter("net.delivered") == stats.delivered
        assert m.counter("net.dropped") == stats.dropped
        assert m.counter("net.to_dead") == stats.to_dead
        assert m.counter("net.duplicated") == stats.duplicated
        by_type_total = sum(
            count for name, count in m.counters.items() if name.startswith("net.msg.")
        )
        assert by_type_total == stats.sent

    def test_emitted_span_kinds_are_in_the_taxonomy(self):
        _dep, _fp, tracer = _traced_drive(seed=7)
        emitted = {span.kind for span in tracer.spans}
        assert emitted  # a live deployment must produce spans
        assert emitted <= set(ALL_SPAN_KINDS)

    def test_sim_events_counter_matches_events_processed(self):
        deployment, _fp, tracer = _traced_drive(seed=7)
        assert tracer.metrics.counter("sim.events") == deployment.sim.events_processed

    def test_client_op_spans_close_with_routing_attrs(self):
        _dep, _fp, tracer = _traced_drive(seed=7)
        op_spans = tracer.spans_of("client.op")
        assert op_spans
        for span in op_spans:
            assert not span.open
            assert span.attrs["hops"] >= 0
            assert span.attrs["attempts"] >= span.attrs["hops"]
        hops = tracer.metrics.histogram("client.hops")
        assert hops is not None and hops.count == len(op_spans)


class TestExport:
    def test_jsonl_lines_parse_and_cover_all_record_types(self, tmp_path):
        _dep, _fp, tracer = _traced_drive(seed=7)
        path = tmp_path / "trace.jsonl"
        lines = write_jsonl(tracer, str(path))
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(parsed) == lines == len(tracer.spans) + len(
            tracer.metrics.counters
        ) + len(tracer.metrics.histograms)
        kinds = {record["type"] for record in parsed}
        assert kinds == {"span", "counter", "hist"}
        span_records = [r for r in parsed if r["type"] == "span"]
        assert [r["id"] for r in span_records] == sorted(r["id"] for r in span_records)

    def test_breakdown_renders_every_section(self):
        _dep, _fp, tracer = _traced_drive(seed=7)
        text = render_breakdown(tracer)
        for heading in (
            "client operations",
            "network",
            "paxos",
            "group operations",
            "simulator",
        ):
            assert heading in text
        assert "hops/op" in text
        assert "events processed" in text

    def test_breakdown_handles_empty_tracer(self):
        text = render_breakdown(Tracer())
        assert "no client ops" in text


# ---------------------------------------------------------------------------
# Documentation and CLI contracts
# ---------------------------------------------------------------------------
class TestDocumentation:
    def test_every_span_kind_is_documented(self):
        doc = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text()
        for kind in ALL_SPAN_KINDS:
            assert f"`{kind}`" in doc, f"span kind {kind} missing from OBSERVABILITY.md"


def _fake_experiment(quick=True, seed=None):
    """A registry-shaped experiment small enough for a CLI test."""
    _deployment, _fp = _drive(seed=seed if seed is not None else 3)
    result = ExperimentResult(
        experiment="E99", title="fake", columns=["x"], rows=[{"x": 1}]
    )
    return result


class TestCli:
    def test_trace_command_writes_jsonl_and_prints_breakdown(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        monkeypatch.setitem(ALL_EXPERIMENTS, "E99", _fake_experiment)
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "e99", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "Per-phase cost attribution" in printed
        assert out.exists()
        first = json.loads(out.read_text().splitlines()[0])
        assert first["type"] in ("span", "counter", "hist")

    def test_trace_rejects_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["trace", "E1234"]) == 2

    def test_run_traced_matches_untraced_result(self):
        from repro.harness.experiments import run_e05

        traced, tracer = run_traced("E5", quick=True, seed=2)
        plain = run_e05(quick=True, seed=2)
        assert traced.rows == plain.rows
        assert tracer.spans  # E5 performs group operations, so spans exist

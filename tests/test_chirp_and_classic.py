"""Tests for the Chirp application and the classic-2PC strawman."""

import pytest

from repro.txn.classic import ClassicCoordinator, ClassicParticipant
from repro.sim import ConstantLatency, SimNetwork, Simulator
from repro.workloads.chirp import ChirpService, ChirpWorkload

from test_scatter_basic import build, make_client


class TestChirpOnScatter:
    def _service(self):
        sim, net, system = build()
        client = make_client(sim, net, system)
        return sim, ChirpService(sim, client)

    def test_post_and_fetch(self):
        sim, service = self._service()
        service.follow("alice", "bob")
        sim.run_for(4.0)
        service.post("bob", "hello world")
        sim.run_for(4.0)
        f = service.fetch_timeline("alice")
        sim.run_for(4.0)
        timeline = f.result()
        assert len(timeline) == 1
        assert timeline[0][0] == "bob"
        assert timeline[0][1][1] == "hello world"

    def test_multiple_posts_timeline_ordering(self):
        sim, service = self._service()
        # Follows are read-modify-write on one key: issue sequentially,
        # as each user's own loop does.
        service.follow("alice", "bob")
        sim.run_for(4.0)
        service.follow("alice", "carol")
        sim.run_for(4.0)
        service.post("bob", "first")
        sim.run_for(2.0)
        service.post("carol", "second")
        sim.run_for(2.0)
        f = service.fetch_timeline("alice")
        sim.run_for(4.0)
        timeline = f.result()
        assert [t[1][1] for t in timeline] == ["first", "second"]

    def test_per_user_limit(self):
        sim, service = self._service()
        service.follow("a", "b")
        sim.run_for(4.0)
        for i in range(4):
            service.post("b", f"msg{i}")
            sim.run_for(2.0)
        f = service.fetch_timeline("a", per_user=2)
        sim.run_for(4.0)
        assert [t[1][1] for t in f.result()] == ["msg2", "msg3"]

    def test_empty_timeline(self):
        sim, service = self._service()
        f = service.fetch_timeline("loner")
        sim.run_for(4.0)
        assert f.result() == []

    def test_workload_generates_traffic(self):
        sim, net, system = build()
        clients = [make_client(sim, net, system, f"cw{i}") for i in range(3)]
        workload = ChirpWorkload(sim, clients, n_users=8, follows_per_user=3, think_time=0.3)
        setup = workload.setup()
        sim.run_for(15.0)
        assert setup.done and setup.exception is None
        workload.start()
        sim.run_for(20.0)
        workload.stop()
        stats = workload.combined_stats()
        assert stats.fetches > 10
        assert stats.posts >= 1
        assert stats.fetch_latencies


class TestClassic2PC:
    def _cluster(self, n=3):
        sim = Simulator(seed=0)
        net = SimNetwork(sim, latency=ConstantLatency(0.005))
        coordinator = ClassicCoordinator("coord", sim, net)
        participants = [ClassicParticipant(f"p{i}", sim, net) for i in range(n)]
        return sim, net, coordinator, participants

    def test_commit_when_all_vote_yes(self):
        sim, net, coord, parts = self._cluster()
        f = coord.run_txn("t1", [p.node_id for p in parts])
        sim.run_for(2.0)
        assert f.result() == "committed"
        assert all("t1" in p.committed for p in parts)
        assert all(p.locked_txn is None for p in parts)

    def test_abort_when_participant_locked(self):
        sim, net, coord, parts = self._cluster()
        parts[1].locked_txn = "other"
        parts[1].lock_acquired_at = 0.0
        f = coord.run_txn("t2", [p.node_id for p in parts])
        sim.run_for(2.0)
        assert f.result() == "aborted"
        assert "t2" in parts[0].aborted

    def test_abort_on_dead_participant(self):
        sim, net, coord, parts = self._cluster()
        parts[2].crash()
        f = coord.run_txn("t3", [p.node_id for p in parts])
        sim.run_for(3.0)
        assert f.result() == "aborted"

    def test_coordinator_death_blocks_participants_forever(self):
        """The blocking failure Scatter's design removes."""
        sim, net, coord, parts = self._cluster()
        coord.run_txn("t4", [p.node_id for p in parts])
        # Kill the coordinator right after the votes are cast but before
        # the decision goes out: one latency unit after prepare arrives.
        sim.run_for(0.008)
        coord.crash()
        sim.run_for(60.0)
        blocked = [p for p in parts if p.locked_txn == "t4"]
        assert blocked, "participants should be stuck holding locks"
        assert all(p.blocked_for > 59.0 for p in blocked)

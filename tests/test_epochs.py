"""Tests for epoch-based routing-cache freshness."""

import pytest

from repro.dht.ring import KeyRange
from repro.group.info import GroupInfo

from test_scatter_basic import build, make_client


def info(gid, epoch, lo=0, hi=100, leader="x"):
    return GroupInfo(gid=gid, range=KeyRange(lo, hi), members=(leader,), leader_hint=leader, epoch=epoch)


class TestNodeCacheFreshness:
    def test_newer_epoch_overwrites(self):
        sim, net, system = build()
        node = next(iter(system.nodes.values()))
        node.learn(info("gx", epoch=1, leader="old"))
        node.learn(info("gx", epoch=2, leader="new"))
        assert node.cache["gx"].leader_hint == "new"

    def test_stale_epoch_rejected(self):
        sim, net, system = build()
        node = next(iter(system.nodes.values()))
        node.learn(info("gx", epoch=5, leader="fresh"))
        node.learn(info("gx", epoch=2, leader="stale"))
        assert node.cache["gx"].leader_hint == "fresh"

    def test_equal_epoch_takes_latest(self):
        sim, net, system = build()
        node = next(iter(system.nodes.values()))
        node.learn(info("gx", epoch=3, leader="a"))
        node.learn(info("gx", epoch=3, leader="b"))
        assert node.cache["gx"].leader_hint == "b"


class TestClientCacheFreshness:
    def test_stale_epoch_rejected(self):
        sim, net, system = build()
        client = make_client(sim, net, system)
        client._learn(info("gx", epoch=9, leader="fresh"))
        client._learn(info("gx", epoch=1, leader="stale"))
        assert client.cache["gx"].leader_hint == "fresh"


class TestEpochAdvances:
    def test_config_change_bumps_epoch(self):
        sim, net, system = build(n_nodes=6, n_groups=2)
        gid = "g0"
        leader = system.leader_of(gid)
        e0 = leader.epoch
        victim = [m for m in leader.members if m != leader.paxos.replica_id][0]
        system.kill_node(victim)
        sim.run_for(12.0)
        leader = system.leader_of(gid)
        assert leader.epoch > e0

    def test_repartition_bumps_epoch(self):
        from test_group_ops import build_manual

        sim, net, system = build_manual(n_nodes=6, n_groups=2)
        g0 = system.leader_of("g0")
        e0 = g0.epoch
        boundary = g0.range.hi - g0.range.size() // 4
        fut = g0.host.start_repartition(g0, boundary)
        sim.run_for(10.0)
        assert fut.result() == "committed"
        assert system.leader_of("g0").epoch > e0

"""Zero-perturbation guards for message pooling / direct-dispatch delivery.

The pooled send path (7-slot direct-dispatch heap entries recycled
through ``Simulator._msg_pool``) must be *invisible*: pooling on vs off
must produce byte-identical results for any seeded run, a recycled
entry must never leak state between messages, and every mutation that
could invalidate a baked-in handler (faults, unregister, handler
replacement) must de-optimize in-flight entries back to fully-checked
deliveries.
"""

from __future__ import annotations

import pytest

from repro.harness.builders import DeploymentParams, build_scatter_deployment
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.workloads import UniformKeys
from repro.workloads.driver import ClosedLoopWorkload


def _pooling_off(monkeypatch) -> None:
    """Build every subsequent SimNetwork with ``pooling=False``.

    Experiments and deployment builders construct their networks
    internally; forcing the constructor default is the honest A/B —
    the exact same code paths run, only the pooled complex is off.
    """
    original = SimNetwork.__init__

    def patched(self, sim, latency=None, drop_prob=0.0, dup_prob=0.0, pooling=True):
        original(self, sim, latency=latency, drop_prob=drop_prob,
                 dup_prob=dup_prob, pooling=False)

    monkeypatch.setattr(SimNetwork, "__init__", patched)


def _deployment_fingerprint(seed: int):
    """(events, sends, op history) for a short fault-free seeded run."""
    params = DeploymentParams(n_nodes=15, n_groups=5, n_clients=3, seed=seed)
    deployment = build_scatter_deployment(params)
    sim = deployment.sim
    workload = ClosedLoopWorkload(
        sim, deployment.clients, UniformKeys(40), read_fraction=0.5
    )
    workload.start()
    sim.run_for(15.0)
    workload.stop()
    sim.run_for(1.0)
    history = tuple(
        (r.op, r.key, round(r.invoke_time, 9), round(r.response_time, 9))
        for r in workload.all_records()
    )
    return sim.events_processed, deployment.net.stats.sent, history


class TestPoolingZeroPerturbation:
    """Pooling on vs off: same seed => byte-identical observable run."""

    def test_deployment_fingerprints_match(self, monkeypatch):
        pooled = _deployment_fingerprint(21)
        _pooling_off(monkeypatch)
        assert _deployment_fingerprint(21) == pooled


@pytest.mark.slow
@pytest.mark.parametrize("name", ["E1", "E2", "E3", "E4", "E5"])
def test_experiment_tables_identical_with_pooling_off(name, monkeypatch):
    """E1-E5 quick mode: pooling off reproduces the pooled tables byte-for-byte."""
    pooled = ALL_EXPERIMENTS[name](quick=True).table()
    _pooling_off(monkeypatch)
    unpooled = ALL_EXPERIMENTS[name](quick=True).table()
    assert unpooled == pooled


class TestPooledEntryHygiene:
    """A recycled delivery entry must never leak state between messages."""

    def test_mutating_a_delivered_message_cannot_corrupt_a_later_send(self):
        sim = Simulator(seed=1)
        net = SimNetwork(sim, latency=ConstantLatency(0.001))
        got: list = []
        net.register("dst", lambda src, msg: got.append(msg))
        assert net._fast, "fault-free pooled network should be on the fast path"

        msg_a = {"op": "put", "payload": [1, 2, 3]}
        net.send("src", "dst", msg_a)
        sim.run()
        assert got == [msg_a]
        # The delivery entry is back in the pool with its message slots
        # cleared — the pool holds no reference that mutation could reach.
        assert len(sim._msg_pool) == 1
        pooled = sim._msg_pool[0]
        assert pooled[3][0] is None and pooled[3][1] is None

        # Sender mutates the delivered message afterwards (a buggy or
        # merely frugal caller).  The next send reuses the pooled entry.
        msg_a["payload"].append(999)
        msg_a["op"] = "corrupted"
        msg_b = {"op": "get"}
        net.send("src", "dst", msg_b)
        sim.run()
        assert len(got) == 2
        assert got[1] is msg_b, "recycled entry must carry the new message only"
        assert got[1] == {"op": "get"}

    def test_pool_is_bounded(self):
        from repro.sim.loop import _MSG_POOL_CAP

        sim = Simulator(seed=2)
        net = SimNetwork(sim, latency=ConstantLatency(0.001))
        net.register("dst", lambda src, msg: None)
        for i in range(_MSG_POOL_CAP + 500):
            net.send("src", "dst", i)
        sim.run()
        assert len(sim._msg_pool) <= _MSG_POOL_CAP


class TestInFlightDeoptimization:
    """Mutations between send and delivery must re-enable full checks."""

    def _fast_net(self):
        sim = Simulator(seed=3)
        net = SimNetwork(sim, latency=ConstantLatency(0.01))
        got: list = []
        net.register("dst", lambda src, msg: got.append(("orig", msg)))
        assert net._fast
        return sim, net, got

    def test_destination_crash_in_flight_counts_to_dead(self):
        sim, net, got = self._fast_net()
        net.send("src", "dst", "m1")
        assert any(len(e) == 7 for e in sim._queue._heap)
        net.set_down("dst")
        # The fault de-optimized the in-flight direct entry in place.
        assert all(len(e) == 4 for e in sim._queue._heap)
        sim.run()
        assert got == []
        assert net.stats.to_dead == 1
        assert net.stats.delivered == 0

    def test_unregister_in_flight_counts_to_dead(self):
        sim, net, got = self._fast_net()
        net.send("src", "dst", "m1")
        net.unregister("dst")
        assert all(len(e) == 4 for e in sim._queue._heap)
        sim.run()
        assert got == []
        assert net.stats.to_dead == 1

    def test_handler_replacement_in_flight_delivers_to_new_handler(self):
        sim, net, got = self._fast_net()
        net.send("src", "dst", "m1")
        net.register("dst", lambda src, msg: got.append(("new", msg)))
        sim.run()
        assert got == [("new", "m1")]
        assert net.stats.delivered == 1

    def test_block_in_flight_drops_at_delivery(self):
        sim, net, got = self._fast_net()
        net.send("src", "dst", "m1")
        net.block("src", "dst")
        sim.run()
        assert got == []
        assert net.stats.dropped == 1

    def test_heal_after_deopt_still_delivers(self):
        sim, net, got = self._fast_net()
        net.send("src", "dst", "m1")
        net.block("a", "b")  # unrelated fault forces de-opt
        net.unblock("a", "b")  # healed before delivery
        sim.run()
        assert got == [("orig", "m1")]
        assert net.stats.delivered == 1

"""Tests for the repro.perf subsystem (microbenchmarks, profile, emitter)."""

import json

import pytest

from repro.cli import main
from repro.perf.microbench import (
    attach_baseline,
    compare_benchmarks,
    load_bench_file,
    render_report,
    run_microbenchmarks,
    write_bench_file,
)
from repro.perf.profile import profile_experiment

BENCH_NAMES = {
    "event_throughput",
    "event_throughput_handles",
    "net_send_deliver",
    "net_send_deliver_faulty",
    "pooled_send_deliver",
    "ring_lookup_10k",
    "e2e_scatter_ops",
    "write_path_saturation",
}


@pytest.fixture(scope="module")
def quick_report():
    return run_microbenchmarks(quick=True, repeat=1)


class TestMicrobenchmarks:
    def test_all_benchmarks_present_and_positive(self, quick_report):
        by_name = {b["name"]: b for b in quick_report["benchmarks"]}
        assert set(by_name) == BENCH_NAMES
        for bench in by_name.values():
            assert bench["value"] > 0
            assert bench["wall_s"] > 0
            assert bench["units_completed"] > 0
            assert bench["metric"] in ("events_per_s", "msgs_per_s", "lookups_per_s")

    def test_e2e_reports_ops(self, quick_report):
        e2e = next(b for b in quick_report["benchmarks"] if b["name"] == "e2e_scatter_ops")
        assert e2e["ops_completed"] > 0
        assert e2e["ops_per_s"] > 0

    def test_scaleout_benches_record_ab_ratios(self, quick_report):
        """The scale-out benches time both sides of their A/B in one run."""
        by_name = {b["name"]: b for b in quick_report["benchmarks"]}
        assert by_name["pooled_send_deliver"]["speedup_vs_unpooled"] > 1.0
        assert by_name["pooled_send_deliver"]["unpooled_msgs_per_s"] > 0
        assert by_name["ring_lookup_10k"]["speedup_vs_linear"] > 1.5
        assert by_name["ring_lookup_10k"]["groups"] > 0

    def test_render_report(self, quick_report):
        text = render_report(quick_report)
        for name in BENCH_NAMES:
            assert name in text


class TestBenchFile:
    def test_write_load_roundtrip(self, quick_report, tmp_path):
        path = tmp_path / "BENCH_SIM.json"
        write_bench_file(quick_report, str(path))
        assert load_bench_file(str(path)) == json.loads(json.dumps(quick_report))

    def test_compare_benchmarks_ratio(self, quick_report):
        old = json.loads(json.dumps(quick_report))
        for bench in old["benchmarks"]:
            bench["value"] = bench["value"] / 2
        rows = compare_benchmarks(old, quick_report)
        assert {r["name"] for r in rows} == BENCH_NAMES
        for row in rows:
            assert row["ratio"] == pytest.approx(2.0, rel=0.01)

    def test_compare_skips_mismatched_workloads(self, quick_report):
        old = json.loads(json.dumps(quick_report))
        old["quick"] = not old["quick"]
        rows = compare_benchmarks(old, quick_report)
        assert all(r["ratio"] is None for r in rows)

    def test_compare_handles_missing_benchmark(self, quick_report):
        old = json.loads(json.dumps(quick_report))
        old["benchmarks"] = [b for b in old["benchmarks"] if b["name"] != "event_throughput"]
        rows = compare_benchmarks(old, quick_report)
        by_name = {r["name"]: r for r in rows}
        assert by_name["event_throughput"]["ratio"] is None
        assert by_name["event_throughput"]["old"] is None

    def test_attach_baseline_speedups(self, quick_report):
        report = json.loads(json.dumps(quick_report))
        half = {b["name"]: b["value"] / 2 for b in report["benchmarks"]}
        attach_baseline(report, {"description": "test", "quick": True, "values": half})
        for bench in report["benchmarks"]:
            assert bench["speedup_vs_pre_pr"] == pytest.approx(2.0, rel=0.01)
        assert report["pre_pr_baseline"]["description"] == "test"

    def test_attach_baseline_skips_mismatched_workloads(self, quick_report):
        report = json.loads(json.dumps(quick_report))
        half = {b["name"]: b["value"] / 2 for b in report["benchmarks"]}
        attach_baseline(report, {"description": "test", "quick": False, "values": half})
        assert all("speedup_vs_pre_pr" not in b for b in report["benchmarks"])
        # The reference still rides along for later full-workload runs.
        assert "pre_pr_baseline" in report


class TestProfile:
    def test_profile_runs_experiment_and_reports_frames(self):
        result, stats_text = profile_experiment("e7", quick=True, sort="tottime", top=5)
        assert result.experiment == "E7"
        assert result.rows
        assert "function calls" in stats_text

    def test_profile_unknown_experiment(self):
        with pytest.raises(KeyError):
            profile_experiment("E99")

    def test_profile_bad_sort(self):
        with pytest.raises(ValueError):
            profile_experiment("E7", sort="nonsense")


class TestPerfCli:
    def test_perf_writes_json(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        assert main(["perf", "--quick", "--repeat", "1", "--json", str(path)]) == 0
        report = load_bench_file(str(path))
        assert {b["name"] for b in report["benchmarks"]} == BENCH_NAMES
        assert "event_throughput" in capsys.readouterr().out

    def test_perf_fail_below_flags_regression(self, tmp_path):
        path = tmp_path / "bench.json"
        report = run_microbenchmarks(quick=True, repeat=1)
        for bench in report["benchmarks"]:
            bench["value"] = bench["value"] * 1000  # impossible bar
        write_bench_file(report, str(path))
        rc = main(["perf", "--quick", "--repeat", "1",
                   "--json", str(path), "--fail-below", "0.6"])
        assert rc == 1

    def test_perf_carries_baseline_forward(self, tmp_path):
        path = tmp_path / "bench.json"
        report = run_microbenchmarks(quick=True, repeat=1)
        attach_baseline(
            report,
            {"description": "ref", "quick": True,
             "values": {b["name"]: b["value"] for b in report["benchmarks"]}},
        )
        write_bench_file(report, str(path))
        assert main(["perf", "--quick", "--repeat", "1", "--json", str(path)]) == 0
        rewritten = load_bench_file(str(path))
        assert rewritten["pre_pr_baseline"]["description"] == "ref"

    def test_profile_cli(self, capsys):
        assert main(["profile", "E7", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "E7" in out
        assert "function calls" in out

    def test_profile_cli_unknown(self, capsys):
        assert main(["profile", "E99"]) == 2

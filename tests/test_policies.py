"""Unit tests for ScatterPolicy decisions."""

import random
from collections import Counter

import pytest

from repro.dht.ring import KEY_SPACE, KeyRange
from repro.group.info import GroupInfo
from repro.policies import ScatterPolicy
from repro.policies.policy import _load_median


def info(gid, lo, hi, members):
    return GroupInfo(gid=gid, range=KeyRange(lo, hi), members=tuple(members), leader_hint=members[0])


class FakeGroup:
    """Just enough of GroupReplica for policy decisions."""

    def __init__(self, members, lo=0, hi=1000, load=None, leader="n0"):
        self.members = list(members)
        self.range = KeyRange(lo, hi)
        self.load = Counter(load or {})

        class P:
            replica_id = leader

        self.paxos = P()


class TestValidation:
    def test_bad_thresholds(self):
        with pytest.raises(ValueError):
            ScatterPolicy(split_size=3, merge_size=3)

    def test_bad_modes(self):
        with pytest.raises(ValueError):
            ScatterPolicy(join_mode="nearest")
        with pytest.raises(ValueError):
            ScatterPolicy(split_key_mode="random")
        with pytest.raises(ValueError):
            ScatterPolicy(leader_mode="alphabetical")


class TestJoinPlacement:
    CANDIDATES = [
        info("small", 0, 100, ["a", "b"]),
        info("big", 100, 300, ["c", "d", "e", "f"]),
        info("wide", 300, 0, ["g", "h", "i"]),
    ]

    def test_smallest_group(self):
        policy = ScatterPolicy(join_mode="smallest_group")
        assert policy.choose_join_target(self.CANDIDATES, random.Random(0)).gid == "small"

    def test_largest_range(self):
        policy = ScatterPolicy(join_mode="largest_range")
        assert policy.choose_join_target(self.CANDIDATES, random.Random(0)).gid == "wide"

    def test_random_covers_all(self):
        policy = ScatterPolicy(join_mode="random")
        rng = random.Random(1)
        chosen = {policy.choose_join_target(self.CANDIDATES, rng).gid for _ in range(50)}
        assert chosen == {"small", "big", "wide"}

    def test_empty_candidates(self):
        assert ScatterPolicy().choose_join_target([], random.Random(0)) is None


class TestSizing:
    def test_split_and_merge_thresholds(self):
        policy = ScatterPolicy(target_size=5, split_size=9, merge_size=3)
        assert policy.wants_split(FakeGroup(members=list("abcdefghi")))
        assert not policy.wants_split(FakeGroup(members=list("abcde")))
        assert policy.wants_merge(FakeGroup(members=list("abc")))
        assert not policy.wants_merge(FakeGroup(members=list("abcd")))

    def test_partition_members_covers_all(self):
        policy = ScatterPolicy()
        members = [f"n{i}" for i in range(7)]
        left, right = policy.partition_members(members, random.Random(2))
        assert sorted(left + right) == sorted(members)
        assert abs(len(left) - len(right)) <= 1
        assert not set(left) & set(right)


class TestSplitKey:
    def test_midpoint_mode(self):
        policy = ScatterPolicy(split_key_mode="midpoint")
        g = FakeGroup(members=["a"], lo=100, hi=300, load={150: 100})
        assert policy.choose_split_key(g) == 200

    def test_load_median_balances_load(self):
        policy = ScatterPolicy(split_key_mode="load_median")
        # All load near the start: the median key sits early in the range.
        g = FakeGroup(members=["a"], lo=0, hi=1000, load={10: 50, 20: 50, 900: 2})
        key = policy.choose_split_key(g)
        assert key in (10, 20)

    def test_load_median_falls_back_without_signal(self):
        policy = ScatterPolicy(split_key_mode="load_median")
        g = FakeGroup(members=["a"], lo=0, hi=1000, load={5: 3})  # under threshold
        assert policy.choose_split_key(g) == 500

    def test_load_median_handles_wraparound(self):
        g = FakeGroup(members=["a"], lo=KEY_SPACE - 100, hi=100,
                      load={KEY_SPACE - 50: 30, 50: 30})
        key = _load_median(g)
        assert key is not None
        assert g.range.contains(key)

    def test_load_median_rejects_boundary_candidate(self):
        g = FakeGroup(members=["a"], lo=0, hi=1000, load={0: 100})
        assert _load_median(g) is None


class TestLeaderPlacement:
    def test_static_mode_never_moves(self):
        policy = ScatterPolicy(leader_mode="static")
        g = FakeGroup(members=["n0", "n1", "n2"])
        assert policy.choose_leader(g, lambda a, b: 1.0) is None

    def test_latency_mode_picks_quorum_optimum(self):
        policy = ScatterPolicy(leader_mode="latency")
        # n2 has two immediate neighbors at 1ms; n0 (current) is remote.
        lat = {
            ("n0", "n1"): 0.05, ("n0", "n2"): 0.05, ("n0", "n3"): 0.05, ("n0", "n4"): 0.05,
            ("n2", "n1"): 0.001, ("n2", "n3"): 0.001, ("n2", "n4"): 0.05, ("n2", "n0"): 0.05,
            ("n1", "n2"): 0.001, ("n1", "n3"): 0.03, ("n1", "n4"): 0.05, ("n1", "n0"): 0.05,
            ("n3", "n2"): 0.001, ("n3", "n1"): 0.03, ("n3", "n4"): 0.05, ("n3", "n0"): 0.05,
            ("n4", "n1"): 0.05, ("n4", "n2"): 0.05, ("n4", "n3"): 0.05, ("n4", "n0"): 0.05,
        }
        g = FakeGroup(members=["n0", "n1", "n2", "n3", "n4"], leader="n0")
        best = policy.choose_leader(g, lambda a, b: lat[(a, b)])
        assert best == "n2"

    def test_no_move_when_improvement_marginal(self):
        policy = ScatterPolicy(leader_mode="latency")
        g = FakeGroup(members=["n0", "n1", "n2"], leader="n0")
        # n1 is only 2% better than n0: stay put.
        lat = {
            ("n0", "n1"): 0.100, ("n0", "n2"): 0.100,
            ("n1", "n0"): 0.098, ("n1", "n2"): 0.098,
            ("n2", "n0"): 0.150, ("n2", "n1"): 0.150,
        }
        assert policy.choose_leader(g, lambda a, b: lat[(a, b)]) is None

    def test_single_member_group(self):
        policy = ScatterPolicy(leader_mode="latency")
        assert policy.choose_leader(FakeGroup(members=["n0"]), lambda a, b: 1.0) is None

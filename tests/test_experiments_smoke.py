"""Smoke sweep: every registered experiment runs in quick mode.

A thin well-formedness gate over the whole E1-E20 registry: each
experiment must return an :class:`ExperimentResult` with rows, columns
that cover the rows, and wall-clock perf populated by the harness
wrapper.  Marked slow — the sweep takes about half a minute and CI's
fast tier skips it.
"""

from __future__ import annotations

import math

import pytest

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.results import ExperimentResult

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_quick_mode_is_well_formed(name):
    result = ALL_EXPERIMENTS[name](quick=True)
    assert isinstance(result, ExperimentResult)
    assert result.experiment.lower() == name.lower()
    assert result.title
    assert result.rows, f"{name} produced no rows"
    assert result.columns, f"{name} declared no columns"
    for row in result.rows:
        unknown = set(row) - set(result.columns)
        assert not unknown, f"{name}: row keys {unknown} missing from columns"
        for key, value in row.items():
            if isinstance(value, float):
                assert not math.isnan(value), f"{name}: NaN in column {key}"
    assert "wall_s" in result.perf, f"{name}: perf.wall_s not stamped"
    assert result.perf["wall_s"] >= 0.0

"""Smoke sweep: every registered experiment runs in quick mode.

A thin well-formedness gate over the whole E1-E21 registry: each
experiment must return an :class:`ExperimentResult` with rows, columns
that cover the rows, and wall-clock perf populated by the harness
wrapper.  Marked slow — the sweep takes about half a minute and CI's
fast tier skips it.
"""

from __future__ import annotations

import math

import pytest

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.results import ExperimentResult

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_quick_mode_is_well_formed(name):
    result = ALL_EXPERIMENTS[name](quick=True)
    assert isinstance(result, ExperimentResult)
    assert result.experiment.lower() == name.lower()
    assert result.title
    assert result.rows, f"{name} produced no rows"
    assert result.columns, f"{name} declared no columns"
    for row in result.rows:
        unknown = set(row) - set(result.columns)
        assert not unknown, f"{name}: row keys {unknown} missing from columns"
        for key, value in row.items():
            if isinstance(value, float):
                assert not math.isnan(value), f"{name}: NaN in column {key}"
    assert "wall_s" in result.perf, f"{name}: perf.wall_s not stamped"
    assert result.perf["wall_s"] >= 0.0


def test_e18_quick_covers_all_three_backends():
    """E18 (permanent-loss survival) exercises every backend variant."""
    result = ALL_EXPERIMENTS["E18"](quick=True)
    assert set(result.column("backend")) == {"scatter+repair", "chord+zave", "chord"}
    assert all(r["losses"] > 0 for r in result.rows), "the storm actually ran"
    assert all(r["keys_total"] > 0 for r in result.rows)


def test_e21_quick_scales_the_ring_with_flat_routing():
    """E21 (large-ring scale-out): sizes ascend, routing stays ~1 hop."""
    result = ALL_EXPERIMENTS["E21"](quick=True)
    nodes = result.column("nodes")
    assert nodes == sorted(nodes) and len(nodes) >= 2
    assert all(r["sim_events"] > 0 for r in result.rows)
    # Whole-ring caches + route tables: a warm client needs ~1 network
    # hop per op regardless of ring size.
    assert all(r["hops_per_op"] < 2.0 for r in result.rows)
    assert "total_sim_events" in result.perf

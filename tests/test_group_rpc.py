"""Tests for the group_request leader-discovery helper."""

from dataclasses import dataclass

import pytest

from repro.dht.ring import KeyRange
from repro.dht.rpc import GroupUnreachable, group_request
from repro.group.info import GroupInfo
from repro.net import Node, spawn
from repro.sim import ConstantLatency, SimNetwork, Simulator


@dataclass(frozen=True)
class Probe:
    payload: str = "ping"


@dataclass(frozen=True)
class ProbeResp:
    status: str
    leader_hint: str | None = None


class Member(Node):
    """Configurable responder: answers with a scripted status."""

    def __init__(self, node_id, sim, net, status="ok", hint=None):
        super().__init__(node_id, sim, net)
        self.status = status
        self.hint = hint
        self.served = 0
        self.on(Probe, self._on_probe)

    def _on_probe(self, src, msg):
        self.served += 1
        return ProbeResp(status=self.status, leader_hint=self.hint)


def setup(statuses):
    sim = Simulator(seed=1)
    net = SimNetwork(sim, latency=ConstantLatency(0.005))
    members = {}
    for name, (status, hint) in statuses.items():
        members[name] = Member(name, sim, net, status=status, hint=hint)
    caller = Node("caller", sim, net)
    info = GroupInfo(
        gid="g",
        range=KeyRange(0, 100),
        members=tuple(statuses),
        leader_hint=next(iter(statuses)),
    )
    return sim, caller, members, info


def run_request(sim, caller, info, timeout=0.3):
    future = spawn(sim, group_request(caller, info, lambda: Probe(), timeout=timeout))
    sim.run_for(10.0)
    return future


class TestGroupRequest:
    def test_leader_hint_first(self):
        sim, caller, members, info = setup({"a": ("ok", None), "b": ("ok", None)})
        future = run_request(sim, caller, info)
        assert future.result().status == "ok"
        assert members["a"].served == 1
        assert members["b"].served == 0

    def test_follows_not_leader_hint(self):
        sim, caller, members, info = setup(
            {"a": ("not_leader", "c"), "b": ("ok", None), "c": ("ok", None)}
        )
        future = run_request(sim, caller, info)
        assert future.result().status == "ok"
        assert members["c"].served == 1
        assert members["b"].served == 0  # hint jumped the queue

    def test_skips_dead_leader(self):
        sim, caller, members, info = setup({"a": ("ok", None), "b": ("ok", None)})
        members["a"].crash()
        future = run_request(sim, caller, info)
        assert future.result().status == "ok"
        assert members["b"].served == 1

    def test_all_dead_raises_unreachable(self):
        sim, caller, members, info = setup({"a": ("ok", None), "b": ("ok", None)})
        for m in members.values():
            m.crash()
        future = run_request(sim, caller, info)
        with pytest.raises(GroupUnreachable):
            future.result()

    def test_hint_loop_terminates(self):
        # a says "b is leader", b says "a is leader": both get tried once,
        # then the helper gives up instead of ping-ponging.
        sim, caller, members, info = setup(
            {"a": ("not_leader", "b"), "b": ("not_leader", "a")}
        )
        future = run_request(sim, caller, info)
        with pytest.raises(GroupUnreachable):
            future.result()
        assert members["a"].served == 1
        assert members["b"].served == 1

    def test_substantive_non_ok_response_returned(self):
        # Statuses other than not_leader (busy, refused, moved) are the
        # caller's problem; the helper must hand them back, not retry.
        sim, caller, members, info = setup({"a": ("busy", None), "b": ("ok", None)})
        future = run_request(sim, caller, info)
        assert future.result().status == "busy"
        assert members["b"].served == 0

"""Tests for ScatterSystem observation helpers and node-level plumbing."""

import pytest

from repro.dht.messages import GossipReq, GroupNeighborsReq, JoinLookupReq
from repro.dht.ring import KEY_SPACE, KeyRange
from repro.dht.system import ScatterSystem
from repro.group.info import GroupInfo
from repro.group.replica import GroupStatus
from repro.policies import ScatterPolicy
from repro.sim import ConstantLatency, SimNetwork, Simulator

from test_scatter_basic import build, fast_config


class TestBuilder:
    def test_rejects_bad_shapes(self):
        sim = Simulator()
        net = SimNetwork(sim)
        with pytest.raises(ValueError):
            ScatterSystem.build(sim, net, n_nodes=2, n_groups=3)
        with pytest.raises(ValueError):
            ScatterSystem.build(sim, net, n_nodes=2, n_groups=0)

    def test_uneven_membership_distribution(self):
        sim, net, system = build(n_nodes=7, n_groups=2)
        sizes = sorted(len(g.members) for g in system.active_groups().values())
        assert sizes == [3, 4]

    def test_ring_is_consistent_detects_gap(self):
        sim, net, system = build(n_nodes=6, n_groups=2)
        assert system.ring_is_consistent()
        # Forge a gap by shrinking one group's view of its range.
        g = next(iter(system.active_groups().values()))
        for node in system.nodes.values():
            replica = node.groups.get(g.gid)
            if replica is not None:
                replica.range = KeyRange(replica.range.lo, (replica.range.lo + 5) % KEY_SPACE)
        assert not system.ring_is_consistent()

    def test_total_keys_counts_each_key_once(self):
        sim, net, system = build()
        from test_scatter_basic import make_client

        client = make_client(sim, net, system)
        for i in range(10):
            client.put(f"tk-{i}", i)
        sim.run_for(5.0)
        assert system.total_keys() == 10


class TestNodeKnowledge:
    def test_known_groups_excludes_forwarded(self):
        sim, net, system = build()
        node = next(iter(system.nodes.values()))
        some_info = GroupInfo(
            gid="dead", range=KeyRange(1, 2), members=("x",), leader_hint="x"
        )
        node.learn(some_info)
        assert any(i.gid == "dead" for i in node.known_groups())
        node.forwarding["dead"] = ()
        node.cache.pop("dead", None)
        assert not any(i.gid == "dead" for i in node.known_groups())

    def test_learn_respects_cache_bound(self):
        sim, net, system = build()
        node = next(iter(system.nodes.values()))
        for i in range(node.config.routing_cache_size + 20):
            node.learn(
                GroupInfo(gid=f"x{i}", range=KeyRange(i, i + 1), members=("m",), leader_hint="m")
            )
        assert len(node.cache) <= node.config.routing_cache_size

    def test_learn_ignores_hosted_groups(self):
        sim, net, system = build()
        node = next(iter(system.nodes.values()))
        gid = next(iter(node.groups))
        fake = GroupInfo(gid=gid, range=KeyRange(0, 1), members=("z",), leader_hint="z")
        node.learn(fake)
        assert gid not in node.cache

    def test_gossip_spreads_infos(self):
        sim, net, system = build(n_nodes=9, n_groups=3)
        sim.run_for(20.0)  # several gossip rounds
        # Eventually nodes know about non-adjacent groups too.
        known_counts = [
            len(node.known_groups()) for node in system.nodes.values() if node.alive
        ]
        assert max(known_counts) == 3


class TestRpcSurfaces:
    def test_join_lookup_returns_group(self):
        sim, net, system = build()
        from repro.net.node import Node

        probe = Node("probe", sim, net)
        f = probe.request("s0", JoinLookupReq(), timeout=1.0)
        sim.run_for(1.0)
        assert f.result().target is not None

    def test_group_neighbors_from_leader(self):
        sim, net, system = build(n_nodes=6, n_groups=2)
        from repro.net.node import Node

        gid = "g0"
        leader = system.leader_of(gid)
        probe = Node("probe", sim, net)
        f = probe.request(leader.paxos.replica_id, GroupNeighborsReq(gid=gid), timeout=1.0)
        sim.run_for(1.0)
        resp = f.result()
        assert resp.status == "ok"
        assert resp.info.gid == gid
        assert resp.successor is not None

    def test_group_neighbors_from_follower_redirects(self):
        sim, net, system = build(n_nodes=6, n_groups=2)
        from repro.net.node import Node

        gid = "g0"
        leader = system.leader_of(gid)
        follower = next(
            m for m in leader.members if m != leader.paxos.replica_id
        )
        probe = Node("probe", sim, net)
        f = probe.request(follower, GroupNeighborsReq(gid=gid), timeout=1.0)
        sim.run_for(1.0)
        resp = f.result()
        assert resp.status == "not_leader"
        assert resp.leader_hint == leader.paxos.replica_id

    def test_gossip_reply_bounded(self):
        sim, net, system = build()
        from repro.net.node import Node

        probe = Node("probe", sim, net)
        f = probe.request("s0", GossipReq(), timeout=1.0)
        sim.run_for(1.0)
        assert len(f.result().infos) <= 8


class TestRestart:
    def test_node_crash_and_restart_rejoins_protocol(self):
        sim, net, system = build(n_nodes=6, n_groups=2)
        node = system.nodes["s2"]
        gid = next(iter(node.groups))
        node.crash()
        sim.run_for(2.0)
        node.restart()
        sim.run_for(8.0)
        # Either it is still a member and caught up, or it was removed by
        # failure detection; both are legal — but it must not wedge.
        leader = system.leader_of(gid)
        assert leader is not None

    def test_alive_node_ids_excludes_dead(self):
        sim, net, system = build(n_nodes=6, n_groups=2)
        system.kill_node("s1")
        assert "s1" not in system.alive_node_ids()

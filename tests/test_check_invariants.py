"""Invariant registry unit tests and the zero-perturbation guard.

Two angles: (1) each invariant holds on a healthy deployment and fires
on targeted synthetic corruption of replica state; (2) attaching the
InvariantMonitor to a run changes nothing observable — same seed, same
client history, same network traffic, with or without it.
"""

from __future__ import annotations

import pytest

from repro.check import ALL_INVARIANTS, InvariantMonitor
from repro.check.demo import demo_bug
from repro.check.invariants import (
    authoritative_arcs,
    check_leader_exclusivity,
    check_log_agreement,
    check_ring_coverage,
    check_txn_atomicity,
)
from repro.check.plan import sample_plan
from repro.check.schedule import ScheduleRunner
from repro.check.workload import ScriptedWorkload
from repro.consensus.replica import PaxosReplica
from repro.dht.client import ScatterClient
from repro.dht.ring import KEY_SPACE, KeyRange
from repro.dht.system import ScatterSystem
from repro.faults.target import FaultTarget
from repro.harness.builders import DeploymentParams, build_scatter_deployment
from repro.policies import ScatterPolicy
from repro.sim.latency import LogNormalLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.harness.builders import experiment_scatter_config


@pytest.fixture()
def deployment():
    dep = build_scatter_deployment(
        DeploymentParams(n_nodes=6, n_groups=2, n_clients=1, seed=5)
    )
    dep.sim.run_for(5.0)  # settle: elect leaders, establish leases
    return dep


def _some_replica(system):
    for node in system.nodes.values():
        for replica in node.groups.values():
            return replica
    raise AssertionError("no replicas")


def _group_replicas(system, gid):
    return [
        node.groups[gid]
        for node in system.nodes.values()
        if gid in node.groups and node.alive
    ]


class TestHealthyDeployment:
    def test_all_invariants_hold(self, deployment):
        for name, check in ALL_INVARIANTS.items():
            assert check(deployment.system) == [], f"{name} failed on healthy system"

    def test_arcs_tile_the_ring(self, deployment):
        arcs = authoritative_arcs(deployment.system)
        assert len(arcs) == 2
        spans = sorted(arcs.values())
        assert spans[0][1] == spans[1][0] and spans[1][1] == spans[0][0]


class TestSyntheticCorruption:
    def test_duplicate_txn_apply_detected(self, deployment):
        replica = _some_replica(deployment.system)
        replica.txn_log.append(("txn-x", "committed"))
        replica.txn_log.append(("txn-x", "committed"))
        problems = check_txn_atomicity(deployment.system)
        assert any("applied twice" in p for p in problems)

    def test_conflicting_decisions_detected(self, deployment):
        system = deployment.system
        gid = next(iter(system.active_groups()))
        a, b = _group_replicas(system, gid)[:2]
        a.txn_log.append(("txn-y", "committed"))
        b.txn_log.append(("txn-y", "aborted"))
        problems = check_txn_atomicity(system)
        assert any("conflicting decisions" in p for p in problems)

    def test_divergent_chosen_value_detected(self, deployment):
        system = deployment.system
        gid = next(iter(system.active_groups()))
        replicas = _group_replicas(system, gid)
        log = replicas[0].paxos.log
        slot = log.commit_index
        assert slot >= 0, "settled group must have committed entries"
        log.entry(slot).accepted_value = "corrupted"
        problems = check_log_agreement(system)
        assert any("diverges" in p for p in problems)

    def test_two_leaders_same_ballot_detected(self, deployment):
        system = deployment.system
        gid = next(iter(system.active_groups()))
        replicas = _group_replicas(system, gid)
        leader = next(r for r in replicas if r.paxos.is_leader)
        follower = next(r for r in replicas if not r.paxos.is_leader)
        follower.paxos.is_leader = True
        follower.paxos.ballot = leader.paxos.ballot
        problems = check_leader_exclusivity(system)
        assert any("leaders at ballot" in p for p in problems)

    def test_two_live_leases_detected(self, deployment):
        system = deployment.system
        sim = deployment.sim
        gid = next(iter(system.active_groups()))
        replicas = _group_replicas(system, gid)
        leader = next(r for r in replicas if r.paxos.lease_active)
        follower = next(r for r in replicas if not r.paxos.is_leader)
        follower.paxos.is_leader = True
        follower.paxos.ballot = (leader.paxos.ballot[0] + 1, 99)
        follower.paxos._lease_until = sim.now + 10.0
        follower.paxos._read_barrier_slot = 0  # pretend the barrier committed
        problems = check_leader_exclusivity(system)
        assert any("live leases" in p for p in problems)

    def test_ring_overlap_detected(self, deployment):
        system = deployment.system
        gids = sorted(system.active_groups())
        # Stretch one group's arc over the whole ring on every replica.
        for replica in _group_replicas(system, gids[0]):
            replica.range = KeyRange(0, 0)
        problems = check_ring_coverage(system)
        assert problems, "overlapping arcs must be reported"

    def test_in_flight_structural_txn_suppresses_ring_check(self, deployment):
        system = deployment.system
        gids = sorted(system.active_groups())
        for replica in _group_replicas(system, gids[0]):
            replica.range = KeyRange(0, 0)
        victim = _some_replica(system)
        victim.active_txn = object()  # split/merge 2PC still propagating
        try:
            assert check_ring_coverage(system) == []
        finally:
            victim.active_txn = None
        assert check_ring_coverage(system)  # reported once the txn resolves


class TestDemoBug:
    def test_patch_is_scoped_and_restored(self):
        original = PaxosReplica._majority
        with demo_bug("quorum-off-by-one"):
            assert PaxosReplica._majority is not original
        assert PaxosReplica._majority is original

    def test_none_is_a_no_op(self):
        original = PaxosReplica._majority
        with demo_bug(None):
            assert PaxosReplica._majority is original

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            with demo_bug("no-such-bug"):
                pass


# ---------------------------------------------------------------------------
# Zero perturbation: the monitor observes, never interferes
# ---------------------------------------------------------------------------
def _drive_plan(monitored: bool):
    """Replicate run_plan's build for one sampled plan, +/- the monitor.

    The fingerprint deliberately excludes ``events_processed``: monitor
    ticks are themselves events, so the count legitimately differs.  The
    workload history and every message on the wire must not.
    """
    plan = sample_plan(3, 0)
    sim = Simulator(seed=plan.sim_seed)
    net = SimNetwork(sim, latency=LogNormalLatency(0.004, 0.4))
    size = plan.group_size
    policy = ScatterPolicy(
        target_size=size, split_size=2 * size + 1, merge_size=max(1, size - 2)
    )
    system = ScatterSystem.build(
        sim,
        net,
        n_nodes=plan.n_nodes,
        n_groups=plan.n_groups,
        config=experiment_scatter_config(),
        policy=policy,
    )
    clients = [
        ScatterClient(f"c{i}", sim, net, seed_provider=system.alive_node_ids)
        for i in range(plan.n_clients)
    ]
    target = FaultTarget.for_system(system)
    workload = ScriptedWorkload(sim, clients, plan.ops)
    schedule = ScheduleRunner(sim, system, target, plan.schedule)
    monitor = InvariantMonitor(sim, system) if monitored else None

    sim.run_for(plan.warmup)
    if monitor:
        monitor.start()
    workload.start()
    schedule.start()
    sim.run_for(plan.duration)
    schedule.stop()
    sim.run_for(plan.drain)
    if monitor:
        monitor.stop()
        assert monitor.samples > 0  # it really was watching

    records = workload.all_records()
    return (
        net.stats.sent,
        net.stats.delivered,
        net.stats.dropped,
        [
            (r.op, r.key, round(r.invoke_time, 9), round(r.response_time, 9),
             r.hops, r.attempts)
            for r in records
        ],
    )


class TestZeroPerturbation:
    def test_monitor_does_not_perturb_the_run(self):
        assert _drive_plan(monitored=True) == _drive_plan(monitored=False)

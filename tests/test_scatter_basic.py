"""End-to-end tests of the Scatter overlay: routing, storage, joins."""

import pytest

from repro.consensus import PaxosConfig
from repro.dht.client import ClientConfig, ScatterClient
from repro.dht.ring import hash_key
from repro.dht.scatter import ScatterConfig
from repro.dht.system import ScatterSystem
from repro.policies import ScatterPolicy
from repro.sim import LogNormalLatency, SimNetwork, Simulator

FAST_PAXOS = PaxosConfig(
    heartbeat_interval=0.1,
    election_timeout=0.6,
    lease_duration=0.4,
    retry_interval=0.3,
)


def fast_config(**overrides):
    defaults = dict(
        paxos=FAST_PAXOS,
        maintenance_interval=0.5,
        dead_timeout=1.5,
        txn_rpc_timeout=1.0,
        txn_recovery_timeout=4.0,
        txn_cooldown=1.5,
        gossip_interval=2.0,
        retired_linger=20.0,
        join_retry=0.5,
    )
    defaults.update(overrides)
    return ScatterConfig(**defaults)


def build(n_nodes=9, n_groups=3, seed=1, policy=None, config=None):
    sim = Simulator(seed=seed)
    net = SimNetwork(sim, latency=LogNormalLatency(0.003, 0.3))
    policy = policy or ScatterPolicy(target_size=3, split_size=6, merge_size=2)
    system = ScatterSystem.build(
        sim, net, n_nodes=n_nodes, n_groups=n_groups,
        config=config or fast_config(), policy=policy,
    )
    sim.run_for(2.0)  # leaders elect, leases establish
    return sim, net, system


def make_client(sim, net, system, name="c0"):
    return ScatterClient(name, sim, net, seed_provider=system.alive_node_ids)


class TestBootstrap:
    def test_groups_cover_ring(self):
        sim, net, system = build()
        assert system.group_count() == 3
        assert system.ring_is_consistent()

    def test_every_group_has_leader(self):
        sim, net, system = build()
        for gid in system.active_groups():
            assert system.leader_of(gid) is not None

    def test_nodes_split_across_groups(self):
        sim, net, system = build(n_nodes=9, n_groups=3)
        sizes = [len(g.members) for g in system.active_groups().values()]
        assert sizes == [3, 3, 3]


class TestClientOps:
    def test_put_then_get(self):
        sim, net, system = build()
        client = make_client(sim, net, system)
        f = client.put("hello", "world")
        sim.run_for(3.0)
        assert f.result().ok
        g = client.get("hello")
        sim.run_for(3.0)
        assert g.result().ok
        assert g.result().value == "world"

    def test_get_missing_key(self):
        sim, net, system = build()
        client = make_client(sim, net, system)
        f = client.get("never-written")
        sim.run_for(3.0)
        assert not f.result().ok
        assert f.result().error == "not_found"

    def test_many_keys_route_to_right_groups(self):
        sim, net, system = build()
        client = make_client(sim, net, system)
        futures = {}
        for i in range(40):
            futures[f"key-{i}"] = client.put(f"key-{i}", i)
        sim.run_for(8.0)
        for name, f in futures.items():
            assert f.result().ok, f"{name} failed: {f.result()}"
        # Data landed in the group owning each key.
        groups = system.active_groups()
        for i in range(40):
            key = hash_key(f"key-{i}")
            owners = [g for g in groups.values() if g.range.contains(key)]
            assert len(owners) == 1
            assert owners[0].store.get(key).value == i

    def test_delete_and_cas(self):
        sim, net, system = build()
        client = make_client(sim, net, system)
        client.put("k", "v1")
        sim.run_for(2.0)
        f = client.cas("k", "v2", expected_version=1)
        sim.run_for(2.0)
        assert f.result().ok
        f2 = client.cas("k", "v3", expected_version=1)
        sim.run_for(2.0)
        assert not f2.result().ok and f2.result().error == "conflict"
        f3 = client.delete("k")
        sim.run_for(2.0)
        assert f3.result().ok

    def test_two_clients_see_each_others_writes(self):
        sim, net, system = build()
        c1 = make_client(sim, net, system, "c1")
        c2 = make_client(sim, net, system, "c2")
        c1.put("shared", "from-c1")
        sim.run_for(3.0)
        f = c2.get("shared")
        sim.run_for(3.0)
        assert f.result().value == "from-c1"


class TestJoin:
    def test_new_node_joins_a_group(self):
        sim, net, system = build(n_nodes=6, n_groups=2)
        node = system.add_node()
        sim.run_for(10.0)
        assert len(node.groups) == 1
        gid = next(iter(node.groups))
        assert node.node_id in node.groups[gid].paxos.members

    def test_join_targets_smallest_group(self):
        sim, net, system = build(n_nodes=7, n_groups=2)  # sizes 4 and 3
        sizes_before = {g.gid: len(g.members) for g in system.active_groups().values()}
        small_gid = min(sizes_before, key=sizes_before.get)
        node = system.add_node()
        sim.run_for(10.0)
        joined_gid = next(iter(node.groups))
        assert joined_gid == small_gid

    def test_joined_node_catches_up_data(self):
        sim, net, system = build(n_nodes=6, n_groups=2)
        client = make_client(sim, net, system)
        for i in range(20):
            client.put(f"pre-{i}", i)
        sim.run_for(6.0)
        node = system.add_node()
        sim.run_for(12.0)
        assert len(node.groups) == 1
        replica = next(iter(node.groups.values()))
        # Every key the group owns is present in the new member's store.
        leader = system.leader_of(replica.gid)
        assert leader is not None
        sim.run_for(4.0)
        for key in leader.owned_keys():
            assert replica.store.get(key).ok, f"missing key {key}"


class TestGroupFailureHandling:
    def test_dead_member_is_removed(self):
        sim, net, system = build(n_nodes=8, n_groups=2)
        groups = system.active_groups()
        gid, replica = next(iter(groups.items()))
        victim = [m for m in replica.members if not system.nodes[m].groups[gid].is_leader][0]
        system.kill_node(victim)
        sim.run_for(15.0)
        leader = system.leader_of(gid)
        assert leader is not None
        assert victim not in leader.members

    def test_leader_death_fails_over_and_serves(self):
        sim, net, system = build()
        client = make_client(sim, net, system)
        client.put("k", "v")
        sim.run_for(3.0)
        gid = next(
            g.gid for g in system.active_groups().values() if g.range.contains(hash_key("k"))
        )
        leader = system.leader_of(gid)
        system.kill_node(leader.paxos.replica_id)
        sim.run_for(10.0)
        f = client.get("k")
        sim.run_for(8.0)
        assert f.result().ok
        assert f.result().value == "v"

"""Randomized fault injection against safety invariants.

These tests throw crashes, restarts, partitions, and message loss at the
consensus and overlay layers under randomized schedules and check the
invariants that must hold regardless of timing:

- all replicas of one Paxos group apply the same command sequence;
- chosen log slots never change value;
- client histories stay linearizable;
- the ring of active groups never overlaps (two groups claiming one key).

Seeds are fixed, so failures are reproducible.
"""

import pytest

from repro.analysis import LivenessWatchdog, check_history
from repro.consensus import Command, PaxosConfig
from repro.consensus.harness import build_cluster
from repro.faults import CrashRestartStorm, FaultTarget
from repro.dht.client import ScatterClient
from repro.dht.ring import KEY_SPACE
from repro.dht.system import ScatterSystem
from repro.group.replica import GroupStatus
from repro.policies import ScatterPolicy
from repro.sim import ConstantLatency, LogNormalLatency, SimNetwork, Simulator
from repro.workloads import UniformKeys
from repro.workloads.driver import ClosedLoopWorkload

from test_scatter_basic import fast_config, make_client

FAST = PaxosConfig(
    heartbeat_interval=0.1,
    election_timeout=0.5,
    lease_duration=0.35,
    retry_interval=0.3,
)


def applied_prefixes_consistent(hosts):
    logs = [[(s, c.payload) for s, c in h.applied if c.kind == "app"] for h in hosts]
    longest = max(logs, key=len)
    return all(log == longest[: len(log)] for log in logs)


def pump_proposals(sim, hosts, rounds, interval=1.0, prefix="r"):
    """Propose one command per tick through whoever currently leads."""

    def tick(i):
        leaders = [h for h in hosts if h.alive and h.replica.is_leader]
        if leaders:
            leaders[0].propose(Command.app(f"{prefix}{i}"))
        if i + 1 < rounds:
            sim.schedule(interval, tick, i + 1)

    sim.schedule(0.0, tick, 0)


class TestPaxosUnderFaults:
    # The crash/restart schedule used to be hand-coded in this test; it
    # now runs on the nemesis layer (same shape: random victims, random
    # downtimes, everyone restarted at the end) with the same invariant.
    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(6))
    def test_random_crash_restart_schedule(self, seed):
        sim = Simulator(seed=seed)
        net = SimNetwork(sim, latency=LogNormalLatency(0.004, 0.5), drop_prob=0.05)
        hosts = build_cluster(sim, net, n=5, config=FAST)
        sim.run_for(1.0)
        pump_proposals(sim, hosts, rounds=12, interval=1.3)
        storm = CrashRestartStorm(
            sim,
            FaultTarget.for_hosts(net, hosts),
            interval=1.5,
            downtime=(0.5, 2.5),
            max_down=2,
        )
        storm.start()
        sim.run_for(16.0)
        storm.stop()  # restarts anything still down
        assert any(e.action == "crash" for e in storm.events)
        sim.run_for(15.0)
        assert applied_prefixes_consistent(hosts)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_partitions(self, seed):
        sim = Simulator(seed=100 + seed)
        net = SimNetwork(sim, latency=ConstantLatency(0.005))
        hosts = build_cluster(sim, net, n=5, config=FAST)
        rng = sim.rng("partition-schedule")
        sim.run_for(1.0)
        names = [h.node_id for h in hosts]
        for round_num in range(8):
            leaders = [h for h in hosts if h.alive and h.replica.is_leader]
            if leaders:
                leaders[0].propose(Command.app(f"p{round_num}"))
            side = set(rng.sample(names, rng.randrange(1, 3)))
            net.partition(side, set(names) - side)
            sim.run_for(rng.uniform(1.0, 3.0))
            net.heal()
            sim.run_for(rng.uniform(0.5, 1.5))
        sim.run_for(15.0)
        assert applied_prefixes_consistent(hosts)

    def test_chosen_slots_never_change(self):
        # mark_chosen raises AssertionError on conflicting choice; run a
        # hostile schedule and make sure it never fires.
        sim = Simulator(seed=77)
        net = SimNetwork(sim, latency=LogNormalLatency(0.004, 0.6), drop_prob=0.15)
        hosts = build_cluster(sim, net, n=3, config=FAST)
        rng = sim.rng("hostile")
        sim.run_for(1.0)
        for i in range(20):
            for h in hosts:
                if h.alive and h.replica.is_leader:
                    h.propose(Command.app(i))
            victim = hosts[rng.randrange(3)]
            if victim.alive and rng.random() < 0.4:
                victim.crash()
                sim.schedule(rng.uniform(1.0, 3.0), victim.restart)
            sim.run_for(rng.uniform(0.3, 1.2))
        sim.run_for(20.0)
        assert applied_prefixes_consistent(hosts)


class TestScatterUnderFaults:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_kills_during_group_operations(self, seed):
        sim = Simulator(seed=200 + seed)
        net = SimNetwork(sim, latency=ConstantLatency(0.004))
        policy = ScatterPolicy(target_size=4, split_size=8, merge_size=2)
        system = ScatterSystem.build(
            sim, net, n_nodes=16, n_groups=4, config=fast_config(), policy=policy
        )
        sim.run_for(2.0)
        client = make_client(sim, net, system)
        rng = sim.rng("kill-schedule")
        for i in range(30):
            client.put(f"fk-{i}", i)
        sim.run_for(5.0)
        # Interleave group operations with kills.
        for round_num in range(5):
            gids = sorted(system.active_groups())
            if gids:
                leader = system.leader_of(gids[rng.randrange(len(gids))])
                if leader is not None and len(leader.members) >= 4:
                    leader.host.start_split(leader)
            sim.run_for(rng.uniform(0.05, 0.5))
            alive = system.alive_node_ids()
            if len(alive) > 10:
                system.kill_node(alive[rng.randrange(len(alive))])
            sim.run_for(rng.uniform(2.0, 5.0))
        sim.run_for(30.0)
        # Safety: no two active groups claim the same key.
        groups = list(system.active_groups().values())
        probes = [int(KEY_SPACE * i / 97) for i in range(97)]
        for key in probes:
            owners = [g.gid for g in groups if g.range.contains(key)]
            assert len(owners) <= 1, f"key {key:#x} claimed by {owners}"
        # Liveness-ish: no permanent locks.
        for gid, g in system.active_groups().items():
            assert g.status is not GroupStatus.FROZEN or g.active_txn is not None
        # Consistency: the client's history is linearizable.
        futures = [client.get(f"fk-{i}") for i in range(30)]
        sim.run_for(10.0)
        check = check_history(client.records)
        assert check.violations == [], [v.detail for v in check.violations[:3]]


class TestAsymmetricPartition:
    def test_send_only_leader_loses_lease_and_is_replaced(self):
        """A leader that can send but not receive must not reign forever.

        Inbound isolation is the nasty half of a partition: the victim's
        heartbeats still reach followers (keeping them loyal), but no ack
        ever returns, so its lease cannot be renewed and nothing commits.
        The leader must notice the silence, step down, and a reachable
        replica must take over within the watchdog window.
        """
        sim = Simulator(seed=42)
        net = SimNetwork(sim, latency=ConstantLatency(0.005))
        hosts = build_cluster(sim, net, n=5, config=FAST)
        sim.run_for(3.0)
        leaders = [h for h in hosts if h.replica.is_leader]
        assert len(leaders) == 1
        old = leaders[0]
        assert old.replica.lease_active
        pump_proposals(sim, hosts, rounds=60, interval=0.2)
        watchdog = LivenessWatchdog(
            sim, lambda: sum(len(h.applied) for h in hosts), window=2.0
        )
        watchdog.start()
        net.isolate_inbound(old.node_id, [h.node_id for h in hosts if h is not old])
        # No ack can arrive, so the lease lapses within one lease term.
        sim.run_for(FAST.lease_duration + 0.1)
        assert not old.replica.lease_active
        sim.run_for(8.0)
        new_leaders = [h for h in hosts if h.replica.is_leader]
        assert new_leaders and old not in new_leaders, "no replacement leader"
        watchdog.stop()
        # Progress stalled during the takeover but resumed: the election
        # happened inside the watchdog window, not at the end of time.
        assert not watchdog.unrecovered
        assert watchdog.max_stall < 6.0
        assert applied_prefixes_consistent(hosts)


class TestDuplicateDelivery:
    def test_commands_apply_exactly_once_under_duplication(self):
        """With at-least-once delivery, dedup must keep puts exactly-once.

        Every put bumps the key's version, so N acknowledged puts must
        leave the version at exactly N: one double-applied command (a
        duplicated ClientOpReq proposed into two slots) would overshoot.
        """
        sim = Simulator(seed=11)
        net = SimNetwork(sim, latency=LogNormalLatency(0.004, 0.4), dup_prob=0.25)
        system = ScatterSystem.build(sim, net, n_nodes=12, n_groups=3, config=fast_config())
        sim.run_for(2.0)
        client = make_client(sim, net, system)
        n_puts = 30
        for i in range(n_puts):
            fut = client.put("dup-key", i)
            deadline = sim.now + 10.0
            while not fut.done and sim.now < deadline:
                sim.run_for(0.1)
            assert fut.done and fut.result().ok
        assert net.stats.duplicated > 0, "duplication never kicked in"
        fut = client.get("dup-key")
        sim.run_for(2.0)
        result = fut.result()
        assert result.ok and result.value == n_puts - 1
        assert result.version == n_puts, (
            f"version {result.version} != {n_puts}: a duplicate applied twice"
        )
        check = check_history(client.records)
        assert check.violations == [], [v.detail for v in check.violations[:3]]

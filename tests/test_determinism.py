"""Determinism tests: same seed, same history — the simulator's contract."""

import pytest

from repro.faults import FaultTarget, build_scenario
from repro.harness.builders import DeploymentParams, build_scatter_deployment
from repro.harness.experiments import run_e05, run_e12
from repro.policies import ScatterPolicy
from repro.workloads import ChurnProcess, UniformKeys, exponential_lifetime
from repro.workloads.driver import ClosedLoopWorkload


def run_churn_fingerprint(seed):
    params = DeploymentParams(n_nodes=15, n_groups=3, n_clients=2, seed=seed)
    deployment = build_scatter_deployment(
        params, policy=ScatterPolicy(target_size=5, split_size=11, merge_size=3)
    )
    sim, system, clients = deployment.sim, deployment.system, deployment.clients
    workload = ClosedLoopWorkload(sim, clients, UniformKeys(20), read_fraction=0.5)
    workload.start()
    churn = ChurnProcess(sim, system, exponential_lifetime(100.0))
    churn.start()
    sim.run_for(30.0)
    churn.stop()
    workload.stop()
    sim.run_for(1.0)
    records = workload.all_records()
    return (
        sim.events_processed,
        churn.departures,
        [(r.op, r.key, round(r.invoke_time, 9), round(r.response_time, 9)) for r in records],
        sorted(system.active_groups()),
    )


class TestDeterminism:
    def test_full_stack_run_is_bit_identical(self):
        assert run_churn_fingerprint(3) == run_churn_fingerprint(3)

    def test_different_seeds_differ(self):
        assert run_churn_fingerprint(3) != run_churn_fingerprint(4)

    def test_experiment_rows_reproduce(self):
        a = run_e12(quick=True, seed=9)
        b = run_e12(quick=True, seed=9)
        assert a.rows == b.rows

    def test_e05_reproduces(self):
        a = run_e05(quick=True, seed=2)
        b = run_e05(quick=True, seed=2)
        assert a.rows == b.rows


def run_nemesis_fingerprint(seed, scenario="chaos"):
    """One faulted run, reduced to (fault schedule, client history)."""
    params = DeploymentParams(n_nodes=12, n_groups=3, n_clients=2, seed=seed)
    deployment = build_scatter_deployment(params)
    sim, system, clients = deployment.sim, deployment.system, deployment.clients
    workload = ClosedLoopWorkload(sim, clients, UniformKeys(20), read_fraction=0.5)
    workload.start()
    suite = build_scenario(scenario, sim, FaultTarget.for_system(system))
    suite.start()
    sim.run_for(20.0)
    suite.stop()
    sim.run_for(3.0)
    workload.stop()
    history = tuple(
        (r.op, r.key, round(r.invoke_time, 9), round(r.response_time, 9))
        for r in workload.all_records()
    )
    return suite.schedule_fingerprint(), history


class TestNemesisDeterminism:
    """Same (scenario, seed) => identical fault schedule AND history."""

    def test_same_scenario_and_seed_reproduce(self):
        a = run_nemesis_fingerprint(5)
        b = run_nemesis_fingerprint(5)
        assert a[0] == b[0], "fault schedules diverged"
        assert a[1] == b[1], "client histories diverged"

    def test_different_seeds_give_different_schedules(self):
        a = run_nemesis_fingerprint(5)
        b = run_nemesis_fingerprint(6)
        assert a[0] != b[0]

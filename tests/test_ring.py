"""Unit and property tests for the circular key space."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht import KEY_SPACE, KeyRange, hash_key, ring_distance

keys = st.integers(0, KEY_SPACE - 1)


class TestHashKey:
    def test_deterministic(self):
        assert hash_key("alice") == hash_key("alice")

    def test_in_range(self):
        for name in ("a", "b", "user:123", ""):
            assert 0 <= hash_key(name) < KEY_SPACE

    def test_spread(self):
        hashes = {hash_key(f"key-{i}") for i in range(1000)}
        assert len(hashes) == 1000  # no collisions in a small sample


class TestRingDistance:
    def test_forward(self):
        assert ring_distance(10, 20) == 10

    def test_wraparound(self):
        assert ring_distance(KEY_SPACE - 5, 5) == 10

    def test_zero(self):
        assert ring_distance(7, 7) == 0


class TestKeyRange:
    def test_full_contains_everything(self):
        r = KeyRange.full()
        assert r.is_full
        assert r.contains(0) and r.contains(KEY_SPACE - 1)
        assert r.size() == KEY_SPACE

    def test_simple_contains(self):
        r = KeyRange(10, 20)
        assert r.contains(10) and r.contains(19)
        assert not r.contains(20) and not r.contains(9)

    def test_wrapping_contains(self):
        r = KeyRange(KEY_SPACE - 10, 10)
        assert r.wraps
        assert r.contains(KEY_SPACE - 1) and r.contains(0) and r.contains(9)
        assert not r.contains(10) and not r.contains(KEY_SPACE - 11)

    def test_size_wrapping(self):
        assert KeyRange(KEY_SPACE - 10, 10).size() == 20

    def test_split_simple(self):
        left, right = KeyRange(10, 30).split_at(20)
        assert left == KeyRange(10, 20)
        assert right == KeyRange(20, 30)

    def test_split_full_range(self):
        left, right = KeyRange.full().split_at(100)
        assert left == KeyRange(0, 100)
        assert right == KeyRange(100, 0)
        assert left.size() + right.size() == KEY_SPACE

    def test_split_at_boundary_rejected(self):
        with pytest.raises(ValueError):
            KeyRange(10, 30).split_at(10)
        with pytest.raises(ValueError):
            KeyRange(10, 30).split_at(30)

    def test_split_outside_rejected(self):
        with pytest.raises(ValueError):
            KeyRange(10, 30).split_at(50)

    def test_merge_adjacent(self):
        assert KeyRange(10, 20).merge(KeyRange(20, 30)) == KeyRange(10, 30)

    def test_merge_back_to_full(self):
        assert KeyRange(0, 100).merge(KeyRange(100, 0)).is_full

    def test_merge_non_adjacent_rejected(self):
        with pytest.raises(ValueError):
            KeyRange(10, 20).merge(KeyRange(25, 30))

    def test_merge_overlapping_rejected(self):
        # [10,20) + [20,15) "wraps" all the way around and overlaps.
        with pytest.raises(ValueError):
            KeyRange(10, 20).merge(KeyRange(20, 15))

    def test_intervals_simple(self):
        assert KeyRange(10, 20).intervals() == [(10, 20)]

    def test_intervals_wrapping(self):
        assert KeyRange(KEY_SPACE - 5, 5).intervals() == [(KEY_SPACE - 5, KEY_SPACE), (0, 5)]

    def test_intervals_full(self):
        assert KeyRange.full().intervals() == [(0, KEY_SPACE)]

    def test_out_of_space_rejected(self):
        with pytest.raises(ValueError):
            KeyRange(0, KEY_SPACE)

    def test_midpoint_inside(self):
        r = KeyRange(KEY_SPACE - 10, 10)
        assert r.contains(r.midpoint())


@settings(max_examples=300, deadline=None)
@given(lo=keys, hi=keys, key=keys)
def test_contains_matches_intervals(lo, hi, key):
    r = KeyRange(lo, hi)
    in_intervals = any(a <= key < b for a, b in r.intervals())
    assert r.contains(key) == in_intervals


@settings(max_examples=300, deadline=None)
@given(lo=keys, hi=keys, split=keys)
def test_split_partitions_range(lo, hi, split):
    r = KeyRange(lo, hi)
    if split == r.lo or not r.contains(split):
        return
    left, right = r.split_at(split)
    assert left.size() + right.size() == r.size()
    for probe in (lo, hi, split, (split + 1) % KEY_SPACE, (lo + 1) % KEY_SPACE):
        assert r.contains(probe) == (left.contains(probe) or right.contains(probe))
        assert not (left.contains(probe) and right.contains(probe))


@settings(max_examples=300, deadline=None)
@given(lo=keys, hi=keys, split=keys)
def test_split_then_merge_roundtrips(lo, hi, split):
    r = KeyRange(lo, hi)
    if split == r.lo or not r.contains(split):
        return
    left, right = r.split_at(split)
    assert left.merge(right) == r


@settings(max_examples=200, deadline=None)
@given(a=keys, b=keys)
def test_ring_distance_antisymmetry(a, b):
    if a != b:
        assert ring_distance(a, b) + ring_distance(b, a) == KEY_SPACE
    else:
        assert ring_distance(a, b) == 0

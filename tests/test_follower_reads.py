"""The scale-out read path: linearizable follower reads.

Covers the consensus-level grant protocol (heartbeat-carried read
grants, quorum expansion for writes, conflict windows), the group/DHT
serve-or-bounce path with replica-aware client routing, the
zero-perturbation guarantee that ``follower_reads=False`` leaves
deployments byte-identical to builds that never had the knob, and the
fuzzer integration (sampled knob, repro back-compat, and the
``stale-follower-read`` canary).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.linearizability import check_history
from repro.consensus.commands import Command
from repro.consensus.harness import build_cluster, current_leader
from repro.consensus.log import PaxosLog
from repro.consensus.replica import PaxosConfig
from repro.dht.client import ClientConfig
from repro.harness.builders import (
    DeploymentParams,
    build_scatter_deployment,
    experiment_scatter_config,
)
from repro.obs import Tracer, tracing
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.sim.latency import ConstantLatency
from repro.workloads import UniformKeys
from repro.workloads.driver import ClosedLoopWorkload

FAST = dict(
    heartbeat_interval=0.1,
    election_timeout=0.5,
    lease_duration=0.35,
    retry_interval=0.3,
)


def make_cluster(config, seed=0, n=3):
    sim = Simulator(seed=seed)
    net = SimNetwork(sim, latency=ConstantLatency(0.005))
    hosts = build_cluster(sim, net, n=n, config=config)
    sim.run_for(1.0)
    return sim, net, hosts


def split_roles(hosts):
    leader = current_leader(hosts)
    assert leader is not None
    return leader, [h for h in hosts if h is not leader]


# ---------------------------------------------------------------------------
# Grant protocol (consensus level)
# ---------------------------------------------------------------------------
class TestGrants:
    def test_quiescent_followers_hold_grants_and_serve(self):
        sim, net, hosts = make_cluster(PaxosConfig(follower_reads=True, **FAST))
        leader, followers = split_roles(hosts)
        for host in followers:
            assert host.replica.follower_read_allowed("k")
        # The leader serves via its lease, never via the follower path.
        assert not leader.replica.follower_read_allowed("k")

    def test_knob_off_never_serves(self):
        sim, net, hosts = make_cluster(PaxosConfig(**FAST))
        for host in hosts:
            assert not host.replica.follower_read_allowed("k")

    def test_grant_expires_without_heartbeats(self):
        sim, net, hosts = make_cluster(PaxosConfig(follower_reads=True, **FAST))
        leader, followers = split_roles(hosts)
        cut = followers[0]
        net.block(leader.node_id, cut.node_id)
        # Past the grant lifetime but short of an election timeout.
        sim.run_for(0.4)
        assert not cut.replica.follower_read_allowed("k")
        assert followers[1].replica.follower_read_allowed("k")

    def test_advertised_dirty_key_blocks_only_that_key(self):
        sim, net, hosts = make_cluster(PaxosConfig(follower_reads=True, **FAST))
        _leader, followers = split_roles(hosts)
        replica = followers[0].replica
        replica._fr_dirty = frozenset({"hot"})
        assert not replica.follower_read_allowed("hot")
        assert replica.follower_read_allowed("cold")
        replica._fr_dirty_all = True
        assert not replica.follower_read_allowed("cold")

    def test_accepted_but_unapplied_entry_blocks_reads(self):
        # An Accept the follower has logged above its applied prefix is a
        # write that may already be acknowledged elsewhere (quorum
        # expansion made sure this follower saw it first) — reads must
        # bounce until it applies.  With no write classifier installed
        # (raw consensus cluster) it is conservatively a wildcard write.
        sim, net, hosts = make_cluster(PaxosConfig(follower_reads=True, **FAST))
        _leader, followers = split_roles(hosts)
        replica = followers[0].replica
        assert replica.follower_read_allowed("k")
        entry = replica.log.entry(replica.applied_index + 1)
        entry.accepted_ballot = (1, "n0")
        entry.accepted_value = Command.app("w")
        assert not replica.follower_read_allowed("k")

    def test_write_waits_for_partitioned_grantee(self):
        # Quorum expansion: while a follower's grant is live, a write is
        # not chosen on a bare majority that excludes it — otherwise that
        # follower could serve a stale read of an acknowledged write.
        sim, net, hosts = make_cluster(PaxosConfig(follower_reads=True, **FAST))
        leader, followers = split_roles(hosts)
        cut = followers[0]
        assert cut.replica.follower_read_allowed("k")
        net.block(leader.node_id, cut.node_id)
        future = leader.propose(Command.app("w"))
        sim.run_for(0.2)  # plenty for a majority ack; grant still live
        assert not future.done
        net.heal()  # the grantee acks the retried Accept; now it chooses
        sim.run_for(0.5)
        assert future.done and future.exception is None

    def test_grant_expiry_unblocks_writes(self):
        # If the grantee never comes back, the write clears once every
        # grant the leader may have issued to it has provably expired
        # (bounded by the last granting send + lease_duration).  A slow
        # election timeout keeps the cut member from campaigning first.
        config = PaxosConfig(
            follower_reads=True,
            heartbeat_interval=0.1,
            election_timeout=2.5,
            lease_duration=0.35,
            retry_interval=0.3,
        )
        sim, net, hosts = make_cluster(config)
        leader, followers = split_roles(hosts)
        net.block(leader.node_id, followers[0].node_id)
        future = leader.propose(Command.app("w"))
        sim.run_for(0.2)
        assert not future.done
        sim.run_for(0.8)  # past the last possible grant's expiry
        assert future.done and future.exception is None

    def test_majority_suffices_with_knob_off(self):
        # Same partition, no follower reads: a bare majority commits.
        sim, net, hosts = make_cluster(PaxosConfig(**FAST))
        leader, followers = split_roles(hosts)
        net.block(leader.node_id, followers[0].node_id)
        future = leader.propose(Command.app("w"))
        sim.run_for(0.2)
        assert future.done and future.exception is None


class TestPendingValues:
    def test_covers_accepted_and_chosen_unapplied(self):
        log = PaxosLog()
        log.mark_chosen(0, "applied")
        log.mark_chosen(1, "chosen-unapplied")
        entry = log.entry(2)
        entry.accepted_ballot = (1, "n0")
        entry.accepted_value = "accepted"
        assert log.pending_values(1) == ["chosen-unapplied", "accepted"]
        assert log.pending_values(2) == ["accepted"]
        assert log.pending_values(3) == []


# ---------------------------------------------------------------------------
# Serve-or-bounce at the group/DHT layer
# ---------------------------------------------------------------------------
def _deploy(seed, *, follower_reads, read_routing, n_clients=6):
    paxos = PaxosConfig(
        heartbeat_interval=0.15,
        election_timeout=0.7,
        lease_duration=0.5,
        retry_interval=0.4,
        compact_threshold=400,
        follower_reads=follower_reads,
    )
    params = DeploymentParams(n_nodes=6, n_groups=2, n_clients=n_clients, seed=seed)
    return build_scatter_deployment(
        params,
        config=experiment_scatter_config(paxos=paxos),
        client_config=ClientConfig(read_routing=read_routing),
    )


class TestServing:
    def run_workload(self, read_routing, read_fraction=0.7, seed=5):
        with tracing(Tracer()) as tracer:
            deployment = _deploy(
                seed, follower_reads=True, read_routing=read_routing
            )
            workload = ClosedLoopWorkload(
                deployment.sim,
                deployment.clients,
                UniformKeys(10),
                read_fraction=read_fraction,
            )
            workload.start()
            deployment.sim.run_for(8.0)
            workload.stop()
            deployment.sim.run_for(1.0)
        return tracer.metrics.counters, workload.all_records()

    def test_round_robin_serves_at_followers_and_linearizes(self):
        counters, records = self.run_workload("round_robin")
        assert counters.get("reads.follower", 0) > 0
        assert counters.get("reads.leader", 0) > 0
        # Contended keys bounce (conflict window) rather than serve stale.
        assert counters.get("reads.bounced", 0) > 0
        result = check_history(records)
        assert result.ok, result.violations

    def test_nearest_routing_serves_and_linearizes(self):
        counters, records = self.run_workload("nearest")
        assert counters.get("reads.follower", 0) > 0
        result = check_history(records)
        assert result.ok, result.violations

    def test_leader_routing_with_knob_off_never_emits_read_counters(self):
        with tracing(Tracer()) as tracer:
            deployment = _deploy(6, follower_reads=False, read_routing="leader")
            workload = ClosedLoopWorkload(
                deployment.sim, deployment.clients, UniformKeys(10), read_fraction=0.7
            )
            workload.start()
            deployment.sim.run_for(5.0)
            workload.stop()
            deployment.sim.run_for(1.0)
        counters = tracer.metrics.counters
        assert counters.get("reads.follower", 0) == 0
        assert counters.get("reads.bounced", 0) == 0
        assert counters.get("reads.leader", 0) > 0


class TestClientConfigValidation:
    def test_bad_read_routing_rejected(self):
        with pytest.raises(ValueError):
            ClientConfig(read_routing="random")


# ---------------------------------------------------------------------------
# Zero perturbation: follower_reads=False == seed behavior
# ---------------------------------------------------------------------------
def _drive(seed, *, follower_reads=False, read_routing="leader"):
    paxos = PaxosConfig(
        heartbeat_interval=0.15,
        election_timeout=0.7,
        lease_duration=0.5,
        retry_interval=0.4,
        compact_threshold=400,
        follower_reads=follower_reads,
    )
    config = experiment_scatter_config(paxos=paxos)
    params = DeploymentParams(n_nodes=9, n_groups=3, n_clients=2, seed=seed)
    deployment = build_scatter_deployment(
        params, config=config, client_config=ClientConfig(read_routing=read_routing)
    )
    workload = ClosedLoopWorkload(
        deployment.sim, deployment.clients, UniformKeys(20), read_fraction=0.5
    )
    workload.start()
    deployment.sim.run_for(10.0)
    workload.stop()
    deployment.sim.run_for(1.0)
    return (
        deployment.sim.events_processed,
        deployment.net.stats.sent,
        deployment.net.stats.delivered,
        [
            (r.op, r.key, round(r.invoke_time, 9), round(r.response_time, 9))
            for r in workload.all_records()
        ],
    )


class TestZeroPerturbation:
    def test_off_is_byte_identical_around_an_enabled_run(self):
        fp_a = _drive(seed=11)
        fp_on = _drive(seed=11, follower_reads=True, read_routing="round_robin")
        fp_b = _drive(seed=11)
        assert fp_a == fp_b
        assert fp_on != fp_a

    def test_enabled_runs_are_deterministic(self):
        kwargs = dict(follower_reads=True, read_routing="round_robin")
        assert _drive(seed=11, **kwargs) == _drive(seed=11, **kwargs)


# ---------------------------------------------------------------------------
# Fuzzer integration
# ---------------------------------------------------------------------------
class TestFuzzKnobs:
    def test_sampled_plans_randomize_follower_reads(self):
        from repro.check import sample_plan

        plans = [sample_plan(7, i) for i in range(24)]
        assert any(p.follower_reads for p in plans)
        assert any(not p.follower_reads for p in plans)

    def test_plan_roundtrip_preserves_the_knob(self):
        from repro.check import sample_plan
        from repro.check.plan import plan_from_dict, plan_to_dict

        plan = next(p for p in (sample_plan(7, i) for i in range(24)) if p.follower_reads)
        assert plan_to_dict(plan)["follower_reads"] is True
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_old_repro_files_deserialize_to_off(self):
        from repro.check import sample_plan
        from repro.check.plan import plan_from_dict, plan_to_dict

        data = plan_to_dict(sample_plan(7, 3))
        data.pop("follower_reads")
        assert plan_from_dict(data).follower_reads is False

    def test_follower_read_plans_run_clean_under_faults(self):
        # Linearizability under partitions and leader churn: force the
        # knob on for sampled plans whose schedules contain partitions
        # and crashes (leader crashes trigger elections mid-workload).
        from repro.check import run_plan, sample_plan

        churny = [
            replace(sample_plan(1, i), follower_reads=True)
            for i in range(8)
            if {e.kind for e in sample_plan(1, i).schedule} & {"partition", "crash"}
        ][:3]
        assert churny, "expected fault-bearing plans among the first eight"
        for plan in churny:
            outcome = run_plan(plan)
            assert not outcome.failed, outcome.failure
            assert outcome.ops_completed > 0

    def test_stale_follower_read_canary_found(self):
        from repro.check import run_plan, sample_plan

        plan = sample_plan(11, 0)
        assert plan.follower_reads  # the canary seed samples the knob on
        outcome = run_plan(plan, bug="stale-follower-read")
        assert outcome.failed
        assert outcome.failure.kind == "linearizability"

    def test_canary_is_harmless_with_the_knob_off(self):
        # The patched conflict check is never consulted when no follower
        # serves reads: the same plan with follower_reads off runs clean.
        from repro.check import run_plan, sample_plan

        plan = replace(sample_plan(11, 0), follower_reads=False)
        outcome = run_plan(plan, bug="stale-follower-read")
        assert not outcome.failed, outcome.failure

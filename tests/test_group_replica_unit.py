"""Unit tests for GroupReplica's deterministic apply logic.

These bypass the network: commands are applied directly, the way the
Paxos layer would in log order, against a fake host.  This pins down the
transaction validation and state-transition rules independent of timing.
"""

import pytest

from repro.consensus.commands import Command
from repro.dht.ring import KEY_SPACE, KeyRange
from repro.group.commands import TxnAbortCmd, TxnCommitCmd
from repro.group.info import GroupGenesis, GroupInfo
from repro.group.replica import GroupReplica, GroupStatus
from repro.store.kvstore import KvOp, OP_PUT
from repro.txn.spec import (
    GroupPlan,
    MergeSpec,
    MigrateSpec,
    RepartitionSpec,
    SplitSpec,
    TxnDecision,
)


class FakeTimer:
    def cancel(self):
        pass


class FakeTransport:
    now = 0.0

    def send(self, dst, msg):
        pass

    def set_timer(self, delay, fn, *args):
        return FakeTimer()

    def rng(self):
        import random

        return random.Random(0)


class FakeHost:
    def __init__(self, node_id="n0"):
        self.node_id = node_id
        self.created = []
        self.retired = []
        self.outcomes = {}
        self.migrations = []

    @property
    def now(self):
        return 0.0

    def group_transport(self, gid):
        return FakeTransport()

    def create_group(self, genesis):
        self.created.append(genesis)

    def on_group_retired(self, gid, forwarding):
        self.retired.append((gid, forwarding))

    def record_txn_outcome(self, txn_id, decision, data):
        self.outcomes[txn_id] = decision

    def after_migrate_commit(self, spec, gid):
        self.migrations.append((spec, gid))


def make_replica(host=None, gid="g", lo=0, hi=0x80000000, members=("n0", "n1", "n2"),
                 pred=None, succ=None):
    host = host or FakeHost()
    genesis = GroupGenesis(
        gid=gid,
        range=KeyRange(lo, hi),
        members=tuple(members),
        initial_leader=members[0],
        predecessor=pred,
        successor=succ,
    )
    replica = GroupReplica(host, genesis)
    return host, replica


def ginfo(gid, lo, hi, members=("x1", "x2")):
    return GroupInfo(gid=gid, range=KeyRange(lo, hi), members=tuple(members), leader_hint=members[0])


def split_spec(replica, key, pred=None, succ=None):
    members = sorted(replica.paxos.members)
    left_range, right_range = replica.range.split_at(key)
    return SplitSpec(
        txn_id="t-split",
        coordinator_gid=replica.gid,
        coordinator_members=tuple(members),
        gid=replica.gid,
        split_key=key,
        left=GroupPlan("gL", left_range, tuple(members[:1]), members[0]),
        right=GroupPlan("gR", right_range, tuple(members[1:]), members[1]),
        pred_gid=pred,
        succ_gid=succ,
    )


def apply_cmd(replica, kind, payload):
    return replica._apply(0, Command(kind=kind, payload=payload))


class TestStorageApply:
    def test_put_applies(self):
        _h, r = make_replica()
        result = r._apply(1, Command(kind="app", payload=KvOp(OP_PUT, 5, "v")))
        assert result.ok

    def test_frozen_rejects_storage(self):
        _h, r = make_replica()
        r.status = GroupStatus.FROZEN
        result = r._apply(1, Command(kind="app", payload=KvOp(OP_PUT, 5, "v")))
        assert not result.ok and result.error == "busy"

    def test_retired_redirects_storage(self):
        _h, r = make_replica()
        r.status = GroupStatus.RETIRED
        result = r._apply(1, Command(kind="app", payload=KvOp(OP_PUT, 5, "v")))
        assert result.error == "moved"


class TestPrepare:
    def test_prepare_locks_and_freezes_data_participant(self):
        _h, r = make_replica()
        spec = split_spec(r, 0x1000)
        status, _ = apply_cmd(r, "txn_prepare", spec)
        assert status == "prepared"
        assert r.status is GroupStatus.FROZEN
        assert r.active_txn is spec

    def test_prepare_is_idempotent_for_same_txn(self):
        _h, r = make_replica()
        spec = split_spec(r, 0x1000)
        apply_cmd(r, "txn_prepare", spec)
        status, _ = apply_cmd(r, "txn_prepare", spec)
        assert status == "prepared"

    def test_second_txn_refused_while_locked(self):
        _h, r = make_replica()
        apply_cmd(r, "txn_prepare", split_spec(r, 0x1000))
        other = split_spec(r, 0x2000)
        object.__setattr__(other, "txn_id", "t-other")
        status, reason = apply_cmd(r, "txn_prepare", other)
        assert status == "refused" and reason == "locked"

    def test_split_with_stale_membership_refused(self):
        _h, r = make_replica()
        spec = split_spec(r, 0x1000)
        object.__setattr__(spec, "left", GroupPlan("gL", spec.left.range, ("ghost",), "ghost"))
        status, reason = apply_cmd(r, "txn_prepare", spec)
        assert status == "refused" and reason == "membership_changed"

    def test_split_key_outside_range_refused(self):
        _h, r = make_replica(lo=0, hi=0x1000)
        spec = split_spec(r, 0x800)
        object.__setattr__(spec, "split_key", 0x2000)
        status, reason = apply_cmd(r, "txn_prepare", spec)
        assert status == "refused" and reason == "bad_split_key"

    def test_completed_txn_cannot_reprepare(self):
        _h, r = make_replica()
        r.completed_txns.add("t-split")
        status, reason = apply_cmd(r, "txn_prepare", split_spec(r, 0x1000))
        assert status == "refused" and reason == "already_completed"

    def test_merge_prepare_returns_snapshot(self):
        succ = ginfo("g2", 0x80000000, 0)
        _h, r = make_replica(succ=succ)
        r.store.apply(KvOp(OP_PUT, 5, "v"))
        spec = MergeSpec(
            txn_id="t-merge", coordinator_gid="g", coordinator_members=("n0",),
            left_gid="g", right_gid="g2",
            merged=GroupPlan("gm", KeyRange.full(), ("n0", "n1", "n2", "x1", "x2"), "n0"),
            outer_pred_info=None, outer_succ_info=None,
        )
        status, data = apply_cmd(r, "txn_prepare", spec)
        assert status == "prepared"
        assert 5 in data.cells

    def test_merge_not_adjacent_refused(self):
        _h, r = make_replica(succ=ginfo("elsewhere", 0x80000000, 0))
        spec = MergeSpec(
            txn_id="t-merge", coordinator_gid="g", coordinator_members=("n0",),
            left_gid="g", right_gid="g2",
            merged=GroupPlan("gm", KeyRange.full(), ("n0",), "n0"),
            outer_pred_info=None, outer_succ_info=None,
        )
        status, reason = apply_cmd(r, "txn_prepare", spec)
        assert status == "refused" and reason == "not_adjacent"

    def test_migrate_prepare_does_not_freeze(self):
        other = ginfo("g2", 0x80000000, 0)
        _h, r = make_replica(succ=other)
        spec = MigrateSpec(
            txn_id="t-mig", coordinator_gid="g", coordinator_members=("n0",),
            node="n2", from_gid="g", to_gid="g2",
        )
        status, _ = apply_cmd(r, "txn_prepare", spec)
        assert status == "prepared"
        assert r.status is GroupStatus.ACTIVE  # membership-only lock

    def test_migrate_of_nonmember_refused(self):
        _h, r = make_replica()
        spec = MigrateSpec(
            txn_id="t-mig", coordinator_gid="g", coordinator_members=("n0",),
            node="ghost", from_gid="g", to_gid="g2",
        )
        status, reason = apply_cmd(r, "txn_prepare", spec)
        assert status == "refused" and reason == "not_a_member"


class TestCommitAndAbort:
    def test_split_commit_creates_my_half_and_retires(self):
        host, r = make_replica()
        r.store.apply(KvOp(OP_PUT, 0x10, "left-key"))
        r.store.apply(KvOp(OP_PUT, 0x7000_0000, "right-key"))
        spec = split_spec(r, 0x1000)  # n0 alone in left half
        apply_cmd(r, "txn_prepare", spec)
        status, _ = apply_cmd(r, "txn_commit", TxnCommitCmd(spec=spec, data={}))
        assert status == "committed"
        assert r.status is GroupStatus.RETIRED
        assert [g.gid for g in host.created] == ["gL"]
        created = host.created[0]
        assert 0x10 in created.kv.cells
        assert 0x7000_0000 not in created.kv.cells
        assert host.retired[0][0] == "g"
        assert host.outcomes["t-split"] is TxnDecision.COMMITTED

    def test_commit_without_prepare_is_ignored(self):
        host, r = make_replica()
        spec = split_spec(r, 0x1000)
        status, _ = apply_cmd(r, "txn_commit", TxnCommitCmd(spec=spec, data={}))
        assert status == "ignored"
        assert r.status is GroupStatus.ACTIVE

    def test_commit_is_idempotent(self):
        host, r = make_replica()
        spec = split_spec(r, 0x1000)
        apply_cmd(r, "txn_prepare", spec)
        apply_cmd(r, "txn_commit", TxnCommitCmd(spec=spec, data={}))
        status, _ = apply_cmd(r, "txn_commit", TxnCommitCmd(spec=spec, data={}))
        assert status == "dup"

    def test_abort_releases_lock(self):
        host, r = make_replica()
        spec = split_spec(r, 0x1000)
        apply_cmd(r, "txn_prepare", spec)
        status, _ = apply_cmd(r, "txn_abort", TxnAbortCmd(spec=spec))
        assert status == "aborted"
        assert r.status is GroupStatus.ACTIVE
        assert r.active_txn is None
        assert host.outcomes["t-split"] is TxnDecision.ABORTED

    def test_abort_then_commit_is_dup(self):
        host, r = make_replica()
        spec = split_spec(r, 0x1000)
        apply_cmd(r, "txn_prepare", spec)
        apply_cmd(r, "txn_abort", TxnAbortCmd(spec=spec))
        status, _ = apply_cmd(r, "txn_commit", TxnCommitCmd(spec=spec, data={}))
        assert status == "dup"
        assert r.status is GroupStatus.ACTIVE

    def test_pointer_participant_updates_successor_on_split(self):
        splitting = ginfo("gs", 0x8000_0000, 0)
        _h, r = make_replica(succ=splitting, pred=splitting)
        spec = SplitSpec(
            txn_id="t-s2", coordinator_gid="gs", coordinator_members=("x1",),
            gid="gs", split_key=0xC000_0000,
            left=GroupPlan("gL", KeyRange(0x8000_0000, 0xC000_0000), ("x1",), "x1"),
            right=GroupPlan("gR", KeyRange(0xC000_0000, 0), ("x2",), "x2"),
            pred_gid="g", succ_gid="g",
        )
        status, _ = apply_cmd(r, "txn_prepare", spec)
        assert status == "prepared"
        assert r.status is GroupStatus.ACTIVE  # pointer-only participant
        apply_cmd(r, "txn_commit", TxnCommitCmd(spec=spec, data={}))
        assert r.successor.gid == "gL"
        assert r.predecessor.gid == "gR"

    def test_repartition_donor_narrows_and_updates_pointers(self):
        succ = ginfo("g2", 0x8000_0000, 0)
        _h, r = make_replica(succ=succ)
        r.store.apply(KvOp(OP_PUT, 0x7000_0000, "moving"))
        r.store.apply(KvOp(OP_PUT, 0x10, "staying"))
        spec = RepartitionSpec(
            txn_id="t-rep", coordinator_gid="g", coordinator_members=("n0",),
            left_gid="g", right_gid="g2", new_boundary=0x6000_0000, donor_gid="g",
        )
        status, data = apply_cmd(r, "txn_prepare", spec)
        assert status == "prepared"
        assert 0x7000_0000 in data.cells
        apply_cmd(r, "txn_commit", TxnCommitCmd(spec=spec, data={"moving_state": data}))
        assert r.range == KeyRange(0, 0x6000_0000)
        assert r.successor.range.lo == 0x6000_0000
        assert 0x7000_0000 not in r.store.keys()
        assert 0x10 in r.store.keys()

    def test_migrate_commit_triggers_leader_followup(self):
        host, r = make_replica()
        r.paxos.is_leader = True
        spec = MigrateSpec(
            txn_id="t-mig", coordinator_gid="g", coordinator_members=("n0",),
            node="n2", from_gid="g", to_gid="g2",
        )
        apply_cmd(r, "txn_prepare", spec)
        apply_cmd(r, "txn_commit", TxnCommitCmd(spec=spec, data={}))
        assert host.migrations == [(spec, "g")]

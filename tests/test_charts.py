"""Tests for the ASCII chart renderer."""

import pytest

from repro.harness.charts import bar, render_chart
from repro.harness.results import ExperimentResult


def result_fixture():
    r = ExperimentResult("EX", "t", ["name", "value", "series"])
    r.add(name="a", value=10.0, series="s1")
    r.add(name="b", value=40.0, series="s1")
    r.add(name="c", value=20.0, series="s2")
    return r


class TestBar:
    def test_full_bar_at_maximum(self):
        assert bar(10, 10, width=10) == "█" * 10

    def test_zero_is_empty(self):
        assert bar(0, 10) == ""
        assert bar(5, 0) == ""

    def test_proportional(self):
        assert len(bar(5, 10, width=10)) in (5, 6)  # half, maybe partial block


class TestRenderChart:
    def test_labels_and_values_present(self):
        text = render_chart(result_fixture(), y="value")
        assert "a |" in text
        assert "40.0" in text

    def test_largest_value_has_longest_bar(self):
        text = render_chart(result_fixture(), y="value", width=20)
        lines = {l.split("|")[0].strip(): l for l in text.splitlines()[1:]}
        assert lines["b"].count("█") > lines["a"].count("█")

    def test_group_by_prefix(self):
        text = render_chart(result_fixture(), y="value", group_by="series")
        assert "s1/a" in text

    def test_unknown_column_raises(self):
        with pytest.raises(ValueError):
            render_chart(result_fixture(), y="nope")

    def test_non_numeric_rows_skipped(self):
        r = ExperimentResult("EX", "t", ["name", "value"])
        r.add(name="x", value="not-a-number")
        r.add(name="y", value=3.0)
        text = render_chart(r, y="value")
        assert "x |" not in text
        assert "y |" in text

    def test_all_non_numeric(self):
        r = ExperimentResult("EX", "t", ["name", "value"])
        r.add(name="x", value="zzz")
        assert "no numeric data" in render_chart(r, y="value")

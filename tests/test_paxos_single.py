"""Unit tests for single-decree Paxos roles and the log."""

import pytest

from repro.consensus import Acceptor, Command, LogEntry, PaxosLog, Proposer


class TestAcceptor:
    def test_promises_higher_ballot(self):
        a = Acceptor()
        reply = a.on_prepare((1, "p1"))
        assert reply.ok
        assert reply.accepted_ballot is None

    def test_rejects_stale_prepare(self):
        a = Acceptor()
        a.on_prepare((2, "p2"))
        reply = a.on_prepare((1, "p1"))
        assert not reply.ok
        assert reply.promised == (2, "p2")

    def test_rejects_equal_prepare(self):
        a = Acceptor()
        a.on_prepare((1, "p1"))
        assert not a.on_prepare((1, "p1")).ok

    def test_accept_below_promise_rejected(self):
        a = Acceptor()
        a.on_prepare((5, "p5"))
        reply = a.on_accept((3, "p3"), "v")
        assert not reply.ok
        assert a.accepted_value is None

    def test_accept_at_promise_succeeds(self):
        a = Acceptor()
        a.on_prepare((5, "p5"))
        assert a.on_accept((5, "p5"), "v").ok
        assert a.accepted_value == "v"

    def test_accept_above_promise_raises_promise(self):
        a = Acceptor()
        a.on_accept((7, "p7"), "v")
        assert a.promised == (7, "p7")
        assert not a.on_prepare((6, "p6")).ok

    def test_promise_reports_accepted_value(self):
        a = Acceptor()
        a.on_accept((1, "p1"), "old")
        reply = a.on_prepare((2, "p2"))
        assert reply.ok
        assert reply.accepted_ballot == (1, "p1")
        assert reply.accepted_value == "old"


class TestProposer:
    def test_fresh_value_when_no_prior_accepts(self):
        p = Proposer(ballot=(1, "a"), quorum_size=2, value="mine")
        a1, a2 = Acceptor(), Acceptor()
        assert not p.on_promise("a1", a1.on_prepare(p.ballot))
        assert p.on_promise("a2", a2.on_prepare(p.ballot))
        assert p.phase2_value == "mine"

    def test_adopts_highest_prior_accept(self):
        p = Proposer(ballot=(5, "a"), quorum_size=2, value="mine")
        a1, a2 = Acceptor(), Acceptor()
        a1.on_accept((1, "x"), "older")
        a2.on_accept((3, "y"), "newer")
        p.on_promise("a1", a1.on_prepare(p.ballot))
        p.on_promise("a2", a2.on_prepare(p.ballot))
        assert p.phase2_value == "newer"

    def test_chooses_after_quorum_accepts(self):
        p = Proposer(ballot=(1, "a"), quorum_size=2, value="v")
        acceptors = {f"a{i}": Acceptor() for i in range(3)}
        for name, acc in acceptors.items():
            p.on_promise(name, acc.on_prepare(p.ballot))
        chosen = False
        for name, acc in acceptors.items():
            if p.on_accepted(name, acc.on_accept(p.ballot, p.phase2_value)):
                chosen = True
        assert chosen
        assert p.chosen_value == "v"

    def test_rejected_promises_dont_count(self):
        p = Proposer(ballot=(1, "a"), quorum_size=2, value="v")
        stale = Acceptor()
        stale.on_prepare((9, "z"))
        assert not p.on_promise("s", stale.on_prepare(p.ballot))
        assert p.phase == 1

    def test_phase2_value_before_quorum_raises(self):
        p = Proposer(ballot=(1, "a"), quorum_size=2, value="v")
        with pytest.raises(RuntimeError):
            _ = p.phase2_value

    def test_quorum_size_validation(self):
        with pytest.raises(ValueError):
            Proposer(ballot=(1, "a"), quorum_size=0, value="v")

    def test_duplicate_accepts_not_double_counted(self):
        p = Proposer(ballot=(1, "a"), quorum_size=2, value="v")
        a1 = Acceptor()
        a2 = Acceptor()
        p.on_promise("a1", a1.on_prepare(p.ballot))
        p.on_promise("a2", a2.on_prepare(p.ballot))
        reply = a1.on_accept(p.ballot, p.phase2_value)
        assert not p.on_accepted("a1", reply)
        assert not p.on_accepted("a1", reply)  # same acceptor again
        assert p.chosen_value is None


class TestPaxosLog:
    def test_commit_index_advances_contiguously(self):
        log = PaxosLog()
        log.mark_chosen(0, "a")
        assert log.commit_index == 0
        log.mark_chosen(2, "c")
        assert log.commit_index == 0
        log.mark_chosen(1, "b")
        assert log.commit_index == 2

    def test_chosen_value_immutable(self):
        log = PaxosLog()
        log.mark_chosen(0, "a")
        log.mark_chosen(0, "a")  # idempotent
        with pytest.raises(AssertionError):
            log.mark_chosen(0, "b")

    def test_chosen_value_lookup(self):
        log = PaxosLog()
        log.mark_chosen(0, "a")
        assert log.chosen_value(0) == "a"
        with pytest.raises(KeyError):
            log.chosen_value(1)

    def test_accepted_from(self):
        log = PaxosLog()
        for slot in (1, 3, 5):
            e = log.entry(slot)
            e.accepted_ballot = (1, "x")
            e.accepted_value = f"v{slot}"
        assert [s for s, _b, _v in log.accepted_from(2)] == [3, 5]
        assert [s for s, _b, _v in log.accepted_from(0)] == [1, 3, 5]

    def test_chosen_range(self):
        log = PaxosLog()
        log.mark_chosen(0, "a")
        log.mark_chosen(1, "b")
        log.mark_chosen(3, "d")
        assert log.chosen_range(0, 3) == [(0, "a"), (1, "b"), (3, "d")]

    def test_max_slot(self):
        log = PaxosLog()
        assert log.max_slot == -1
        log.entry(7).accepted_ballot = (1, "x")
        assert log.max_slot == 7

    def test_entry_default(self):
        e = LogEntry()
        assert not e.chosen
        assert e.accepted_ballot is None


class TestCommand:
    def test_constructors(self):
        assert Command.noop().kind == "noop"
        c = Command.config("add", "n9")
        assert c.payload.member == "n9"
        a = Command.app({"op": "put"}, dedup=("c1", 3))
        assert a.dedup == ("c1", 3)

    def test_bad_config_action_rejected(self):
        with pytest.raises(ValueError):
            Command.config("replace", "n1")

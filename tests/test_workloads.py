"""Unit tests for churn, key distributions, and the workload driver."""

import math
import random

import pytest

from repro.sim import ConstantLatency, SimNetwork, Simulator
from repro.workloads import (
    ChurnProcess,
    UniformKeys,
    ZipfKeys,
    exponential_lifetime,
    pareto_lifetime,
)
from repro.workloads.keys import KeySpace


class TestLifetimes:
    def test_exponential_median(self):
        rng = random.Random(1)
        sample = exponential_lifetime(100.0)
        values = sorted(sample(rng) for _ in range(4000))
        median = values[len(values) // 2]
        assert 90 < median < 110

    def test_pareto_median(self):
        rng = random.Random(2)
        sample = pareto_lifetime(100.0, alpha=1.5)
        values = sorted(sample(rng) for _ in range(4000))
        median = values[len(values) // 2]
        assert 90 < median < 110

    def test_pareto_is_heavier_tailed(self):
        rng = random.Random(3)
        exp = [exponential_lifetime(100.0)(rng) for _ in range(4000)]
        par = [pareto_lifetime(100.0)(rng) for _ in range(4000)]
        assert max(par) > max(exp)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_lifetime(0)
        with pytest.raises(ValueError):
            pareto_lifetime(-1)


class FakeSystem:
    """Minimal ChurnTarget for unit-testing the process."""

    def __init__(self, sim, n):
        self.sim = sim
        self.alive = {f"n{i}" for i in range(n)}
        self.counter = n

    def kill_node(self, node_id):
        self.alive.discard(node_id)

    def add_node(self, seed=None):
        name = f"n{self.counter}"
        self.counter += 1
        self.alive.add(name)

        class N:
            node_id = name

        return N()

    def alive_node_ids(self):
        return sorted(self.alive)


class TestChurnProcess:
    def test_population_stays_steady(self):
        sim = Simulator(seed=4)
        system = FakeSystem(sim, 20)
        churn = ChurnProcess(sim, system, exponential_lifetime(50.0), join_delay=0.1)
        churn.start()
        sim.run_until(500.0)
        assert churn.departures > 20  # several generations churned
        assert 15 <= len(system.alive) <= 25

    def test_no_replacement_shrinks_population(self):
        sim = Simulator(seed=5)
        system = FakeSystem(sim, 20)
        churn = ChurnProcess(sim, system, exponential_lifetime(50.0), replace=False)
        churn.start()
        sim.run_until(400.0)
        assert len(system.alive) < 10

    def test_stop_halts_churn(self):
        sim = Simulator(seed=6)
        system = FakeSystem(sim, 10)
        churn = ChurnProcess(sim, system, exponential_lifetime(10.0))
        churn.start()
        sim.run_until(5.0)
        churn.stop()
        before = churn.departures
        sim.run_until(100.0)
        assert churn.departures == before

    def test_deterministic(self):
        def run(seed):
            sim = Simulator(seed=seed)
            system = FakeSystem(sim, 10)
            churn = ChurnProcess(sim, system, exponential_lifetime(20.0))
            churn.start()
            sim.run_until(100.0)
            return (churn.departures, sorted(system.alive))

        assert run(7) == run(7)


class TestKeySpaces:
    def test_uniform_covers_keys(self):
        keys = UniformKeys(10)
        rng = random.Random(8)
        seen = {keys.sample(rng) for _ in range(500)}
        assert seen == set(keys.all_keys())

    def test_zipf_skews_toward_low_ranks(self):
        keys = ZipfKeys(100, theta=1.0)
        rng = random.Random(9)
        counts = {}
        for _ in range(5000):
            k = keys.sample(rng)
            counts[k] = counts.get(k, 0) + 1
        top = counts.get(keys.key(0), 0)
        mid = counts.get(keys.key(50), 0)
        assert top > 10 * max(mid, 1)

    def test_zipf_theta_zero_is_uniform_ish(self):
        keys = ZipfKeys(10, theta=0.0)
        rng = random.Random(10)
        counts = {}
        for _ in range(5000):
            k = keys.sample(rng)
            counts[k] = counts.get(k, 0) + 1
        assert max(counts.values()) < 2 * min(counts.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformKeys(0)
        with pytest.raises(ValueError):
            ZipfKeys(10, theta=-1)

    def test_key_naming(self):
        keys = UniformKeys(3, prefix="user")
        assert keys.key(2) == "user-2"

"""End-to-end tests of the multi-group transactions (split/merge/etc.)."""

import pytest

from repro.dht.client import ScatterClient
from repro.dht.ring import KEY_SPACE, hash_key
from repro.dht.system import ScatterSystem
from repro.group.replica import GroupStatus
from repro.policies import ScatterPolicy
from repro.sim import ConstantLatency, SimNetwork, Simulator

from test_scatter_basic import fast_config, make_client

# Policy that never fires on its own: ops are triggered manually.
MANUAL = ScatterPolicy(target_size=5, split_size=999, merge_size=0)


def build_manual(n_nodes, n_groups, seed=2):
    sim = Simulator(seed=seed)
    net = SimNetwork(sim, latency=ConstantLatency(0.004))
    system = ScatterSystem.build(
        sim, net, n_nodes=n_nodes, n_groups=n_groups, config=fast_config(), policy=MANUAL
    )
    sim.run_for(2.0)
    return sim, net, system


def seed_data(sim, net, system, n=30):
    client = make_client(sim, net, system)
    for i in range(n):
        client.put(f"key-{i}", i)
    sim.run_for(6.0)
    assert all(r.ok for r in (f.result() for f in []) ) or True
    return client


def all_data_reachable(sim, net, system, client, n=30):
    futures = [client.get(f"key-{i}") for i in range(n)]
    sim.run_for(10.0)
    return [i for i, f in enumerate(futures) if not (f.done and f.exception is None and f.result().ok and f.result().value == i)]


class TestSplit:
    def test_split_creates_two_groups(self):
        sim, net, system = build_manual(n_nodes=6, n_groups=1)
        gid, replica = next(iter(system.active_groups().items()))
        leader = system.leader_of(gid)
        fut = leader.host.start_split(leader)
        sim.run_for(8.0)
        assert fut.result() == "committed"
        groups = system.active_groups()
        assert len(groups) == 2
        assert system.ring_is_consistent()
        sizes = sorted(len(g.members) for g in groups.values())
        assert sizes == [3, 3]

    def test_split_preserves_data(self):
        sim, net, system = build_manual(n_nodes=6, n_groups=1)
        client = seed_data(sim, net, system)
        before = system.total_keys()
        gid = next(iter(system.active_groups()))
        leader = system.leader_of(gid)
        fut = leader.host.start_split(leader)
        sim.run_for(8.0)
        assert fut.result() == "committed"
        assert system.total_keys() == before
        assert all_data_reachable(sim, net, system, client) == []

    def test_split_updates_neighbor_pointers(self):
        sim, net, system = build_manual(n_nodes=9, n_groups=3)
        gid = "g1"
        leader = system.leader_of(gid)
        fut = leader.host.start_split(leader)
        sim.run_for(8.0)
        assert fut.result() == "committed"
        groups = system.active_groups()
        assert len(groups) == 4
        assert system.ring_is_consistent()
        # Neighbors' pointers reference the new halves, not g1.
        for g in groups.values():
            if g.predecessor is not None:
                assert g.predecessor.gid != gid
            if g.successor is not None:
                assert g.successor.gid != gid

    def test_split_of_ring_of_one_links_halves(self):
        sim, net, system = build_manual(n_nodes=4, n_groups=1)
        gid = next(iter(system.active_groups()))
        leader = system.leader_of(gid)
        leader.host.start_split(leader)
        sim.run_for(8.0)
        groups = system.active_groups()
        assert len(groups) == 2
        a, b = groups.values()
        assert a.successor.gid == b.gid and a.predecessor.gid == b.gid
        assert b.successor.gid == a.gid and b.predecessor.gid == a.gid

    def test_policy_driven_split_fires(self):
        sim = Simulator(seed=5)
        net = SimNetwork(sim, latency=ConstantLatency(0.004))
        policy = ScatterPolicy(target_size=3, split_size=6, merge_size=1)
        system = ScatterSystem.build(
            sim, net, n_nodes=8, n_groups=1, config=fast_config(), policy=policy
        )
        sim.run_for(20.0)
        assert system.group_count() >= 2
        assert system.ring_is_consistent()


class TestMerge:
    def test_merge_two_groups(self):
        sim, net, system = build_manual(n_nodes=6, n_groups=2)
        gid = "g0"
        leader = system.leader_of(gid)
        fut = leader.host.start_merge(leader)
        sim.run_for(10.0)
        assert fut.result() == "committed"
        groups = system.active_groups()
        assert len(groups) == 1
        merged = next(iter(groups.values()))
        assert merged.range.is_full
        assert len(merged.members) == 6
        assert system.ring_is_consistent()

    def test_merge_preserves_data(self):
        sim, net, system = build_manual(n_nodes=6, n_groups=2)
        client = seed_data(sim, net, system)
        before = system.total_keys()
        leader = system.leader_of("g0")
        fut = leader.host.start_merge(leader)
        sim.run_for(10.0)
        assert fut.result() == "committed"
        assert system.total_keys() == before
        assert all_data_reachable(sim, net, system, client) == []

    def test_merge_in_larger_ring_updates_outer_pointers(self):
        sim, net, system = build_manual(n_nodes=12, n_groups=4)
        leader = system.leader_of("g1")
        fut = leader.host.start_merge(leader)  # merges g1 + g2
        sim.run_for(10.0)
        assert fut.result() == "committed"
        groups = system.active_groups()
        assert len(groups) == 3
        assert system.ring_is_consistent()
        merged_gid = next(g for g in groups if g not in ("g0", "g3"))
        assert groups["g0"].successor.gid == merged_gid
        assert groups["g3"].predecessor.gid == merged_gid

    def test_policy_driven_merge_fires(self):
        sim = Simulator(seed=6)
        net = SimNetwork(sim, latency=ConstantLatency(0.004))
        policy = ScatterPolicy(target_size=4, split_size=12, merge_size=3)
        system = ScatterSystem.build(
            sim, net, n_nodes=6, n_groups=2, config=fast_config(), policy=policy
        )
        sim.run_for(25.0)
        assert system.group_count() == 1


class TestMigrate:
    def test_migrate_moves_member(self):
        sim, net, system = build_manual(n_nodes=7, n_groups=2)
        groups = system.active_groups()
        from_leader = system.leader_of("g0")
        to_info = system.active_groups()["g1"].info()
        mover = [m for m in from_leader.members if m != from_leader.paxos.replica_id][0]
        fut = from_leader.host.start_migrate(from_leader, mover, to_info)
        sim.run_for(15.0)
        assert fut.result() == "committed"
        g0 = system.leader_of("g0")
        g1 = system.leader_of("g1")
        assert mover not in g0.members
        assert mover in g1.members
        # The moved node hosts the new group's replica.
        assert "g1" in system.nodes[mover].groups

    def test_migrated_node_serves_new_group(self):
        sim, net, system = build_manual(n_nodes=7, n_groups=2)
        client = seed_data(sim, net, system)
        from_leader = system.leader_of("g0")
        to_info = system.active_groups()["g1"].info()
        mover = [m for m in from_leader.members if m != from_leader.paxos.replica_id][0]
        from_leader.host.start_migrate(from_leader, mover, to_info)
        sim.run_for(15.0)
        replica = system.nodes[mover].groups.get("g1")
        assert replica is not None
        sim.run_for(5.0)
        leader = system.leader_of("g1")
        for key in leader.owned_keys():
            assert replica.store.get(key).ok


class TestRepartition:
    def test_boundary_moves_and_data_follows(self):
        sim, net, system = build_manual(n_nodes=6, n_groups=2)
        client = seed_data(sim, net, system)
        g0 = system.leader_of("g0")
        old_hi = g0.range.hi
        new_boundary = old_hi - (g0.range.size() // 4)
        moving_keys = g0.owned_keys()
        fut = g0.host.start_repartition(g0, new_boundary)
        sim.run_for(10.0)
        assert fut.result() == "committed"
        g0 = system.leader_of("g0")
        g1 = system.leader_of("g1")
        assert g0.range.hi == new_boundary
        assert g1.range.lo == new_boundary
        assert system.ring_is_consistent()
        assert all_data_reachable(sim, net, system, client) == []

    def test_repartition_toward_successor(self):
        # Boundary inside the successor's range: successor donates keys.
        sim, net, system = build_manual(n_nodes=6, n_groups=2)
        client = seed_data(sim, net, system)
        g0 = system.leader_of("g0")
        g1 = system.leader_of("g1")
        new_boundary = g1.range.lo + g1.range.size() // 4
        fut = g0.host.start_repartition(g0, new_boundary)
        sim.run_for(10.0)
        assert fut.result() == "committed"
        g0 = system.leader_of("g0")
        g1 = system.leader_of("g1")
        assert g0.range.hi == new_boundary
        assert g1.range.lo == new_boundary
        assert all_data_reachable(sim, net, system, client) == []


class TestTxnConflicts:
    def test_concurrent_conflicting_merges_resolve_cleanly(self):
        sim, net, system = build_manual(n_nodes=9, n_groups=3)
        l0 = system.leader_of("g0")
        l1 = system.leader_of("g1")
        # g0 merges with g1 while g1 tries to merge with g2.  The common
        # participant can only prepare for one; depending on arrival
        # order one commits, or both abort (mutual refusal).  Either way
        # every lock is released and the ring stays consistent.
        f0 = l0.host.start_merge(l0)
        f1 = l1.host.start_merge(l1)
        sim.run_for(15.0)
        assert f0.done and f1.done
        outcomes = [f.result() if f.exception is None else "error" for f in (f0, f1)]
        assert outcomes.count("committed") <= 1
        for g in system.active_groups().values():
            assert g.active_txn is None
        assert system.ring_is_consistent()
        # A retry after the dust settles succeeds.
        leader = system.leader_of(sorted(system.active_groups())[0])
        f2 = leader.host.start_merge(leader)
        sim.run_for(15.0)
        assert f2.exception is None and f2.result() == "committed"

    def test_operations_resume_after_abort(self):
        sim, net, system = build_manual(n_nodes=9, n_groups=3)
        client = seed_data(sim, net, system, n=10)
        l0 = system.leader_of("g0")
        l1 = system.leader_of("g1")
        l0.host.start_merge(l0)
        l1.host.start_merge(l1)
        sim.run_for(20.0)
        assert all_data_reachable(sim, net, system, client, n=10) == []


class TestNonBlocking:
    def test_coordinator_leader_death_does_not_block_participants(self):
        """The signature claim: 2PC over Paxos groups is non-blocking."""
        sim, net, system = build_manual(n_nodes=9, n_groups=3)
        l1 = system.leader_of("g1")
        coordinator_node = l1.paxos.replica_id
        l1.host.start_merge(l1)
        # Kill the coordinating leader shortly after it starts driving.
        sim.run_for(0.3)
        system.kill_node(coordinator_node)
        sim.run_for(40.0)
        # No group stays frozen: the txn committed or aborted everywhere.
        for gid, g in system.active_groups().items():
            assert g.status is not GroupStatus.FROZEN, f"{gid} still frozen"
            assert g.active_txn is None, f"{gid} still locked"
        assert system.ring_is_consistent()

"""Tests for the linearizability checkers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_history, check_key_history, wing_gong_check
from repro.analysis.linearizability import NOT_FOUND, Op
from repro.dht.client import OpRecord
from repro.store.kvstore import KvResult

INF = float("inf")


def rec(op, key, value, inv, resp, ok=True, rvalue=None, error=None):
    r = OpRecord(op=op, key=key, value=value, invoke_time=inv)
    r.response_time = resp
    r.result = KvResult(ok=ok, value=rvalue if op == "get" else None, error=error)
    return r


def put(key, value, inv, resp, ok=True):
    return rec("put", key, value, inv, resp, ok=ok)


def get(key, rvalue, inv, resp):
    if rvalue is NOT_FOUND:
        return rec("get", key, None, inv, resp, ok=False, error="not_found")
    return rec("get", key, None, inv, resp, ok=True, rvalue=rvalue)


def pending_put(key, value, inv):
    r = OpRecord(op="put", key=key, value=value, invoke_time=inv)
    r.response_time = inv + 100
    r.result = KvResult(ok=False, error="timeout")
    return r


class TestFastChecker:
    def test_clean_history_passes(self):
        history = [put(1, "a", 0, 1), get(1, "a", 2, 3), put(1, "b", 4, 5), get(1, "b", 6, 7)]
        assert check_key_history(1, history).ok

    def test_stale_read_detected(self):
        history = [put(1, "a", 0, 1), put(1, "b", 2, 3), get(1, "a", 4, 5)]
        result = check_key_history(1, history)
        assert [v.kind for v in result.violations] == ["stale_read"]

    def test_lost_write_detected(self):
        history = [put(1, "a", 0, 1), get(1, NOT_FOUND, 2, 3)]
        result = check_key_history(1, history)
        assert [v.kind for v in result.violations] == ["lost_write"]

    def test_phantom_read_detected(self):
        history = [put(1, "a", 0, 1), get(1, "zzz", 2, 3)]
        result = check_key_history(1, history)
        assert [v.kind for v in result.violations] == ["phantom_read"]

    def test_future_read_detected(self):
        history = [get(1, "a", 0, 1), put(1, "a", 2, 3)]
        result = check_key_history(1, history)
        assert [v.kind for v in result.violations] == ["future_read"]

    def test_concurrent_writes_allow_either_value(self):
        # Two overlapping writes: a later read may see either.
        history = [
            put(1, "a", 0, 10),
            put(1, "b", 0, 10),
            get(1, "a", 11, 12),
        ]
        assert check_key_history(1, history).ok

    def test_read_overlapping_write_may_see_it(self):
        history = [put(1, "a", 0, 1), put(1, "b", 2, 10), get(1, "b", 3, 4)]
        assert check_key_history(1, history).ok

    def test_pending_write_value_is_legal(self):
        history = [pending_put(1, "a", 0), get(1, "a", 50, 51)]
        assert check_key_history(1, history).ok

    def test_pending_write_not_required(self):
        history = [pending_put(1, "a", 0), get(1, NOT_FOUND, 50, 51)]
        assert check_key_history(1, history).ok

    def test_check_history_groups_keys(self):
        history = [
            put(1, "a", 0, 1),
            put(2, "x", 0, 1),
            get(1, "a", 2, 3),
            get(2, NOT_FOUND, 2, 3),  # violation on key 2 only
        ]
        result = check_history(history)
        assert len(result.violations) == 1
        assert result.violations[0].key == 2
        assert result.total_reads == 2
        assert result.total_writes == 2

    def test_timed_out_read_ignored(self):
        r = OpRecord(op="get", key=1, value=None, invoke_time=0)
        r.response_time = 8
        r.result = KvResult(ok=False, error="timeout")
        result = check_key_history(1, [put(1, "a", 1, 2), r])
        assert result.ok
        assert result.total_reads == 0


class TestWingGong:
    def test_trivial_sequential(self):
        ops = [Op("write", "a", 0, 1), Op("read", "a", 2, 3)]
        assert wing_gong_check(ops)

    def test_stale_read_rejected(self):
        ops = [Op("write", "a", 0, 1), Op("write", "b", 2, 3), Op("read", "a", 4, 5)]
        assert not wing_gong_check(ops)

    def test_concurrent_reads_split_decision(self):
        # w(a) then concurrent w(b) and two reads; one sees a, one sees b —
        # legal iff read(a) linearizes before w(b) and read(b) after.
        ops = [
            Op("write", "a", 0, 1),
            Op("write", "b", 2, 10),
            Op("read", "a", 3, 4),
            Op("read", "b", 5, 6),
        ]
        assert wing_gong_check(ops)

    def test_read_inversion_rejected(self):
        # read(b) completes before read(a) starts: b then a is an inversion.
        ops = [
            Op("write", "a", 0, 1),
            Op("write", "b", 2, 10),
            Op("read", "b", 3, 4),
            Op("read", "a", 5, 6),
        ]
        assert not wing_gong_check(ops)

    def test_pending_write_optional(self):
        ops = [Op("write", "a", 0, INF), Op("read", NOT_FOUND, 1, 2)]
        assert wing_gong_check(ops)
        ops2 = [Op("write", "a", 0, INF), Op("read", "a", 1, 2)]
        assert wing_gong_check(ops2)

    def test_initial_state_reads(self):
        assert wing_gong_check([Op("read", NOT_FOUND, 0, 1)])
        assert not wing_gong_check([Op("read", "ghost", 0, 1)])

    def test_size_guard(self):
        ops = [Op("write", i, i, i + 0.5) for i in range(25)]
        with pytest.raises(ValueError):
            wing_gong_check(ops)


@settings(max_examples=150, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.sampled_from(["read", "write"]),
            st.integers(0, 3),  # value index
            st.floats(0, 50),  # invoke
            st.floats(0.1, 10),  # duration
        ),
        min_size=1,
        max_size=7,
    )
)
def test_fast_checker_never_flags_what_wing_gong_accepts(data):
    """Soundness: fast-checker violations imply Wing-Gong rejection.

    Build a random history, run both checkers; whenever the fast checker
    reports a violation, the exhaustive checker must also reject.
    (The converse need not hold — the fast checker is incomplete.)
    """
    # Make write values unique by suffixing an index; reads pick among them.
    ops = []
    records = []
    write_values = []
    for i, (kind, vidx, inv, dur) in enumerate(data):
        resp = inv + dur
        if kind == "write":
            value = f"v{vidx}_{i}"
            write_values.append(value)
            ops.append(Op("write", value, inv, resp))
            records.append(put(9, value, inv, resp))
        else:
            value = f"v{vidx}_{vidx}" if not write_values else write_values[vidx % len(write_values)]
            ops.append(Op("read", value, inv, resp))
            records.append(get(9, value, inv, resp))
    fast = check_key_history(9, records)
    if not fast.ok:
        assert not wing_gong_check(ops)

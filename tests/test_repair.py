"""Self-healing repair loop and dead-group verdict tests.

The repair loop (``ScatterPolicy(repair=True)``) is the tentpole of the
robustness work: a group whose *live* membership sits below the repair
floor past the suspicion horizon pulls a spare in from a donor group
(or merges away) through its own Paxos log.  These tests pin the three
load-bearing properties:

1. a permanently-lost seat is refilled and the data survives;
2. with repair off the group stays degraded — the refill really is the
   repair loop, not some other maintenance path;
3. with no faults at all, flipping ``repair`` on changes *nothing*
   client-visible (the zero-perturbation guard for the experiment suite).

Plus the :class:`GroupQuorumWatch` verdict logic the harness uses to
tell "permanently below quorum" from a transient dip.
"""

from __future__ import annotations

from repro.analysis import GroupQuorumWatch
from repro.faults import FaultTarget
from repro.group.replica import GroupStatus
from repro.harness.builders import (
    DeploymentParams,
    build_scatter_deployment,
    experiment_scatter_config,
)
from repro.policies import ScatterPolicy
from repro.sim import Simulator
from repro.workloads import UniformKeys
from repro.workloads.driver import ClosedLoopWorkload

# Churn-matched repair cadence (the E18 tuning): detect dead in 1.5 s,
# repair after 2.5 s of suspicion.  Keeps these tests short.
REPAIR_CONFIG = dict(
    maintenance_interval=0.5,
    dead_timeout=1.5,
    repair_suspicion=2.5,
    txn_cooldown=1.0,
    gossip_interval=2.0,
)


def build(repair, seed=5, n_nodes=15, n_groups=3):
    params = DeploymentParams(
        n_nodes=n_nodes, n_groups=n_groups, n_clients=2, seed=seed
    )
    policy = ScatterPolicy(
        target_size=5, split_size=11, merge_size=3, repair=repair
    )
    deployment = build_scatter_deployment(
        params, policy=policy, config=experiment_scatter_config(**REPAIR_CONFIG)
    )
    return deployment.sim, deployment.system, deployment.clients


def settle(sim, future, cap=10.0):
    deadline = sim.now + cap
    while not future.done and sim.now < deadline:
        sim.run_for(0.25)
    assert future.done and future.exception is None
    return future.result()


def attending(system, gid):
    """Live nodes hosting a non-retired replica of ``gid``."""
    count = 0
    for node in system.nodes.values():
        if not node.alive:
            continue
        replica = node.groups.get(gid)
        if replica is None or replica.status is GroupStatus.RETIRED:
            continue
        if replica.paxos.retired:
            continue
        count += 1
    return count


def lose_members(sim, system, gid, n):
    """Permanently lose ``n`` members of ``gid``; returns the victims."""
    target = FaultTarget.for_system(system)
    members = sorted(system.active_groups()[gid].paxos.members)
    victims = [m for m in members if system.nodes[m].alive][:n]
    for v in victims:
        assert target.node_loss(v)
    return victims


class TestRepairLoop:
    def test_permanent_loss_is_refilled_and_data_survives(self):
        sim, system, clients = build(repair=True)
        put = settle(sim, clients[0].put("stable", "kept"))
        assert put.ok
        gid = sorted(system.active_groups())[0]
        before = attending(system, gid)
        victims = lose_members(sim, system, gid, 2)
        sim.run_for(30.0)
        groups = system.active_groups()
        if gid in groups:
            # Refilled: back at (or above) the repair floor, and the
            # corpses are off the roster — membership really turned over.
            assert attending(system, gid) >= before - 0  # refilled to floor
            assert attending(system, gid) >= 5
            roster = set(groups[gid].paxos.members)
            assert not (roster & set(victims))
        else:
            # The policy may heal by merging the group away instead;
            # the ring must still be whole.
            assert system.ring_is_consistent()
        got = settle(sim, clients[1].get("stable"))
        assert got.ok and got.value == "kept"

    def test_without_repair_the_group_stays_degraded(self):
        sim, system, clients = build(repair=False)
        gid = sorted(system.active_groups())[0]
        before = attending(system, gid)
        lose_members(sim, system, gid, 2)
        sim.run_for(30.0)
        # Dead members fall off the roster, but nobody refills the
        # seats: live replication stays below where it started.
        assert attending(system, gid) <= before - 2

    def test_audit_stays_clean_through_repair(self):
        sim, system, clients = build(repair=True, seed=11)
        gid = sorted(system.active_groups())[-1]
        lose_members(sim, system, gid, 2)
        sim.run_for(30.0)
        assert system.audit() == []


class TestZeroPerturbation:
    """Flipping ``repair`` on must be invisible until a fault happens."""

    @staticmethod
    def fingerprint(repair):
        sim, system, clients = build(repair=repair, seed=7)
        workload = ClosedLoopWorkload(
            sim, clients, UniformKeys(20), read_fraction=0.5
        )
        workload.start()
        sim.run_for(20.0)
        workload.stop()
        sim.run_for(1.0)
        return [
            (r.op, r.key, round(r.invoke_time, 9), round(r.response_time, 9))
            for r in workload.all_records()
        ]

    def test_fault_free_runs_identical_with_and_without_repair(self):
        assert self.fingerprint(False) == self.fingerprint(True)


class TestGroupQuorumWatch:
    """Verdict logic: dead vs transient vs merged-away."""

    @staticmethod
    def watch_with_script(script):
        """Drive a watch off a scripted probe: sample index -> snapshot."""
        sim = Simulator(seed=1)
        samples = iter(script)
        state = {"current": script[0]}

        def probe():
            try:
                state["current"] = next(samples)
            except StopIteration:
                pass
            return state["current"]

        watch = GroupQuorumWatch(sim, probe, check_interval=1.0)
        watch.start()
        sim.run_for(len(script) + 1.0)
        watch.stop()
        return watch

    def test_persistently_below_quorum_is_dead(self):
        watch = self.watch_with_script(
            [{"g1": (3, 5)}] + [{"g1": (2, 5)}] * 5
        )
        verdicts = watch.verdicts()
        assert verdicts["g1"].verdict == "dead"
        assert watch.dead_groups()["g1"] is not None

    def test_recovered_dip_is_transient_not_dead(self):
        watch = self.watch_with_script(
            [{"g1": (3, 5)}, {"g1": (2, 5)}, {"g1": (2, 5)}, {"g1": (3, 5)}]
            + [{"g1": (3, 5)}] * 3
        )
        verdicts = watch.verdicts()
        assert verdicts["g1"].verdict == "transient"
        assert verdicts["g1"].dips == 1
        assert watch.dead_groups() == {}

    def test_merged_away_group_is_not_dead(self):
        # g2 drops below quorum, then vanishes from the sample: it was
        # merged away by repair, which is a heal, not a death.
        watch = self.watch_with_script(
            [{"g1": (3, 5), "g2": (2, 5)}] * 2 + [{"g1": (3, 5)}] * 4
        )
        gids = set(watch.verdicts())
        assert gids == {"g1"}
        assert watch.dead_groups() == {}

    def test_healthy_group_reports_healthy(self):
        watch = self.watch_with_script([{"g1": (5, 5)}] * 4)
        verdicts = watch.verdicts()
        assert verdicts["g1"].verdict == "healthy"
        assert verdicts["g1"].first_below is None

"""Tests for synthetic session traces and trace replay."""

import pytest

from repro.dht.system import ScatterSystem
from repro.policies import ScatterPolicy
from repro.sim import ConstantLatency, SimNetwork, Simulator
from repro.workloads.traces import SessionEvent, TraceChurn, synthesize_trace, trace_stats

from test_scatter_basic import fast_config


class TestSynthesis:
    def test_median_session_close_to_target(self):
        events = synthesize_trace(duration=5000, median_session=200, arrival_rate=0.5, seed=1)
        stats = trace_stats(events)
        assert stats["sessions"] > 1000
        assert 150 < stats["median_session"] < 260

    def test_deterministic(self):
        a = synthesize_trace(duration=100, seed=9)
        b = synthesize_trace(duration=100, seed=9)
        assert a == b
        c = synthesize_trace(duration=100, seed=10)
        assert a != c

    def test_diurnal_concentrates_arrivals_mid_trace(self):
        events = synthesize_trace(
            duration=1000, arrival_rate=0.5, diurnal=True, seed=2
        )
        mid = [e for e in events if 250 < e.start < 750]
        edges = [e for e in events if e.start <= 250 or e.start >= 750]
        assert len(mid) > len(edges)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_trace(duration=0)
        with pytest.raises(ValueError):
            SessionEvent(start=5, end=5)

    def test_stats_peak_concurrency(self):
        events = [SessionEvent(0, 10), SessionEvent(1, 5), SessionEvent(20, 30)]
        assert trace_stats(events)["peak_concurrent"] == 2

    def test_stats_empty(self):
        assert trace_stats([])["sessions"] == 0


class TestReplay:
    def test_trace_replay_drives_membership(self):
        sim = Simulator(seed=3)
        net = SimNetwork(sim, latency=ConstantLatency(0.004))
        system = ScatterSystem.build(
            sim, net, n_nodes=10, n_groups=2, config=fast_config(),
            policy=ScatterPolicy(target_size=5, split_size=12, merge_size=2),
        )
        sim.run_for(2.0)
        events = [
            SessionEvent(start=1.0, end=20.0),
            SessionEvent(start=2.0, end=8.0),
            SessionEvent(start=5.0, end=40.0),
        ]
        churn = TraceChurn(sim, system, events)
        churn.start()
        sim.run_for(50.0)
        assert churn.arrivals == 3
        assert churn.departures == 3
        assert system.group_count() >= 1

    def test_stop_cancels_future_events(self):
        sim = Simulator(seed=4)
        net = SimNetwork(sim, latency=ConstantLatency(0.004))
        system = ScatterSystem.build(sim, net, n_nodes=6, n_groups=2, config=fast_config())
        sim.run_for(1.0)
        churn = TraceChurn(sim, system, [SessionEvent(start=100.0, end=120.0)])
        churn.start()
        churn.stop()
        sim.run_for(150.0)
        assert churn.arrivals == 0

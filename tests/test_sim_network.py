"""Unit tests for latency models and the simulated network."""

import random

import pytest

from repro.sim import (
    ConstantLatency,
    LogNormalLatency,
    SimNetwork,
    Simulator,
    UniformLatency,
    WanLatencyMatrix,
)


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.01)
        rng = random.Random(0)
        assert model.sample("a", "b", rng) == 0.01
        assert model.expected("a", "b") == 0.01

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantLatency(0.0)

    def test_uniform_bounds(self):
        model = UniformLatency(0.001, 0.01)
        rng = random.Random(1)
        samples = [model.sample("a", "b", rng) for _ in range(200)]
        assert all(0.001 <= s < 0.01 for s in samples)
        assert model.expected("a", "b") == pytest.approx(0.0055)

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.01, 0.001)

    def test_lognormal_positive_and_tail(self):
        model = LogNormalLatency(base=0.002, sigma=0.5)
        rng = random.Random(2)
        samples = [model.sample("a", "b", rng) for _ in range(500)]
        assert all(s > 0 for s in samples)
        assert max(samples) > 2 * min(samples)  # genuine spread

    def test_wan_matrix_is_deterministic_per_name(self):
        m1 = WanLatencyMatrix(seed=7)
        m2 = WanLatencyMatrix(seed=7)
        assert m1.coord("n1") == m2.coord("n1")
        assert m1.base_latency("n1", "n2") == m2.base_latency("n1", "n2")

    def test_wan_matrix_symmetric_base(self):
        m = WanLatencyMatrix(seed=3)
        assert m.base_latency("a", "b") == pytest.approx(m.base_latency("b", "a"))

    def test_wan_matrix_self_latency_is_floor(self):
        m = WanLatencyMatrix(seed=3, floor=0.002)
        assert m.base_latency("a", "a") == 0.002

    def test_wan_matrix_heterogeneous(self):
        m = WanLatencyMatrix(seed=5)
        lats = {m.base_latency("a", other) for other in "bcdefgh"}
        assert len(lats) > 1


class TestSimNetwork:
    def _net(self, **kwargs):
        sim = Simulator(seed=1)
        net = SimNetwork(sim, **kwargs)
        return sim, net

    def test_basic_delivery(self):
        sim, net = self._net(latency=ConstantLatency(0.01))
        got = []
        net.register("b", lambda src, msg: got.append((src, msg, sim.now)))
        net.send("a", "b", "hello")
        sim.run()
        assert got == [("a", "hello", 0.01)]

    def test_message_to_unregistered_is_dropped(self):
        sim, net = self._net()
        net.send("a", "nowhere", "x")
        sim.run()
        assert net.stats.to_dead == 1

    def test_down_destination_swallows_message(self):
        sim, net = self._net()
        got = []
        net.register("b", lambda s, m: got.append(m))
        net.set_down("b")
        net.send("a", "b", "x")
        sim.run()
        assert got == []
        assert net.stats.to_dead == 1

    def test_down_source_cannot_send(self):
        sim, net = self._net()
        got = []
        net.register("b", lambda s, m: got.append(m))
        net.register("a", lambda s, m: None)
        net.set_down("a")
        net.send("a", "b", "x")
        sim.run()
        assert got == []

    def test_crash_in_flight_loses_message(self):
        sim, net = self._net(latency=ConstantLatency(0.01))
        got = []
        net.register("b", lambda s, m: got.append(m))
        net.send("a", "b", "x")
        sim.schedule(0.005, net.set_down, "b")
        sim.run()
        assert got == []

    def test_recovery_allows_delivery_again(self):
        sim, net = self._net()
        got = []
        net.register("b", lambda s, m: got.append(m))
        net.set_down("b")
        net.set_up("b")
        net.send("a", "b", "x")
        sim.run()
        assert got == ["x"]

    def test_drop_probability(self):
        sim, net = self._net(drop_prob=0.5)
        got = []
        net.register("b", lambda s, m: got.append(m))
        for _ in range(400):
            net.send("a", "b", "x")
        sim.run()
        assert 100 < len(got) < 300

    def test_drop_prob_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SimNetwork(sim, drop_prob=1.0)

    def test_partition_blocks_both_directions(self):
        sim, net = self._net()
        got = []
        net.register("a", lambda s, m: got.append(("a", m)))
        net.register("b", lambda s, m: got.append(("b", m)))
        net.partition({"a"}, {"b"})
        net.send("a", "b", "x")
        net.send("b", "a", "y")
        sim.run()
        assert got == []

    def test_heal_restores_traffic(self):
        sim, net = self._net()
        got = []
        net.register("b", lambda s, m: got.append(m))
        net.block("a", "b")
        net.heal()
        net.send("a", "b", "x")
        sim.run()
        assert got == ["x"]

    def test_partition_decided_at_delivery_too(self):
        # A message in flight when the partition forms is also lost.
        sim, net = self._net(latency=ConstantLatency(0.01))
        got = []
        net.register("b", lambda s, m: got.append(m))
        net.send("a", "b", "x")
        sim.schedule(0.005, net.block, "a", "b")
        sim.run()
        assert got == []

    def test_stats_by_type_opt_in(self):
        sim, net = self._net()
        net.stats.count_types = True
        net.register("b", lambda s, m: None)
        net.send("a", "b", 123)
        net.send("a", "b", "str")
        sim.run()
        assert net.stats.by_type == {"int": 1, "str": 1}
        assert net.stats.sent == 2
        assert net.stats.delivered == 2

    def test_stats_by_type_off_by_default(self):
        # Per-type counting does string + dict work per send, so it is
        # opt-in; the plain counters still tick.
        sim, net = self._net()
        net.register("b", lambda s, m: None)
        net.send("a", "b", 123)
        sim.run()
        assert net.stats.by_type == {}
        assert net.stats.sent == 1
        assert net.stats.delivered == 1

    def test_deterministic_with_same_seed(self):
        def run(seed):
            sim = Simulator(seed=seed)
            net = SimNetwork(sim, latency=UniformLatency(0.001, 0.01))
            arrivals = []
            net.register("b", lambda s, m: arrivals.append((m, sim.now)))
            for i in range(20):
                net.send("a", "b", i)
            sim.run()
            return arrivals

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_addresses_sorted(self):
        sim, net = self._net()
        net.register("z", lambda s, m: None)
        net.register("a", lambda s, m: None)
        assert net.addresses() == ["a", "z"]


class TestFaultFreeFastPath:
    """The fault-free send fast path must be invisible except for speed."""

    def _net(self, **kwargs):
        sim = Simulator(seed=1)
        net = SimNetwork(sim, **kwargs)
        return sim, net

    def test_fast_path_active_only_when_fault_free(self):
        sim, net = self._net()
        assert net._fault_free
        net.block("a", "b")
        assert not net._fault_free
        net.unblock("a", "b")
        assert net._fault_free
        net.set_down("a")
        assert not net._fault_free
        net.set_up("a")
        assert net._fault_free
        net.set_link_slowdown("a", "b", 3.0)
        assert not net._fault_free
        net.clear_slowdowns()
        assert net._fault_free
        net.drop_prob = 0.1
        assert not net._fault_free
        net.drop_prob = 0.0
        assert net._fault_free
        net.dup_prob = 0.1
        assert not net._fault_free
        net.dup_prob = 0.0
        assert net._fault_free

    def test_drop_prob_setter_validates(self):
        _sim, net = self._net()
        with pytest.raises(ValueError):
            net.drop_prob = 1.5
        with pytest.raises(ValueError):
            net.dup_prob = -0.1

    def test_heal_restores_fast_path(self):
        sim, net = self._net()
        net.partition({"a"}, {"b"})
        assert not net._fault_free
        net.heal()
        assert net._fault_free

    def test_fast_and_slow_paths_deliver_identically(self):
        # Force the slow path with a block between two addresses that
        # never exchange traffic: every check still evaluates false and
        # no extra RNG draws happen, so arrival times must be identical
        # to the fast path run.
        def run(force_slow):
            sim = Simulator(seed=7)
            net = SimNetwork(sim, latency=UniformLatency(0.001, 0.01))
            if force_slow:
                net.block_one_way("__nobody__", "__never__")
            arrivals = []
            net.register("a", lambda s, m: arrivals.append(("a", m, sim.now)))
            net.register("b", lambda s, m: arrivals.append(("b", m, sim.now)))
            for i in range(50):
                net.send("a", "b", i)
                net.send("b", "a", i)
            sim.run()
            return arrivals, net.stats.sent, net.stats.delivered

        assert run(force_slow=False) == run(force_slow=True)

    def test_fast_path_still_checks_faults_at_delivery(self):
        # A message sent on the fast path must still be lost if the
        # destination dies (or a partition forms) while it is in flight.
        sim, net = self._net(latency=ConstantLatency(0.01))
        got = []
        net.register("b", lambda s, m: got.append(m))
        assert net._fault_free
        net.send("a", "b", "doomed")
        sim.schedule(0.005, net.set_down, "b")
        sim.run()
        assert got == []
        assert net.stats.to_dead == 1

"""Tests for log compaction and snapshot-based catch-up."""

import pytest

from repro.consensus import Command, PaxosConfig, PaxosLog
from repro.consensus.harness import PaxosHost, build_cluster, current_leader
from repro.dht.client import ScatterClient
from repro.dht.system import ScatterSystem
from repro.policies import ScatterPolicy
from repro.sim import ConstantLatency, SimNetwork, Simulator

from test_scatter_basic import fast_config, make_client

COMPACTING = PaxosConfig(
    heartbeat_interval=0.1,
    election_timeout=0.5,
    lease_duration=0.35,
    retry_interval=0.3,
    compact_threshold=20,
)


class TestLogTruncation:
    def test_truncate_drops_prefix(self):
        log = PaxosLog()
        for i in range(10):
            log.mark_chosen(i, f"v{i}")
        log.truncate_before(5)
        assert log.first_slot == 5
        assert log.is_chosen(2)  # compacted prefix counts as chosen
        assert log.chosen_value(7) == "v7"
        with pytest.raises(KeyError):
            log.entry(3)

    def test_cannot_truncate_past_commit(self):
        log = PaxosLog()
        log.mark_chosen(0, "a")
        with pytest.raises(ValueError):
            log.truncate_before(5)

    def test_mark_chosen_below_first_slot_is_noop(self):
        log = PaxosLog()
        for i in range(5):
            log.mark_chosen(i, f"v{i}")
        log.truncate_before(5)
        log.mark_chosen(2, "anything")  # must not raise or resurrect
        assert log.first_slot == 5

    def test_commit_index_survives_truncation(self):
        log = PaxosLog()
        for i in range(8):
            log.mark_chosen(i, i)
        log.truncate_before(8)
        assert log.commit_index == 7
        log.mark_chosen(8, "next")
        assert log.commit_index == 8


def snapshot_list(state: list):
    return list(state)


class TestReplicaCompaction:
    def _cluster(self, n=3, seed=0):
        sim = Simulator(seed=seed)
        net = SimNetwork(sim, latency=ConstantLatency(0.005))
        states: dict[str, list] = {}

        def make_apply(name):
            def apply_fn(slot, command):
                if command.kind == "app":
                    states[name].append(command.payload)
                return command.payload

            return apply_fn

        names = [f"n{i}" for i in range(n)]
        hosts = []
        for name in names:
            states[name] = []
            host = PaxosHost(
                name, sim, net, members=list(names), config=COMPACTING,
                initial_leader=names[0], apply_fn=make_apply(name),
            )
            # Wire snapshots over the recorded state list.
            host.replica.snapshot_fn = lambda name=name: list(states[name])
            host.replica.restore_fn = lambda snap, name=name: states[name].__setitem__(
                slice(None), snap
            )
            hosts.append(host)
        return sim, net, hosts, states

    def test_log_stays_bounded(self):
        sim, net, hosts, states = self._cluster()
        sim.run_for(1.0)
        for i in range(100):
            hosts[0].propose(Command.app(i))
        sim.run_for(10.0)
        leader = current_leader(hosts)
        assert leader.replica.log.first_slot > 0
        assert len(leader.replica.log) < 100

    def test_lagging_member_catches_up_via_snapshot(self):
        sim, net, hosts, states = self._cluster()
        sim.run_for(1.0)
        hosts[2].crash()
        for i in range(80):
            hosts[0].propose(Command.app(i))
        sim.run_for(10.0)
        assert hosts[0].replica.log.first_slot > 0  # compaction happened
        hosts[2].restart()
        sim.run_for(10.0)
        assert states["n2"][-20:] == states["n0"][-20:]
        assert hosts[2].replica.applied_index == hosts[0].replica.applied_index

    def test_snapshot_install_preserves_order(self):
        sim, net, hosts, states = self._cluster()
        sim.run_for(1.0)
        hosts[1].crash()
        for i in range(60):
            hosts[0].propose(Command.app(i))
        sim.run_for(8.0)
        hosts[1].restart()
        sim.run_for(8.0)
        assert states["n1"] == states["n0"]


class TestScatterWithCompaction:
    def test_join_after_compaction_gets_current_data(self):
        sim = Simulator(seed=4)
        net = SimNetwork(sim, latency=ConstantLatency(0.004))
        config = fast_config(paxos=COMPACTING)
        system = ScatterSystem.build(
            sim, net, n_nodes=6, n_groups=2, config=config,
            policy=ScatterPolicy(target_size=3, split_size=99, merge_size=0),
        )
        sim.run_for(2.0)
        client = make_client(sim, net, system)
        for i in range(60):
            client.put(f"ck-{i}", i)
            if i % 10 == 9:
                sim.run_for(1.0)
        sim.run_for(5.0)
        # Logs compacted in at least one group.
        compacted = any(
            r.paxos.log.first_slot > 0
            for node in system.nodes.values()
            for r in node.groups.values()
        )
        assert compacted
        node = system.add_node()
        sim.run_for(15.0)
        assert len(node.groups) == 1
        replica = next(iter(node.groups.values()))
        leader = system.leader_of(replica.gid)
        sim.run_for(5.0)
        for key in leader.owned_keys():
            assert replica.store.get(key).ok, f"joiner missing key {key}"
        # Data reachable end to end after the compacted-join.
        futures = [client.get(f"ck-{i}") for i in range(60)]
        sim.run_for(10.0)
        assert all(f.result().ok and f.result().value == i for i, f in enumerate(futures))

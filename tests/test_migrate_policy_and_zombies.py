"""Policy-driven migration and the zombie-read safety regression."""

import pytest

from repro.dht.client import ScatterClient
from repro.dht.ring import hash_key
from repro.dht.system import ScatterSystem
from repro.group.replica import GroupStatus
from repro.policies import ScatterPolicy
from repro.sim import ConstantLatency, SimNetwork, Simulator

from test_scatter_basic import fast_config, make_client


class TestMigrateBalancePolicy:
    def test_oversized_group_donates_to_small(self):
        sim = Simulator(seed=21)
        net = SimNetwork(sim, latency=ConstantLatency(0.004))
        policy = ScatterPolicy(
            target_size=4, split_size=99, merge_size=0, migrate_balance=True
        )
        system = ScatterSystem.build(
            sim, net, n_nodes=8, n_groups=2, config=fast_config(), policy=policy
        )
        # Force imbalance: 6 members in g0, 2 in g1.
        g0 = system.nodes["s0"].groups["g0"]
        g1 = system.nodes["s1"].groups["g1"]
        # Rebuild with an explicitly imbalanced deployment instead:
        sim2 = Simulator(seed=22)
        net2 = SimNetwork(sim2, latency=ConstantLatency(0.004))
        system2 = ScatterSystem(sim2, net2, config=fast_config(), policy=policy)
        from repro.dht.ring import KEY_SPACE, KeyRange
        from repro.dht.scatter import ScatterNode
        from repro.group.info import GroupGenesis, GroupInfo

        names = [f"s{i}" for i in range(8)]
        for n in names:
            system2.nodes[n] = ScatterNode(n, sim2, net2, config=system2.config, policy=policy)
        system2._node_counter = 8
        big_members = tuple(names[:6])
        small_members = tuple(names[6:])
        arcs = [KeyRange(0, KEY_SPACE // 2), KeyRange(KEY_SPACE // 2, 0)]
        big_info = GroupInfo("gbig", arcs[0], big_members, big_members[0])
        small_info = GroupInfo("gsmall", arcs[1], small_members, small_members[0])
        for member in big_members:
            system2.nodes[member].create_group(GroupGenesis(
                gid="gbig", range=arcs[0], members=big_members,
                initial_leader=big_members[0], predecessor=small_info, successor=small_info,
            ))
        for member in small_members:
            system2.nodes[member].create_group(GroupGenesis(
                gid="gsmall", range=arcs[1], members=small_members,
                initial_leader=small_members[0], predecessor=big_info, successor=big_info,
            ))
        for node in system2.nodes.values():
            node.start()
        sim2.run_for(30.0)
        sizes = sorted(len(g.members) for g in system2.active_groups().values())
        # Migration moved at least one member toward balance.
        assert sizes[0] >= 3, f"sizes stayed {sizes}"
        assert sizes[1] <= 5

    def test_disabled_by_default(self):
        policy = ScatterPolicy()
        assert policy.choose_migration is not None
        # No group object needed: flag off means None immediately.
        class G:
            members = ["a"] * 9

        import random

        assert policy.choose_migration(G(), [], random.Random(0)) is None


class TestZombieReads:
    def test_stale_member_of_retired_group_cannot_serve_stale_data(self):
        """A partitioned member that missed a split cannot serve reads.

        The split commit sits in the old group's log *before* any slot
        the stale member could use for its read barrier, so by the time
        it could serve a lease read it has applied the commit and
        retired.  This test partitions one member, splits the group,
        heals, and verifies the stale member never answers with data.
        """
        from test_group_ops import build_manual

        sim, net, system = build_manual(n_nodes=6, n_groups=1, seed=31)
        client = make_client(sim, net, system)
        client.put("zk", "v1")
        sim.run_for(3.0)
        gid = next(iter(system.active_groups()))
        leader = system.leader_of(gid)
        stale = [m for m in leader.members if m != leader.paxos.replica_id][0]
        others = set(system.nodes) - {stale}
        net.partition({stale}, others)
        # Split while the stale member is cut off.
        fut = leader.host.start_split(leader)
        sim.run_for(10.0)
        assert fut.exception is None and fut.result() == "committed"
        # Write a new value to the new owner.
        client.put("zk", "v2")
        sim.run_for(5.0)
        net.heal()
        sim.run_for(10.0)
        # The stale member's replica of the old group must be retired by
        # catch-up, not leading and serving.
        replica = system.nodes[stale].groups.get(gid)
        if replica is not None:
            assert replica.status is GroupStatus.RETIRED or not replica.is_leader
        # End-to-end: a fresh read returns the newest value.
        f = client.get("zk")
        sim.run_for(5.0)
        assert f.result().value == "v2"
        from repro.analysis import check_history

        assert check_history(client.records).violations == []

"""The durable-storage model: WAL semantics, crash recovery, amnesia.

Three layers under test: the disk model itself (fsync boundaries,
power-failure truncation, checksum policy, snapshot compaction), real
recovery through a live Paxos cluster (WAL replay, catch-up, leader
failover, amnesiac learner rejoin), and the zero-perturbation guarantee
that deployments without the storage model behave byte-identically to
builds that never had it (same pattern as tests/test_obs.py).
"""

from __future__ import annotations

import pytest

from repro.consensus.commands import Command
from repro.consensus.harness import PaxosHost, build_cluster, current_leader
from repro.consensus.replica import PaxosConfig
from repro.harness.builders import (
    DeploymentParams,
    build_scatter_deployment,
    experiment_scatter_config,
)
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.storage.disk import (
    BALLOT_ZERO,
    NodeDisk,
    REC_ACCEPT,
    REC_PROMISE,
    StorageConfig,
)
from repro.workloads import UniformKeys
from repro.workloads.driver import ClosedLoopWorkload


# ---------------------------------------------------------------------------
# Disk model unit tests
# ---------------------------------------------------------------------------
class TestWal:
    def _region(self):
        return NodeDisk("n0", StorageConfig()).storage_for("g")

    def test_append_is_volatile_until_fsync(self):
        st = self._region()
        assert st.append_promise((1, "n0"))
        assert st.append_accept(0, (1, "n0"), "cmd")
        assert st.synced_seq == 0
        st.power_failure()
        assert st.records == []  # nothing was fsynced

    def test_power_failure_keeps_synced_prefix(self):
        st = self._region()
        st.append_accept(0, (1, "n0"), "a")
        st.append_accept(1, (1, "n0"), "b")
        st.mark_synced(st.current_seq())
        st.append_accept(2, (1, "n0"), "c")  # un-fsynced suffix
        st.power_failure()
        assert [r.slot for r in st.records] == [0, 1]
        _snap, replay = st.recovery_image()
        assert [r.slot for r in replay] == [0, 1]

    def test_fsync_folds_promises_into_durable_promise(self):
        st = self._region()
        st.append_promise((3, "n1"))
        st.append_promise((5, "n2"))
        assert st.durable_promise == BALLOT_ZERO
        st.mark_synced(st.current_seq())
        assert st.durable_promise == (5, "n2")

    def test_io_error_blocks_appends_and_snapshots(self):
        st = self._region()
        st.disk.io_error = True
        assert not st.append_promise((1, "n0"))
        assert not st.fsync_ok()
        st.save_snapshot({"x": 1}, 10, ("n0",))
        assert st.snapshot is None
        st.disk.clear_faults()
        assert st.append_promise((1, "n0"))

    def test_snapshot_compacts_wal_but_keeps_unsynced_suffix(self):
        st = self._region()
        for slot in range(4):
            st.append_accept(slot, (1, "n0"), f"v{slot}")
        st.append_promise((2, "n1"))
        st.mark_synced(st.current_seq())
        st.append_accept(4, (2, "n1"), "v4")  # still volatile
        st.save_snapshot({"state": True}, last_included=2, members=("n0",))
        kept = [(r.kind, r.slot) for r in st.records]
        # promise records folded at fsync, slots <= 2 covered by snapshot,
        # slot 3 (durable, beyond snapshot) and slot 4 (volatile) survive.
        assert kept == [(REC_ACCEPT, 3), (REC_ACCEPT, 4)]
        st.power_failure()
        assert [(r.kind, r.slot) for r in st.records] == [(REC_ACCEPT, 3)]

    def test_corrupt_tail_forces_amnesia_at_recovery(self):
        st = self._region()
        for slot in range(3):
            st.append_accept(slot, (1, "n0"), f"v{slot}")
        st.mark_synced(st.current_seq())
        st.corrupt_tail(1)
        snap, replay = st.recovery_image()
        assert snap is None and replay == []
        assert st.amnesiac
        assert st.last_recovery["mode"] == "amnesia"

    def test_wipe_clears_ledger_and_sets_amnesia(self):
        st = self._region()
        st.append_promise((1, "n0"))
        st.mark_synced(st.current_seq())
        st.note_acked_promise((1, "n0"))
        st.note_acked_accept(0, (1, "n0"), "app:None")
        st.wipe()
        assert st.amnesiac
        assert st.acked_promise == BALLOT_ZERO
        assert st.acked_accepts == {}
        assert st.durable_promise == BALLOT_ZERO

    def test_recovery_counters(self):
        st = self._region()
        for slot in range(5):
            st.append_accept(slot, (1, "n0"), f"v{slot}")
        st.mark_synced(st.current_seq())
        st.recovery_image()
        st.recovery_image()
        assert st.recoveries == 2
        assert st.replayed_total == 10
        assert st.max_replayed == 5


# ---------------------------------------------------------------------------
# Live-cluster recovery
# ---------------------------------------------------------------------------
def _cluster(seed=7, n=3, config=None):
    sim = Simulator(seed=seed)
    net = SimNetwork(sim)
    hosts = build_cluster(sim, net, n, config=config, storage=StorageConfig())
    sim.run_for(2.0)
    return sim, net, hosts


def _propose_n(sim, leader: PaxosHost, count: int, start: int = 0) -> None:
    for i in range(start, start + count):
        leader.propose(Command(kind="app", payload=f"v{i}", dedup=("c", i)))
        sim.run_for(0.05)


def _applied_counts(hosts):
    return {h.node_id: len(h.applied) for h in hosts}


def _no_reneges(hosts):
    return not any(h.replica.storage.reneged for h in hosts)


class TestClusterRecovery:
    def test_follower_restart_replays_wal_then_catches_up(self):
        sim, _net, hosts = _cluster()
        leader = current_leader(hosts)
        _propose_n(sim, leader, 20)
        follower = next(h for h in hosts if h is not leader)
        follower.crash()
        _propose_n(sim, leader, 10, start=20)
        follower.restart()
        sim.run_for(3.0)
        assert follower.replica.storage.recoveries == 1
        assert follower.replica.storage.last_recovery["mode"] == "replay"
        assert follower.replica.storage.last_recovery["replayed"] > 0
        counts = _applied_counts(hosts)
        assert len(set(counts.values())) == 1, counts
        assert _no_reneges(hosts)

    def test_leader_restart_steps_down_and_cluster_commits(self):
        sim, _net, hosts = _cluster()
        leader = current_leader(hosts)
        _propose_n(sim, leader, 10)
        leader.crash()
        sim.run_for(3.0)
        new_leader = current_leader(hosts)
        assert new_leader is not None and new_leader is not leader
        leader.restart()
        sim.run_for(3.0)
        assert not leader.replica.is_leader  # recovered as a follower
        future = new_leader.propose(Command(kind="app", payload="post", dedup=("c", 99)))
        sim.run_for(2.0)
        assert future.done and future.exception is None
        counts = _applied_counts(hosts)
        assert len(set(counts.values())) == 1, counts
        assert _no_reneges(hosts)

    def test_snapshot_recovery_after_compaction(self):
        config = PaxosConfig(compact_threshold=20)
        sim, _net, hosts = _cluster(config=config)
        leader = current_leader(hosts)
        _propose_n(sim, leader, 50)
        follower = next(h for h in hosts if h is not leader)
        follower.crash()
        follower.restart()
        sim.run_for(3.0)
        last = follower.replica.storage.last_recovery
        assert last["mode"] == "replay" and last["snapshot"]
        # replay was bounded by compaction, not the full 50-command history
        assert last["replayed"] < 50
        counts = _applied_counts(hosts)
        assert len(set(counts.values())) == 1, counts
        assert _no_reneges(hosts)

    def test_amnesiac_rejoins_as_learner_then_votes_again(self):
        sim, _net, hosts = _cluster()
        leader = current_leader(hosts)
        _propose_n(sim, leader, 15)
        victim = next(h for h in hosts if h is not leader)
        victim.crash()
        victim.disk.wipe()
        victim.restart()
        assert victim.replica.amnesiac
        sim.run_for(5.0)
        assert not victim.replica.amnesiac  # caught up, voting rights back
        counts = _applied_counts(hosts)
        assert len(set(counts.values())) == 1, counts
        assert _no_reneges(hosts)

    def test_amnesiac_never_votes_in_elections(self):
        # 3 nodes: crash the leader, wipe a follower.  A new leader needs
        # 2 of 3 promises; the amnesiac must not supply one, so no leader
        # can emerge until the crashed node (with its intact disk) returns.
        sim, _net, hosts = _cluster()
        leader = current_leader(hosts)
        _propose_n(sim, leader, 10)
        victim = next(h for h in hosts if h is not leader)
        victim.crash()
        victim.disk.wipe()
        victim.restart()
        leader.crash()
        sim.run_for(5.0)
        assert current_leader(hosts) is None
        assert victim.replica.amnesiac  # nobody to catch up from
        leader.restart()
        sim.run_for(5.0)
        assert current_leader(hosts) is not None
        sim.run_for(3.0)
        assert not victim.replica.amnesiac
        assert _no_reneges(hosts)

    def test_amnesia_marker_survives_another_crash(self):
        sim, net, hosts = _cluster()
        leader = current_leader(hosts)
        _propose_n(sim, leader, 10)
        victim = next(h for h in hosts if h is not leader)
        peers = [h.node_id for h in hosts if h is not victim]
        victim.crash()
        victim.disk.wipe()
        net.isolate_inbound(victim.node_id, peers)  # block catch-up
        victim.restart()
        assert victim.replica.amnesiac
        sim.run_for(2.0)
        victim.crash()
        victim.restart()
        assert victim.replica.amnesiac  # durable marker: still a learner
        for peer in peers:
            net.unblock_one_way(peer, victim.node_id)
        sim.run_for(5.0)
        assert not victim.replica.amnesiac
        assert _no_reneges(hosts)

    def test_per_peer_catchup_throttle(self):
        # The throttle map is per-peer: asking one peer must not block an
        # immediate ask to a different peer.
        sim, _net, hosts = _cluster()
        replica = hosts[0].replica
        replica._request_catchup("n1")
        t1 = replica._last_catchup_request.get("n1")
        replica._request_catchup("n2")
        assert replica._last_catchup_request.get("n2") == t1
        # same peer again inside the throttle window is a no-op
        before = dict(replica._last_catchup_request)
        replica._request_catchup("n1")
        assert replica._last_catchup_request == before


# ---------------------------------------------------------------------------
# Scatter-level recovery
# ---------------------------------------------------------------------------
class TestScatterRecovery:
    def test_node_restart_with_storage_keeps_groups_consistent(self):
        params = DeploymentParams(n_nodes=9, n_groups=3, n_clients=2, seed=5)
        deployment = build_scatter_deployment(
            params, config=experiment_scatter_config(storage=StorageConfig())
        )
        sim, system = deployment.sim, deployment.system
        workload = ClosedLoopWorkload(
            sim, deployment.clients, UniformKeys(20), read_fraction=0.5
        )
        workload.start()
        sim.run_for(5.0)
        victim = system.nodes[sorted(system.nodes)[0]]
        victim.crash()
        sim.run_for(2.0)
        victim.restart()
        sim.run_for(5.0)
        workload.stop()
        sim.run_for(1.0)
        recovered = [
            region
            for region in victim.disk.regions.values()
            if region.recoveries > 0
        ]
        assert recovered, "restart must run real recovery"
        assert all(not region.reneged for region in recovered)
        # the restarted node's groups converge with their peers
        for gid, replica in victim.groups.items():
            for node in system.nodes.values():
                other = node.groups.get(gid)
                if other is None or other is replica:
                    continue
                lo = max(replica.paxos.log.first_slot, other.paxos.log.first_slot)
                hi = min(replica.paxos.log.commit_index, other.paxos.log.commit_index)
                for slot in range(lo, hi + 1):
                    if replica.paxos.log.is_chosen(slot) and other.paxos.log.is_chosen(slot):
                        assert (
                            replica.paxos.log.chosen_value(slot)
                            == other.paxos.log.chosen_value(slot)
                        )


# ---------------------------------------------------------------------------
# Zero-perturbation (pattern from tests/test_obs.py)
# ---------------------------------------------------------------------------
def _drive(seed: int, storage: StorageConfig | None):
    params = DeploymentParams(n_nodes=9, n_groups=3, n_clients=2, seed=seed)
    deployment = build_scatter_deployment(
        params, config=experiment_scatter_config(storage=storage)
    )
    workload = ClosedLoopWorkload(
        deployment.sim, deployment.clients, UniformKeys(20), read_fraction=0.5
    )
    workload.start()
    deployment.sim.run_for(10.0)
    workload.stop()
    deployment.sim.run_for(1.0)
    records = workload.all_records()
    fingerprint = (
        deployment.sim.events_processed,
        deployment.net.stats.sent,
        deployment.net.stats.delivered,
        [
            (r.op, r.key, round(r.invoke_time, 9), round(r.response_time, 9), r.hops, r.attempts)
            for r in records
        ],
    )
    return deployment, fingerprint


class TestZeroPerturbation:
    def test_disabled_storage_builds_no_disks(self):
        deployment, _fp = _drive(seed=7, storage=None)
        assert all(node.disk is None for node in deployment.system.nodes.values())

    def test_disabled_runs_are_deterministic_and_unaffected_by_enabled_runs(self):
        # Same seed, storage off: byte-identical — and running a
        # storage-enabled deployment in between must leak nothing
        # (no class-level or module-level state).
        _dep_a, fp_a = _drive(seed=7, storage=None)
        _dep_enabled, fp_enabled = _drive(seed=7, storage=StorageConfig())
        _dep_b, fp_b = _drive(seed=7, storage=None)
        assert fp_a == fp_b
        assert fp_enabled != fp_a  # fsync latency is real, results shift

    def test_enabled_runs_are_deterministic(self):
        _dep_a, fp_a = _drive(seed=7, storage=StorageConfig())
        _dep_b, fp_b = _drive(seed=7, storage=StorageConfig())
        assert fp_a == fp_b
        assert all(
            node.disk is not None for node in _dep_a.system.nodes.values()
        )


# ---------------------------------------------------------------------------
# Fuzzer integration: disk faults and the forgotten-promise canary
# ---------------------------------------------------------------------------
class TestFuzzIntegration:
    def test_storage_plan_with_disk_faults_runs_clean(self):
        from repro.check import run_plan, sample_plan

        # seed 42 iteration 92: disk_slow + disk_io + disk_loss faults
        plan = sample_plan(42, 92)
        assert plan.storage
        assert len({e.kind for e in plan.schedule if e.kind.startswith("disk_")}) >= 3
        outcome = run_plan(plan)
        assert not outcome.failed, outcome.failure
        assert outcome.ops_completed > 0

    def test_forgotten_promise_found_shrunk_and_replayed(self, tmp_path):
        from repro.check import FuzzConfig, load_repro, replay, run_fuzz

        summary = run_fuzz(
            FuzzConfig(
                master_seed=42,
                iterations=6,
                bug="forgotten-promise",
                out_dir=str(tmp_path),
            )
        )
        assert summary.found
        assert summary.failure.name == "acceptor-durability"
        assert summary.shrink["runs"] > 0
        assert summary.shrink["schedule_after"] <= summary.shrink["schedule_before"]
        reproduced, observed, recorded = replay(load_repro(summary.repro_path))
        assert reproduced, f"replay diverged: {observed} != {recorded}"
        assert observed == recorded
